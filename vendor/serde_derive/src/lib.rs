//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade.
//!
//! This workspace builds in a network-less environment, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) is replaced by
//! this hand-rolled token scanner. It supports exactly the shapes the
//! workspace uses:
//!
//! * structs with named fields → JSON objects, field order preserved;
//! * single-field tuple structs (newtypes such as `DiskId(u32)`) →
//!   transparent, serialized as the inner value;
//! * enums whose variants are all units (e.g. `Scheme`) → the variant
//!   name as a JSON string.
//!
//! Generics, `#[serde(...)]` attributes, data-carrying enum variants and
//! multi-field tuple structs are rejected with a compile-time panic —
//! better a loud failure here than a silently wrong wire format.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving type, as far as codegen cares.
enum Shape {
    /// Struct with named fields (field names in declaration order).
    Named(Vec<String>),
    /// Tuple struct with exactly one field.
    Newtype,
    /// Enum with unit variants only (variant names in order).
    UnitEnum(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Newtype => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::String(match self {{ {} }}.to_string())",
                arms.join(", ")
            )
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(fields, \"{f}\")?"))
                .collect();
            format!(
                "let fields = match value {{\n\
                     ::serde::Value::Object(f) => f,\n\
                     _ => return Err(::serde::Error::custom(\"expected object for {name}\")),\n\
                 }};\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Newtype => format!(
            "Ok({name}(::serde::Deserialize::deserialize(value)?))"
        ),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v})"))
                .collect();
            format!(
                "match value.as_str() {{\n\
                     {},\n\
                     _ => Err(::serde::Error::custom(\"unknown variant for {name}\")),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

/// Extracts the type name and [`Shape`] from the derive input tokens.
fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and the
    // visibility qualifier, until the `struct` / `enum` keyword.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // `pub(crate)` etc.: the restriction is a paren group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("serde_derive: no struct/enum keyword in input"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type {name})");
        }
    }
    let shape = if kind == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                if n != 1 {
                    panic!("serde_derive: tuple struct {name} has {n} fields; only newtypes are supported");
                }
                Shape::Newtype
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(unit_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: unsupported enum body for {name}: {other:?}"),
        }
    };
    (name, shape)
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Field start: skip attributes and visibility, take the name.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other}"),
                None => return fields,
            }
        };
        fields.push(name);
        // Skip `: Type` up to the next comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as nested groups, so only `<`/`>`
        // can hide a comma from the top level.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Number of top-level fields in a tuple-struct paren body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    n += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    if saw_tokens {
        n += 1;
    }
    n
}

/// Variant names of a unit-only enum body.
fn unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                let v = id.to_string();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "serde_derive: enum {enum_name} variant {v} carries data; only unit variants are supported"
                    );
                }
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '=' {
                        panic!("serde_derive: enum {enum_name} has explicit discriminants; unsupported");
                    }
                }
                variants.push(v);
            }
            other => panic!("serde_derive: unexpected token in enum {enum_name}: {other}"),
        }
    }
    variants
}
