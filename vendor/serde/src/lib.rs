//! Vendored serde facade for network-less builds.
//!
//! The real serde crates cannot be fetched in this build environment, so
//! the workspace ships a minimal, API-compatible replacement: types
//! implement [`Serialize`] / [`Deserialize`] by converting to and from an
//! in-memory [`Value`] tree, and `serde_json` (also vendored) renders and
//! parses that tree. `#[derive(Serialize, Deserialize)]` is provided by
//! the companion `serde_derive` proc-macro crate behind the usual
//! `derive` feature.
//!
//! The surface is intentionally small — exactly what this workspace
//! needs: primitives, `String`, `Option<T>`, `Vec<T>`, named-field
//! structs, newtype structs and unit-variant enums. The wire format
//! matches real serde_json for these shapes, so swapping the real crates
//! back in is a manifest-only change.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An in-memory JSON-like value tree: the intermediate representation
/// between Rust types and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, with insertion order preserved (field order of the
    /// deriving struct).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate value tree.
    fn serialize(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the intermediate value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape or range does not match.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in an object's entries and deserializes it — the
/// workhorse of derived `Deserialize` impls for named-field structs.
///
/// # Errors
///
/// Returns [`Error`] when the key is absent or the value mismatches.
pub fn from_field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = value.as_u64().ok_or_else(|| Error::custom("expected usize"))?;
        usize::try_from(n).map_err(|_| Error::custom("out of range for usize"))
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), T::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
