//! Vendored JSON text layer for network-less builds.
//!
//! Renders the vendored serde [`Value`] tree to JSON text (compact and
//! pretty, matching real serde_json's layout for the shapes this
//! workspace serializes) and parses JSON text back into a tree.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored `Value` tree; the `Result` keeps the real
/// serde_json signature.
pub fn to_string<T>(value: &T) -> Result<String, Error>
where
    T: Serialize + ?Sized,
{
    let mut out = String::new();
    write_compact(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible for the vendored `Value` tree; the `Result` keeps the real
/// serde_json signature.
pub fn to_string_pretty<T>(value: &T) -> Result<String, Error>
where
    T: Serialize + ?Sized,
{
    let mut out = String::new();
    write_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree without rendering text.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::deserialize(&value)
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Rust's `f64` Display is shortest-round-trip, which is exactly what
/// JSON wants; non-finite values become `null` like real serde_json.
/// Integral floats keep a `.0` so the value re-parses as a float.
fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(7)),
            ("b".to_string(), Value::F64(0.25)),
            ("c".to_string(), Value::Array(vec![Value::Null, Value::Bool(true)])),
            ("d".to_string(), Value::String("x\"y\n".to_string())),
            ("e".to_string(), Value::I64(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.0, 1.5, 0.1, 1e-9, 123456.789, -2.5e10] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: Value = from_str("1.0").unwrap();
        assert_eq!(back, Value::F64(1.0));
    }
}
