//! Vendored proptest facade for network-less builds.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map`/`boxed`,
//! ranges and tuples as strategies, `any::<T>()`, `Just`,
//! `prop_oneof!` with weights, `prop::collection::vec`,
//! `prop::sample::Index`, `prop_assume!` and the `prop_assert*` macros.
//!
//! Semantics: each test function runs `ProptestConfig::cases` random
//! cases drawn from a generator seeded by the test's name, so runs are
//! deterministic per test. There is **no shrinking** — on failure the
//! harness prints the case number and seed so the case can be replayed
//! by rerunning the (deterministic) test under a debugger. Assumption
//! rejections are retried with fresh draws, capped at 20× the case
//! budget like the real crate's `max_global_rejects`.

use std::ops::Range;

/// Deterministic generator driving all sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a 64-bit value via splitmix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, span)`, unbiased by rejection.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "below: empty span");
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Why a single test case did not produce a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw fresh ones.
    Reject,
}

/// Result type threaded through generated test-case closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case budget.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline suite fast
        // while still sweeping the input space per run.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator: the heart of every `arg in strategy` binding.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64) + rng.below(span) as i64) as $ty
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning sign and magnitude.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Weighted alternation built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that many
    /// elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known inside the
    /// test body: stores entropy, resolves against a length on demand.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves to an index in `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop::` namespace familiar from the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Drives one property-test function: repeatedly samples, runs the case
/// closure, retries rejections and reports the case number on panic.
///
/// # Panics
///
/// Panics (failing the test) when a case panics or when rejections
/// exceed 20× the case budget.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20 + 100;
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest {name}: too many prop_assume rejections ({attempts} attempts for {} cases)",
            config.cases
        );
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject)) => {}
            Err(panic) => {
                eprintln!(
                    "proptest {name}: failed at case {passed} (attempt {attempts}, seed {seed:#x}); \
                     rerun this test to replay deterministically"
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Defines property tests. Mirrors the real macro's surface:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_proptest(&config, stringify!($name), |__rng| {
                    let ($($arg,)+) = ($($crate::Strategy::sample(&($strategy), __rng),)+);
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!` — no shrinking in the vendored runner).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case unless the condition holds; the runner draws
/// fresh inputs instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted (or unweighted) alternation over strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let xs = prop::collection::vec(0u8..4, 2..6).sample(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 6);
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in 1u64..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a < 100 && b >= 1);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            3 => (0u32..5).prop_map(|x| x * 2),
            1 => Just(99u32),
        ]) {
            prop_assert!(v == 99 || v < 10);
            prop_assert_ne!(v, 11);
        }
    }
}
