//! Vendored rand facade for network-less builds.
//!
//! Exposes the narrow slice of the rand 0.8 API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range(low..high)` — backed by xoshiro256++ seeded through
//! splitmix64. The generator is deterministic per seed (the whole
//! simulator's replay story rests on that) and statistically strong
//! enough for the workload crate's Poisson/Zipf distribution tests.
//!
//! Note the stream differs from the real `StdRng` (ChaCha12); any test
//! that asserted exact draws rather than distributions would notice.
//! None do — seeds only pin determinism, not specific values.

use std::ops::Range;

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// splitmix64 as the xoshiro reference code recommends.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    /// Samples a value from the type's standard distribution
    /// (`f64` → uniform in `[0, 1)`, integers → uniform over the domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, `low..high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait UniformRange: Sized {
    /// Draws uniformly from the half-open range.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased integer sampling in `[0, span)` by rejection (Lemire-style
/// threshold on the low word would also do; rejection keeps it obvious).
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformRange for $ty {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_u64(rng, span) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformRange for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, per the xoshiro authors' guidance, so
            // nearby seeds yield uncorrelated states.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
