//! Vendored criterion facade for network-less builds.
//!
//! A real (if small) wall-clock harness behind the criterion 0.5 API this
//! workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function` with `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark is auto-calibrated to a target sample time,
//! then measured over `sample_size` samples; min / median / max of the
//! per-iteration time are printed, plus throughput when configured. No
//! HTML reports, no statistical regression — numbers to compare by hand.

use std::time::{Duration, Instant};

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The vendored harness runs
/// one routine call per setup regardless; the variants only exist for
/// API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, None, f);
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Calibrates an iteration count to ~`TARGET_SAMPLE` per sample, then
/// takes `samples` timed samples and prints min/median/max.
fn run_benchmark<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    const TARGET_SAMPLE: Duration = Duration::from_millis(60);
    // Calibration: grow the iteration count until one sample is long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
            break;
        }
        let grow = if b.elapsed < TARGET_SAMPLE / 16 { 8 } else { 2 };
        iters = iters.saturating_mul(grow);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let median = per_iter[per_iter.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(" thrpt: {}/s", format_bytes(n as f64 / median)),
        Throughput::Elements(n) => format!(" thrpt: {:.3} Melem/s", n as f64 / median / 1e6),
    });
    println!(
        "{name:<50} time: [{} {} {}]{}  ({} iters × {} samples)",
        format_time(min),
        format_time(median),
        format_time(max),
        rate.unwrap_or_default(),
        iters,
        samples,
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_bytes(bytes_per_sec: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.2} GiB", bytes_per_sec / GIB)
    } else {
        format!("{:.2} MiB", bytes_per_sec / MIB)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 512],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
