//! `cmfs` — command-line front end for the fault-tolerant CM server
//! reproduction.
//!
//! ```text
//! cmfs capacity  [--disks D] [--buffer-mb MB]         analytic capacity per scheme
//! cmfs tune      --scheme S [--disks D] [--buffer-mb MB]
//! cmfs simulate  --scheme S [--rounds N] [--rate L] [--fail-at R] [--rebuild]
//! cmfs drill     [--rounds N]                          failure drill, all schemes
//! cmfs schemes                                         list schemes
//! ```

#![forbid(unsafe_code)]

use cms_core::units::mib;
use cms_core::{DiskId, Scheme};
use cms_model::{tuned_optimal, tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "capacity" => capacity_cmd(&args),
        "tune" => tune_cmd(&args),
        "simulate" => simulate_cmd(&args),
        "drill" => drill_cmd(&args),
        "reliability" => reliability_cmd(&args),
        "schemes" => schemes_cmd(),
        _ => help(),
    }
}

fn help() {
    println!(
        "cmfs — fault-tolerant continuous media server (SIGMOD'96 reproduction)\n\
         \n\
         USAGE:\n\
         \x20 cmfs capacity  [--disks D] [--buffer-mb MB]\n\
         \x20 cmfs tune      --scheme S [--disks D] [--buffer-mb MB] [--parity-group P]\n\
         \x20 cmfs simulate  --scheme S [--rounds N] [--rate L] [--fail-at R] [--rebuild]\n\
         \x20 cmfs drill     [--rounds N]\n\
         \x20 cmfs reliability [--disks D] [--mttf-hours H] [--parity-group P] [--repair-hours T]\n\
         \x20 cmfs schemes\n\
         \n\
         Scheme names: declustered, dynamic, prefetch-parity, prefetch-flat,\n\
         streaming-raid, non-clustered."
    );
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn opt_f64(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_scheme(args: &[String]) -> Scheme {
    let name = args
        .iter()
        .position(|a| a == "--scheme")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            eprintln!("missing --scheme; see `cmfs schemes`");
            std::process::exit(2);
        });
    match name.as_str() {
        "declustered" => Scheme::DeclusteredParity,
        "dynamic" => Scheme::DynamicReservation,
        "prefetch-parity" => Scheme::PrefetchParityDisks,
        "prefetch-flat" => Scheme::PrefetchFlat,
        "streaming-raid" => Scheme::StreamingRaid,
        "non-clustered" => Scheme::NonClustered,
        other => {
            eprintln!("unknown scheme '{other}'; see `cmfs schemes`");
            std::process::exit(2);
        }
    }
}

fn input_from(args: &[String]) -> ModelInput {
    let d = opt_u64(args, "--disks").unwrap_or(32) as u32;
    let buffer = mib(opt_u64(args, "--buffer-mb").unwrap_or(256));
    let mut input = ModelInput::sigmod96(buffer);
    input.d = d;
    input.with_storage_blocks(75_000)
}

fn schemes_cmd() {
    println!("available schemes:");
    for (name, scheme) in [
        ("declustered", Scheme::DeclusteredParity),
        ("dynamic", Scheme::DynamicReservation),
        ("prefetch-parity", Scheme::PrefetchParityDisks),
        ("prefetch-flat", Scheme::PrefetchFlat),
        ("streaming-raid", Scheme::StreamingRaid),
        ("non-clustered", Scheme::NonClustered),
    ] {
        println!("  {name:<16} {}", scheme.label());
    }
}

fn capacity_cmd(args: &[String]) {
    let input = input_from(args);
    println!(
        "analytic capacity, d = {}, B = {} MB:",
        input.d,
        input.buffer_bytes >> 20
    );
    println!(
        "{:<34} {:>4} {:>10} {:>4} {:>3} {:>8}",
        "scheme", "p", "block", "q", "f", "streams"
    );
    for scheme in Scheme::ALL {
        match tuned_optimal(scheme, &input, 1) {
            Ok(pt) => println!(
                "{:<34} {:>4} {:>6} KiB {:>4} {:>3} {:>8}",
                scheme.label(),
                pt.p,
                pt.block_bytes / 1024,
                pt.q,
                pt.f,
                pt.total_clips
            ),
            Err(e) => println!("{:<34} infeasible: {e}", scheme.label()),
        }
    }
}

fn tune_cmd(args: &[String]) {
    let scheme = parse_scheme(args);
    let input = input_from(args);
    let result = match opt_u64(args, "--parity-group") {
        Some(p) => tuned_point(scheme, &input, p as u32, 1),
        None => tuned_optimal(scheme, &input, 1),
    };
    match result {
        Ok(pt) => {
            println!("scheme        : {}", scheme.label());
            println!("parity group  : {}", pt.p);
            println!("block size    : {} KiB", pt.block_bytes / 1024);
            println!("round budget q: {}", pt.q);
            println!("contingency f : {}", pt.f);
            if pt.r > 0 {
                println!("PGT rows r    : {}", pt.r);
            }
            println!("capacity      : {} concurrent streams", pt.total_clips);
        }
        Err(e) => {
            eprintln!("infeasible: {e}");
            std::process::exit(1);
        }
    }
}

fn simulate_cmd(args: &[String]) {
    let scheme = parse_scheme(args);
    let input = input_from(args);
    let p = opt_u64(args, "--parity-group").map(|p| p as u32);
    let point = match p {
        Some(p) => tuned_point(scheme, &input, p, 1),
        None => tuned_optimal(scheme, &input, 1),
    }
    .unwrap_or_else(|e| {
        eprintln!("infeasible: {e}");
        std::process::exit(1);
    });
    let mut cfg = SimConfig::sigmod96(scheme, &point, input.d);
    cfg.rounds = opt_u64(args, "--rounds").unwrap_or(600);
    cfg.arrival_rate = opt_f64(args, "--rate").unwrap_or(20.0);
    cfg.auto_rebuild = flag(args, "--rebuild");
    if let Some(r) = opt_u64(args, "--fail-at") {
        cfg = cfg.with_failure(r, DiskId(1)).with_verification();
    }
    let m = Simulator::new(cfg).unwrap_or_else(|e| {
        eprintln!("cannot construct simulator: {e}");
        std::process::exit(1);
    })
    .run();
    println!("{}", serde_json::to_string_pretty(&m).expect("serializable"));
}

fn drill_cmd(args: &[String]) {
    let rounds = opt_u64(args, "--rounds").unwrap_or(300);
    println!("failure drill ({rounds} rounds, disk 5 dies at {}):", rounds / 3);
    for row in cms_bench_drill(rounds) {
        println!(
            "  {:<34} hiccups {:>6}  parityΔ {:>2}  {}",
            row.0,
            row.1,
            row.2,
            if row.1 == 0 && row.2 == 0 { "HELD" } else { "BROKEN" }
        );
    }
}

fn reliability_cmd(args: &[String]) {
    let d = opt_u64(args, "--disks").unwrap_or(32) as u32;
    let mttf = opt_f64(args, "--mttf-hours").unwrap_or(300_000.0);
    let p = opt_u64(args, "--parity-group").unwrap_or(4) as u32;
    let repair = opt_f64(args, "--repair-hours").unwrap_or(1.0);
    println!("per-disk MTTF     : {mttf:.0} h");
    println!(
        "array MTTF (d={d}) : {:.0} h (~{:.0} days) — first failure, no protection",
        cms_model::array_mttf_hours(mttf, d),
        cms_model::array_mttf_hours(mttf, d) / 24.0
    );
    match cms_model::mttdl_hours(mttf, d, p, repair) {
        Ok(mttdl) => println!(
            "MTTDL (p={p}, repair {repair} h): {mttdl:.2e} h (~{:.0} years) — with parity",
            mttdl / 8760.0
        ),
        Err(e) => eprintln!("invalid reliability parameters: {e}"),
    }
}

/// Thin local re-implementation of the bench drill (the root binary must
/// not depend on the dev-only bench crate).
fn cms_bench_drill(rounds: u64) -> Vec<(String, u64, u64)> {
    let input = ModelInput::sigmod96(mib(256)).with_storage_blocks(75_000);
    Scheme::ALL
        .into_iter()
        .filter_map(|scheme| {
            let point = tuned_point(scheme, &input, 4, 1).ok()?;
            let mut cfg = SimConfig::sigmod96(scheme, &point, 32)
                .with_failure(rounds / 3, DiskId(5))
                .with_verification();
            cfg.rounds = rounds;
            let m = Simulator::new(cfg).ok()?.run();
            Some((scheme.label().to_string(), m.hiccups, m.parity_mismatches))
        })
        .collect()
}
