//! # cm-ftserver — umbrella crate
//!
//! Re-exports the workspace's public API so downstream users can depend
//! on a single crate. The implementation lives in the `cms-*` member
//! crates; start with [`server::CmServer`] (the high-level facade) or the
//! README's quickstart.
//!
//! ```
//! use cm_ftserver::prelude::*;
//!
//! let mut server = CmServer::builder(Scheme::DeclusteredParity)
//!     .disks(8)
//!     .buffer_bytes(64 << 20)
//!     .catalog(10, 10)
//!     .build()
//!     .unwrap();
//! server.request(ClipId(0)).unwrap();
//! server.run_rounds(15);
//! assert_eq!(server.metrics().completed, 1);
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]

pub use cms_admission as admission;
pub use cms_bibd as bibd;
pub use cms_core as core;
pub use cms_disk as disk;
pub use cms_layout as layout;
pub use cms_model as model;
pub use cms_parity as parity;
pub use cms_server as server;
pub use cms_sim as sim;
pub use cms_workload as workload;

/// The handful of names most programs need.
pub mod prelude {
    pub use cms_core::{ClipId, CmsError, DiskId, RequestId, Scheme};
    pub use cms_model::{CapacityPoint, ModelInput};
    pub use cms_server::{CmServer, CmServerBuilder, ServerStatus};
    pub use cms_sim::{Metrics, RoundReport, SimConfig, Simulator};
}
