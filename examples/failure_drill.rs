//! Failure drill: run all six schemes through the same disk failure at
//! identical hardware and watch how each recovers — including the
//! non-clustered baseline breaking exactly the way Section 7.4 warns.
//!
//! Run with: `cargo run --release --example failure_drill`

use cms_core::{ClipId, DiskId, Scheme};
use cms_server::CmServer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== one failed disk, 30 streams, verification on ==");
    println!(
        "{:<34} {:>7} {:>9} {:>9} {:>8} {:>10}",
        "scheme", "p", "recovery", "rebuilds", "hiccups", "guarantee"
    );
    for scheme in Scheme::ALL {
        let mut server = CmServer::builder(scheme)
            .disks(8)
            .buffer_bytes(96 << 20)
            .catalog(60, 30)
            .verify_reconstructions()
            .build()?;
        for i in 0..30u64 {
            server.request(ClipId(i % 60))?;
        }
        server.run_rounds(10);
        server.fail_disk(DiskId(1))?;
        server.run_rounds(120);
        let m = server.metrics();
        println!(
            "{:<34} {:>7} {:>9} {:>9} {:>8} {:>10}",
            scheme.label(),
            server.capacity().p,
            m.recovery_reads,
            m.reconstructions,
            m.hiccups,
            if m.guarantees_held() { "HELD" } else { "BROKEN" }
        );
        assert_eq!(m.parity_mismatches, 0, "{scheme}: corrupt rebuild");
        if scheme != Scheme::NonClustered {
            assert_eq!(m.hiccups, 0, "{scheme} promised a guarantee");
        }
    }
    println!(
        "\nEvery parity reconstruction was XOR-verified byte-for-byte against\n\
         the original content. Only the non-clustered baseline is allowed to\n\
         glitch — and then only under load, which is the paper's §7.4 caveat."
    );
    Ok(())
}
