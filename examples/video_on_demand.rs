//! Video-on-demand evening: a paper-scale server (32 disks, 256 MB
//! buffer, 1000-clip library) rides a Zipf-popular "prime time" arrival
//! wave, compares two schemes live, and reports queueing behaviour.
//!
//! This exercises the workload generators directly (Poisson arrivals with
//! a time-varying rate, Zipf clip popularity) against the raw simulator,
//! the way a capacity planner would stress a configuration before buying
//! hardware.
//!
//! Run with: `cargo run --release --example video_on_demand`

use cms_core::Scheme;
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};
use cms_workload::{ClipChoice, PoissonArrivals};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = ModelInput::sigmod96(256 << 20).with_storage_blocks(75_000);

    println!("== prime-time wave, Zipf(0.8) popularity, 600 rounds ==");
    println!(
        "{:<34} {:>9} {:>9} {:>10} {:>10}",
        "scheme", "admitted", "completed", "mean wait", "peak active"
    );
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks] {
        let point = tuned_point(scheme, &input, 4, 7)?;
        let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
        // Drive arrivals manually: quiet start, prime-time surge, cooldown.
        cfg.arrival_rate = 0.0;
        cfg.zipf_theta = 0.8;
        let mut sim = Simulator::new(cfg)?;
        let mut arrivals = PoissonArrivals::new(0.0, 42);
        let mut choice = ClipChoice::zipf(1000, 0.8, 42);
        for round in 0..600u64 {
            let rate = match round {
                0..=99 => 4.0,
                100..=399 => 25.0, // prime time
                _ => 6.0,
            };
            arrivals = reseeded(arrivals, rate);
            for _ in 0..arrivals.next_round() {
                sim.submit(choice.next_clip())?;
            }
            sim.step();
        }
        let m = sim.metrics();
        println!(
            "{:<34} {:>9} {:>9} {:>10.1} {:>10}",
            scheme.label(),
            m.admitted,
            m.completed,
            m.mean_wait(),
            m.peak_active
        );
        assert_eq!(m.hiccups, 0, "{scheme} must keep every guarantee");
    }
    println!("\nBoth schemes absorbed the surge with zero playback glitches.");
    Ok(())
}

/// Rebuilds the arrival process at a new rate while keeping its RNG
/// stream position (PoissonArrivals is seeded; for a time-varying rate we
/// re-seed deterministically from the old state via a fresh generator).
fn reseeded(old: PoissonArrivals, rate: f64) -> PoissonArrivals {
    if (old.lambda() - rate).abs() < f64::EPSILON {
        old
    } else {
        PoissonArrivals::new(rate, 42 ^ rate.to_bits())
    }
}
