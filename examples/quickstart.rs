//! Quickstart: build a fault-tolerant CM server, play some clips, kill a
//! disk mid-playback, and verify nobody noticed.
//!
//! Run with: `cargo run --example quickstart`

use cms_core::{ClipId, DiskId, Scheme};
use cms_server::CmServer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small array: 8 disks of the paper's 1996 reference model, 64 MB
    // of RAM buffer, a library of 40 clips of 20 blocks each. The builder
    // auto-tunes the parity group size, block size and contingency
    // bandwidth with the paper's Section 7 capacity model.
    let mut server = CmServer::builder(Scheme::DeclusteredParity)
        .disks(8)
        .buffer_bytes(64 << 20)
        .catalog(40, 20)
        .verify_reconstructions() // byte-check every parity rebuild
        .build()?;

    let cap = server.capacity();
    println!(
        "tuned: p = {}, block = {} KiB, q = {}, f = {}, analytic capacity = {} streams",
        cap.p,
        cap.block_bytes / 1024,
        cap.q,
        cap.f,
        cap.total_clips
    );

    // Ask for a dozen concurrent playbacks.
    for clip in 0..12u64 {
        server.request(ClipId(clip))?;
    }

    // Play for a few rounds, then lose a disk.
    server.run_rounds(6);
    println!("round 6: {:?}", server.status());
    server.fail_disk(DiskId(2))?;
    println!("disk 2 failed!");

    // Keep playing straight through the failure; watch one round live.
    let report = server.tick_report();
    println!(
        "round {} during failure: {} blocks served ({} recovery reads), {} active",
        report.round, report.blocks_served, report.recovery_reads, report.active
    );
    server.run_rounds(9);
    server.repair_disk(DiskId(2))?;
    println!("disk 2 repaired");
    server.run_rounds(60);

    let m = server.metrics();
    println!(
        "completed {} clips; {} blocks reconstructed from parity; \
         hiccups = {}, parity mismatches = {}",
        m.completed, m.reconstructions, m.hiccups, m.parity_mismatches
    );
    assert_eq!(m.completed, 12);
    assert_eq!(m.hiccups, 0, "the rate guarantee held through the failure");
    assert_eq!(m.parity_mismatches, 0, "every rebuilt block was byte-identical");
    println!("OK: every stream survived the disk failure untouched.");
    Ok(())
}
