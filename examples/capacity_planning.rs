//! Capacity planning: size a video server before buying hardware.
//!
//! Sweeps buffer sizes and schemes with the paper's Section 7 analytical
//! model, prints the tuned configuration for each, and answers the
//! question the paper's Figure 5 answers: *which fault-tolerance scheme
//! serves the most streams on MY hardware?*
//!
//! Run with: `cargo run --example capacity_planning`

use cms_core::units::mib;
use cms_core::Scheme;
use cms_model::{p_min, tuned_optimal, ModelInput};

fn main() {
    // How large must the parity group be just to FIT the library?
    // 64 GB raw array, libraries from 20 to 60 GB:
    println!("== storage-driven minimum parity group (d = 32 × 2 GB disks) ==");
    for gb in [20u64, 40, 48, 56, 60, 62] {
        match p_min(32, 2 << 30, gb << 30) {
            Some(p) => println!("  {gb:>3} GB library → p ≥ {p}"),
            None => println!("  {gb:>3} GB library → does not fit"),
        }
    }

    println!("\n== tuned capacity by scheme and buffer size (32 disks) ==");
    println!(
        "{:<34} {:>8} {:>4} {:>10} {:>4} {:>3} {:>8}",
        "scheme", "buffer", "p", "block", "q", "f", "streams"
    );
    for buffer_mb in [128u64, 256, 512, 1024, 2048] {
        let input = ModelInput::sigmod96(mib(buffer_mb));
        let mut best: Option<(Scheme, u32)> = None;
        for scheme in Scheme::ALL {
            let Ok(point) = tuned_optimal(scheme, &input, 1) else {
                continue;
            };
            println!(
                "{:<34} {:>5} MB {:>4} {:>6} KiB {:>4} {:>3} {:>8}",
                scheme.label(),
                buffer_mb,
                point.p,
                point.block_bytes / 1024,
                point.q,
                point.f,
                point.total_clips
            );
            if best.is_none_or(|(_, c)| point.total_clips > c) {
                best = Some((scheme, point.total_clips));
            }
        }
        if let Some((scheme, clips)) = best {
            println!("  → best at {buffer_mb} MB: {scheme} ({clips} streams)\n");
        }
    }
    println!(
        "The crossover the paper reports: small buffers favor declustered\n\
         parity (tiny per-stream footprint); big buffers favor the\n\
         pre-fetching schemes (bandwidth becomes the binding constraint)."
    );
}
