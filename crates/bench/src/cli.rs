//! Shared command-line parsing for the bench binaries.
//!
//! Every binary in `src/bin/` takes the same small flag set (`--json`,
//! `--rounds`, `--seed`, `--threads`, `--trace`, `--trace-rounds`); this
//! module parses it once so the binaries stop copy-pasting positional
//! scans. Parsing is infallible by design — a malformed value falls back
//! to the binary's default, matching the previous behaviour of the
//! hand-rolled scanners.

use std::path::PathBuf;

use cms_sim::TraceSpec;

/// Parsed command-line arguments shared by all bench binaries.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    args: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments (skipping `argv[0]`).
    #[must_use]
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list — the testable entry point.
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        BenchArgs { args: args.into_iter().map(Into::into).collect() }
    }

    /// Is the bare flag `name` present?
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following the flag `name`, if any.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// The value following `name`, parsed as `u64`.
    #[must_use]
    pub fn u64_value(&self, name: &str) -> Option<u64> {
        self.value(name).and_then(|v| v.parse().ok())
    }

    /// `--json`: emit machine-readable output instead of tables.
    #[must_use]
    pub fn json(&self) -> bool {
        self.flag("--json")
    }

    /// `--rounds N`, defaulting to `default`.
    #[must_use]
    pub fn rounds_or(&self, default: u64) -> u64 {
        self.u64_value("--rounds").unwrap_or(default)
    }

    /// `--seed S`, defaulting to `default`.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.u64_value("--seed").unwrap_or(default)
    }

    /// `--threads T` (0 = available parallelism, 1 = sequential).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.u64_value("--threads").unwrap_or(0) as usize
    }

    /// `--trace PATH`: trace export destination, if requested.
    #[must_use]
    pub fn trace_path(&self) -> Option<PathBuf> {
        self.value("--trace").map(PathBuf::from)
    }

    /// `--trace-rounds N`: keep only the last N rounds of events.
    #[must_use]
    pub fn trace_rounds(&self) -> Option<u64> {
        self.u64_value("--trace-rounds")
    }

    /// Builds the [`TraceSpec`] the flags describe: off without
    /// `--trace`, CSV when the path ends in `.csv`, JSONL otherwise,
    /// windowed by `--trace-rounds` when given. Harnesses running many
    /// simulations derive per-run file names via [`TraceSpec::labeled`].
    #[must_use]
    pub fn trace_spec(&self) -> TraceSpec {
        let Some(path) = self.trace_path() else {
            return TraceSpec::off();
        };
        let is_csv = path.extension().and_then(|e| e.to_str()) == Some("csv");
        let spec = if is_csv { TraceSpec::csv(path) } else { TraceSpec::jsonl(path) };
        match self.trace_rounds() {
            Some(n) => spec.with_last_rounds(n),
            None => spec,
        }
    }

    /// For analytic-only binaries: warns on stderr when `--trace` was
    /// passed but the binary runs no simulation to trace.
    pub fn warn_if_trace_unused(&self, bin: &str) {
        if self.trace_path().is_some() {
            eprintln!("{bin}: --trace ignored (analytic-only binary, no simulation runs)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_sim::TraceOutput;

    #[test]
    fn flags_and_values_parse() {
        let a = BenchArgs::from_args(["--json", "--rounds", "90", "--seed", "7", "--threads", "2"]);
        assert!(a.json());
        assert_eq!(a.rounds_or(600), 90);
        assert_eq!(a.seed_or(1), 7);
        assert_eq!(a.threads(), 2);
        // Defaults apply when absent or malformed.
        let b = BenchArgs::from_args(["--rounds", "not-a-number"]);
        assert!(!b.json());
        assert_eq!(b.rounds_or(600), 600);
        assert_eq!(b.threads(), 0);
    }

    #[test]
    fn trace_spec_picks_format_by_extension() {
        let off = BenchArgs::from_args(["--json"]);
        assert!(off.trace_spec().is_off());

        let jsonl = BenchArgs::from_args(["--trace", "out/run.jsonl"]);
        assert_eq!(
            jsonl.trace_spec().output,
            TraceOutput::Jsonl(PathBuf::from("out/run.jsonl"))
        );

        let csv = BenchArgs::from_args(["--trace", "out/run.csv", "--trace-rounds", "32"]);
        let spec = csv.trace_spec();
        assert_eq!(spec.output, TraceOutput::Csv(PathBuf::from("out/run.csv")));
        assert_eq!(spec.last_rounds, Some(32));
    }

    #[test]
    fn unknown_extension_defaults_to_jsonl() {
        let a = BenchArgs::from_args(["--trace", "run.log"]);
        assert_eq!(a.trace_spec().output, TraceOutput::Jsonl(PathBuf::from("run.log")));
    }
}
