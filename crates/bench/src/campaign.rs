//! The fault-schedule campaign: canned multi-event failure scenarios
//! swept across schemes, emitting one JSONL verdict per (scenario,
//! scheme) run.
//!
//! Each scenario is a [`cms_fault::FaultSchedule`] spec plus workload
//! knobs, run on a small 8-disk array (the engine test geometry: p = 4,
//! q = 8, f = 2) so a full sweep finishes in seconds. The rows are
//! emitted in fixed (scenario, scheme) order and every simulation is
//! bit-identical at any `--jobs`/`--threads` setting, so the output can
//! be diffed byte-for-byte against the committed golden
//! (`crates/bench/goldens/campaign.jsonl`) — CI's `fault-campaign` job
//! does exactly that at 1 and 8 worker threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cms_core::Scheme;
use cms_sim::{FaultSchedule, Metrics, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// One canned fault scenario: a schedule spec plus the workload knobs
/// that make its failure mode observable.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable scenario name (the JSONL key and `--scenario` filter).
    pub name: &'static str,
    /// The fault-schedule spec, in [`FaultSchedule::parse`] syntax.
    pub spec: &'static str,
    /// Rebuild the failed disk onto a hot spare in the background.
    pub auto_rebuild: bool,
    /// Enforce the degraded-mode admission cap while any disk is down.
    pub degraded_admission: bool,
    /// Mean Poisson arrivals per round.
    pub arrival_rate: f64,
    /// Redundancy shards per parity group (1 = XOR parity; `m >= 2` =
    /// Reed–Solomon, clustered parity-disk schemes only — incompatible
    /// schemes are skipped for that scenario).
    pub m: u32,
}

/// The canned scenario set. Disks 1 and 3 share parity groups in the
/// seed-7 (8, 4) declustered design (and a cluster in the clustered
/// placements), so the double-failure scenarios provably overlap; a
/// complementary pair such as 1 and 2 would reconstruct around both
/// failures and lose nothing.
pub const SCENARIOS: [Scenario; 7] = [
    Scenario {
        name: "single_failure",
        spec: "@30 fail 1\n",
        auto_rebuild: false,
        degraded_admission: true,
        arrival_rate: 20.0, // overload: the degraded cap must bite
        m: 1,
    },
    Scenario {
        name: "fail_during_rebuild",
        spec: "@30 fail 1\n@50 fail 3\n",
        auto_rebuild: true,
        degraded_admission: false,
        arrival_rate: 3.0,
        m: 1,
    },
    Scenario {
        name: "transient_blip",
        spec: "@30 transient 2 rounds=10\n",
        auto_rebuild: false,
        degraded_admission: false,
        arrival_rate: 3.0,
        m: 1,
    },
    Scenario {
        name: "double_failure_same_group",
        spec: "@30 fail 1\n@40 fail 3\n",
        auto_rebuild: false,
        degraded_admission: false,
        arrival_rate: 3.0,
        m: 1,
    },
    Scenario {
        name: "slow_disk",
        spec: "@30 slow 2 factor=4 rounds=20\n",
        auto_rebuild: false,
        degraded_admission: false,
        arrival_rate: 1.0,
        m: 1,
    },
    // The differential pair for multi-failure erasure coding: the same
    // two-disk loss, first under single XOR parity (streams sharing a
    // group with both disks are gone), then under RS(k, 2) (two erasures
    // per group are decodable, so nothing is lost and the rebuild runs to
    // completion). Disks 1 and 2 share cluster 0 in every (8, 4)
    // clustered placement.
    Scenario {
        name: "double_disk_failure",
        spec: "@30 fail 1\n@40 fail 2\n",
        auto_rebuild: true,
        degraded_admission: false,
        arrival_rate: 3.0,
        m: 1,
    },
    Scenario {
        name: "double_disk_failure_rs2",
        spec: "@30 fail 1\n@40 fail 2\n",
        auto_rebuild: true,
        degraded_admission: false,
        arrival_rate: 3.0,
        m: 2,
    },
];

/// Whether `scheme` can run a scenario's redundancy level: `m >= 2`
/// needs the Reed–Solomon clustered placements.
#[must_use]
pub fn scheme_supports_redundancy(scheme: Scheme, m: u32) -> bool {
    m == 1 || matches!(scheme, Scheme::PrefetchParityDisks | Scheme::StreamingRaid)
}

/// Schemes the campaign sweeps: one declustered representative, one
/// clustered representative, and the no-redundancy baseline.
pub const CAMPAIGN_SCHEMES: [Scheme; 3] =
    [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks, Scheme::NonClustered];

/// One (scenario, scheme) verdict — a JSONL line of the campaign output.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Scenario name.
    pub scenario: String,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Redundancy shards per parity group the run used (serialized only
    /// when it departs from 1, so the pre-existing single-parity golden
    /// lines stay byte-identical).
    pub m: u32,
    /// Playback glitches over the whole run.
    pub hiccups: u64,
    /// Streams deterministically declared lost (second failure in their
    /// parity group).
    pub lost_streams: u64,
    /// Admissions refused by the degraded-mode cap.
    pub degraded_refusals: u64,
    /// Rebuild blocks abandoned because a second failure removed a
    /// needed source.
    pub unrecoverable_blocks: u64,
    /// Round the background rebuild finished, if it did.
    pub rebuild_completed_round: Option<u64>,
    /// Requests admitted.
    pub admitted: u64,
    /// Clips played to completion.
    pub completed: u64,
    /// Failure-mode recovery reads issued.
    pub recovery_reads: u64,
    /// Background-rebuild source reads issued.
    pub rebuild_reads: u64,
    /// Reconstructed blocks that failed byte-level verification (always
    /// 0 — anything else is a layout/codec bug).
    pub parity_mismatches: u64,
    /// Did the run stay glitch-free end to end?
    pub guarantees_held: bool,
}

// Hand-rolled (de)serialization: `m` is emitted only when it departs
// from 1 and defaults to 1 on read, keeping the historical single-parity
// golden lines byte-identical (the vendored derive has no
// `#[serde(default/skip_serializing_if)]`).
impl Serialize for CampaignRow {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![
            ("scenario".to_string(), self.scenario.serialize()),
            ("scheme".to_string(), self.scheme.serialize()),
        ];
        if self.m != 1 {
            fields.push(("m".to_string(), self.m.serialize()));
        }
        fields.push(("hiccups".to_string(), self.hiccups.serialize()));
        fields.push(("lost_streams".to_string(), self.lost_streams.serialize()));
        fields.push(("degraded_refusals".to_string(), self.degraded_refusals.serialize()));
        fields.push((
            "unrecoverable_blocks".to_string(),
            self.unrecoverable_blocks.serialize(),
        ));
        fields.push((
            "rebuild_completed_round".to_string(),
            self.rebuild_completed_round.serialize(),
        ));
        fields.push(("admitted".to_string(), self.admitted.serialize()));
        fields.push(("completed".to_string(), self.completed.serialize()));
        fields.push(("recovery_reads".to_string(), self.recovery_reads.serialize()));
        fields.push(("rebuild_reads".to_string(), self.rebuild_reads.serialize()));
        fields.push(("parity_mismatches".to_string(), self.parity_mismatches.serialize()));
        fields.push(("guarantees_held".to_string(), self.guarantees_held.serialize()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for CampaignRow {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for CampaignRow"))?;
        let m = match fields.iter().find(|(k, _)| k == "m") {
            Some(_) => serde::from_field(fields, "m")?,
            None => 1,
        };
        Ok(CampaignRow {
            scenario: serde::from_field(fields, "scenario")?,
            scheme: serde::from_field(fields, "scheme")?,
            m,
            hiccups: serde::from_field(fields, "hiccups")?,
            lost_streams: serde::from_field(fields, "lost_streams")?,
            degraded_refusals: serde::from_field(fields, "degraded_refusals")?,
            unrecoverable_blocks: serde::from_field(fields, "unrecoverable_blocks")?,
            rebuild_completed_round: serde::from_field(fields, "rebuild_completed_round")?,
            admitted: serde::from_field(fields, "admitted")?,
            completed: serde::from_field(fields, "completed")?,
            recovery_reads: serde::from_field(fields, "recovery_reads")?,
            rebuild_reads: serde::from_field(fields, "rebuild_reads")?,
            parity_mismatches: serde::from_field(fields, "parity_mismatches")?,
            guarantees_held: serde::from_field(fields, "guarantees_held")?,
        })
    }
}

impl CampaignRow {
    fn from_metrics(scenario: &Scenario, scheme: Scheme, m: &Metrics) -> Self {
        CampaignRow {
            scenario: scenario.name.to_string(),
            scheme,
            m: scenario.m,
            hiccups: m.hiccups,
            lost_streams: m.lost_streams,
            degraded_refusals: m.degraded_refusals,
            unrecoverable_blocks: m.unrecoverable_blocks,
            rebuild_completed_round: m.rebuild_completed_round,
            admitted: m.admitted,
            completed: m.completed,
            recovery_reads: m.recovery_reads,
            rebuild_reads: m.rebuild_reads,
            parity_mismatches: m.parity_mismatches,
            guarantees_held: m.guarantees_held(),
        }
    }
}

/// Builds the simulation config for one campaign run: the engine test
/// geometry (d = 8, p = 4, q = 8, f = 2) with byte-level verification
/// on, parameterized by the scenario's knobs.
///
/// # Panics
///
/// Panics if the canned spec fails to parse — a campaign table bug.
#[must_use]
pub fn campaign_config(
    scenario: &Scenario,
    scheme: Scheme,
    rounds: u64,
    seed: u64,
    threads: usize,
) -> SimConfig {
    // lint: allow(P001) canned table specs are parse-tested; a bad one is a build bug
    let faults = FaultSchedule::parse(scenario.spec).expect("canned spec must parse");
    SimConfig {
        scheme,
        d: 8,
        p: 4,
        m: scenario.m,
        q: 8,
        f: 2,
        block_bytes: 1 << 20,
        catalog_clips: 40,
        clip_len: 20,
        clip_len_spread: 0,
        arrival_rate: scenario.arrival_rate,
        zipf_theta: 0.0,
        rounds,
        failure: None,
        faults: Some(faults),
        degraded_admission: scenario.degraded_admission,
        verify_parity: true,
        content_bytes: 256,
        seed,
        admission_scan: 64,
        aging_limit: 200,
        auto_rebuild: scenario.auto_rebuild,
        threads,
        trace: cms_sim::TraceSpec::off(),
    }
}

/// Runs the campaign: every scenario × scheme, `jobs` runs in flight at
/// once (0 = one per task), each simulation's disk loop at
/// `sim_threads`. Rows come back in fixed (scenario, scheme) order and
/// are bit-identical at any `jobs`/`sim_threads` setting. `filter`
/// restricts to one scenario by name.
#[must_use]
pub fn campaign_rows(
    rounds: u64,
    seed: u64,
    jobs: usize,
    sim_threads: usize,
    filter: Option<&str>,
) -> Vec<CampaignRow> {
    let tasks: Vec<(usize, &Scenario, Scheme)> = SCENARIOS
        .iter()
        .filter(|sc| filter.is_none_or(|f| f == sc.name))
        .flat_map(|sc| CAMPAIGN_SCHEMES.into_iter().map(move |scheme| (sc, scheme)))
        .filter(|&(sc, scheme)| scheme_supports_redundancy(scheme, sc.m))
        .enumerate()
        .map(|(slot, (sc, scheme))| (slot, sc, scheme))
        .collect();
    let workers = if jobs == 0 { tasks.len() } else { jobs }.clamp(1, tasks.len().max(1));
    let results: Vec<Mutex<Option<CampaignRow>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(slot, scenario, scheme)) = tasks.get(i) else { break };
                let cfg = campaign_config(scenario, scheme, rounds, seed, sim_threads);
                // lint: allow(P001) the fixed campaign geometry always constructs
                let sim = Simulator::new(cfg).expect("campaign geometry must construct");
                let row = CampaignRow::from_metrics(scenario, scheme, &sim.run());
                // lint: allow(P001) a poisoned slot means a worker already panicked
                *results[slot].lock().expect("campaign worker panicked") = Some(row);
            });
        }
    });
    results
        .into_iter()
        // lint: allow(P001) a poisoned slot means a worker already panicked
        .filter_map(|m| m.into_inner().expect("campaign worker panicked"))
        .collect()
}

/// Serializes rows as JSONL (one compact JSON object per line) — the
/// campaign's on-disk and golden format.
///
/// # Panics
///
/// Panics if serialization fails (plain data; it cannot).
#[must_use]
pub fn to_jsonl(rows: &[CampaignRow]) -> String {
    let mut out = String::new();
    for row in rows {
        // lint: allow(P001) plain-data serialization cannot fail
        out.push_str(&serde_json::to_string(row).expect("serializable"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_specs_parse_and_validate() {
        for sc in &SCENARIOS {
            let sched = FaultSchedule::parse(sc.spec).expect(sc.name);
            sched.validate(8).expect(sc.name);
        }
    }

    #[test]
    fn filter_restricts_to_one_scenario() {
        let rows = campaign_rows(60, 7, 0, 1, Some("transient_blip"));
        assert_eq!(rows.len(), CAMPAIGN_SCHEMES.len());
        assert!(rows.iter().all(|r| r.scenario == "transient_blip"));
    }

    #[test]
    fn jobs_do_not_change_rows() {
        let seq = campaign_rows(60, 7, 1, 1, Some("double_failure_same_group"));
        let par = campaign_rows(60, 7, 8, 1, Some("double_failure_same_group"));
        assert_eq!(seq, par);
        assert_eq!(to_jsonl(&seq), to_jsonl(&par));
    }

    #[test]
    fn jsonl_round_trips() {
        let rows = campaign_rows(60, 7, 0, 1, Some("slow_disk"));
        let text = to_jsonl(&rows);
        let back: Vec<CampaignRow> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        assert_eq!(rows, back);
    }
}
