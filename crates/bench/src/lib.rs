//! # cms-bench — the experiment harness
//!
//! One function per paper artifact (Figures 5 and 6, the Equation 1 and
//! `computeOptimal` tables, the failure drill) so binaries, integration
//! tests and EXPERIMENTS.md all regenerate the same rows. Each row is a
//! plain serializable struct; the binaries print aligned tables and can
//! emit JSON.

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod budget;
pub mod campaign;
pub mod cli;
pub mod cluster_campaign;
pub mod figures;
pub mod timeline;

pub use campaign::{campaign_rows, CampaignRow, Scenario, CAMPAIGN_SCHEMES, SCENARIOS};
pub use cluster_campaign::{
    cluster_campaign_config, cluster_campaign_rows, cluster_to_jsonl, ClusterCampaignRow,
    ClusterScenario, CLUSTER_SCENARIOS, GIANT_CLUSTER_SCENARIO,
};
pub use cli::BenchArgs;
pub use timeline::render_timeline;
pub use figures::{
    failure_drill, failure_drill_threaded, failure_drill_traced, fig5_rows, fig6_rows,
    fig6_rows_threaded, fig6_rows_traced, optimal_rows, q_table_rows, sim_point, DrillRow,
    Fig5Row, Fig6Row, OptimalRow, QRow, PAPER_BUFFERS, PAPER_D, PAPER_PS,
};
