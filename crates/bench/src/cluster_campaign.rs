//! The cluster campaign: canned node-failure scenarios run on a small
//! multi-node cluster, emitting one JSONL verdict per scenario.
//!
//! Each scenario is a node-scoped [`cms_fault::FaultSchedule`] spec plus
//! gateway knobs, run on an 8-node cluster of the engine test geometry
//! (d = 8, p = 4, q = 8, f = 2 per node) so a full sweep finishes in
//! seconds. Rows are emitted in fixed scenario order and every
//! simulation is bit-identical at any `--jobs`/`--threads` setting, so
//! the output diffs byte-for-byte against the committed golden
//! (`crates/bench/goldens/cluster_campaign.jsonl`) — CI's
//! `cluster-campaign` job does exactly that at `--jobs 1` and
//! `--jobs 8 --threads 4`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cms_cluster::{ClusterConfig, ClusterMetrics, ClusterSim};
use cms_core::Scheme;
use cms_sim::{FaultSchedule, SimConfig};
use serde::{Deserialize, Serialize};

/// One canned cluster scenario: a node-scoped schedule spec plus the
/// gateway knobs that make its failure mode observable.
#[derive(Debug, Clone, Copy)]
pub struct ClusterScenario {
    /// Stable scenario name (the JSONL key and `--scenario` filter).
    pub name: &'static str,
    /// Node-scoped fault-schedule spec (`fail-node` / `repair-node`);
    /// empty string for a fault-free run.
    pub spec: &'static str,
    /// Nodes in the cluster (the canned sweep uses 8 everywhere; the
    /// opt-in `giant` stressor scales this up).
    pub nodes: u32,
    /// Replication degree `r`.
    pub replication: u32,
    /// Mean Poisson arrivals per round at the gateway.
    pub arrival_rate: f64,
    /// Blocks per round shipped to a rebuilding node.
    pub rebuild_rate: u32,
}

/// The canned scenario set, in emission order.
pub const CLUSTER_SCENARIOS: [ClusterScenario; 5] = [
    ClusterScenario {
        name: "steady",
        spec: "",
        nodes: 8,
        replication: 2,
        arrival_rate: 12.0,
        rebuild_rate: 64,
    },
    ClusterScenario {
        name: "node_failure",
        spec: "@40 fail-node 3\n",
        nodes: 8,
        replication: 2,
        arrival_rate: 12.0,
        rebuild_rate: 64,
    },
    ClusterScenario {
        name: "fail_migrate_rebuild",
        spec: "@40 fail-node 3\n@70 repair-node 3\n",
        nodes: 8,
        replication: 2,
        arrival_rate: 12.0,
        rebuild_rate: 32,
    },
    ClusterScenario {
        // Two concurrent node failures: both nodes' streams migrate at
        // once and the cluster cap shrinks by two nodes' bandwidth. A
        // clip whose replica pair is exactly {2, 5} would lose both
        // copies; whether one exists depends on the seeded placement
        // permutation (at the default seed none does, so this scenario
        // exercises concurrent migration under a deeply degraded cap).
        name: "double_node_failure",
        spec: "@40 fail-node 2\n@45 fail-node 5\n",
        nodes: 8,
        replication: 2,
        arrival_rate: 12.0,
        rebuild_rate: 64,
    },
    ClusterScenario {
        // No replication: a node failure strands its whole catalog.
        name: "unreplicated_failure",
        spec: "@40 fail-node 1\n",
        nodes: 8,
        replication: 1,
        arrival_rate: 12.0,
        rebuild_rate: 64,
    },
];

/// The opt-in cluster-scale stressor: a 48-node cluster under an
/// arrival flood, run only when `--scenario giant` asks for it (the
/// default sweep and its committed golden stay the canned 8-node five).
/// It rides the same work-stealing runner as the sweep, so `--jobs`
/// settings are exercised at scale; rows remain bit-identical at any
/// `--jobs`/`--threads` combination.
pub const GIANT_CLUSTER_SCENARIO: ClusterScenario = ClusterScenario {
    name: "giant",
    spec: "",
    nodes: 48,
    replication: 2,
    arrival_rate: 96.0,
    rebuild_rate: 64,
};

/// One scenario verdict — a JSONL line of the cluster campaign output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterCampaignRow {
    /// Scenario name.
    pub scenario: String,
    /// Nodes in the cluster.
    pub nodes: u32,
    /// Replication degree.
    pub replication: u32,
    /// Requests that arrived at the gateway.
    pub arrivals: u64,
    /// Arrivals routed to a node.
    pub routed: u64,
    /// Arrivals shed by the cluster-level cap.
    pub cluster_refusals: u64,
    /// Arrivals with no routable replica.
    pub unroutable: u64,
    /// Streams migrated off failing nodes.
    pub migrations: u64,
    /// Streams lost to node failure (no surviving replica).
    pub lost_streams: u64,
    /// `fail-node` events applied.
    pub node_failures: u64,
    /// Cross-node rebuilds completed.
    pub node_rebuilds_completed: u64,
    /// Total cross-node rebuild blocks shipped.
    pub cross_node_rebuild_blocks: u64,
    /// Admissions across all nodes.
    pub admissions: u64,
    /// Completions across all nodes.
    pub completions: u64,
    /// Playback glitches across the cluster.
    pub hiccups: u64,
    /// Highest concurrently active stream count.
    pub peak_active: u64,
    /// Did every surviving stream keep its rate guarantee?
    pub guarantees_held: bool,
}

impl ClusterCampaignRow {
    fn from_metrics(scenario: &ClusterScenario, nodes: u32, m: &ClusterMetrics) -> Self {
        ClusterCampaignRow {
            scenario: scenario.name.to_string(),
            nodes,
            replication: scenario.replication,
            arrivals: m.arrivals,
            routed: m.routed,
            cluster_refusals: m.cluster_refusals,
            unroutable: m.unroutable,
            migrations: m.migrations,
            lost_streams: m.lost_streams,
            node_failures: m.node_failures,
            node_rebuilds_completed: m.node_rebuilds_completed,
            cross_node_rebuild_blocks: m.cross_node_rebuild_blocks,
            admissions: m.admissions,
            completions: m.completions,
            hiccups: m.hiccups,
            peak_active: m.peak_active,
            guarantees_held: m.hiccups == 0,
        }
    }
}

/// Builds the cluster config for one campaign scenario:
/// `scenario.nodes` nodes of the engine test geometry behind the
/// gateway.
///
/// # Panics
///
/// Panics if the canned spec fails to parse — a campaign table bug.
#[must_use]
pub fn cluster_campaign_config(
    scenario: &ClusterScenario,
    rounds: u64,
    seed: u64,
    threads: usize,
) -> ClusterConfig {
    let node = SimConfig {
        scheme: Scheme::DeclusteredParity,
        d: 8,
        p: 4,
        m: 1,
        q: 8,
        f: 2,
        block_bytes: 1 << 20,
        catalog_clips: 1, // overridden per node by the placement map
        clip_len: 20,
        clip_len_spread: 0,
        arrival_rate: 0.0, // the gateway generates all arrivals
        zipf_theta: 0.0,
        rounds,
        failure: None,
        faults: None,
        degraded_admission: false,
        verify_parity: false,
        content_bytes: 256,
        seed,
        admission_scan: 64,
        aging_limit: 200,
        auto_rebuild: false,
        threads: 1,
        trace: cms_sim::TraceSpec::off(),
    };
    let faults = (!scenario.spec.is_empty()).then(|| {
        // lint: allow(P001) canned table specs are parse-tested; a bad one is a build bug
        FaultSchedule::parse(scenario.spec).expect("canned spec must parse")
    });
    ClusterConfig {
        nodes: scenario.nodes,
        replication: scenario.replication,
        catalog_clips: 64,
        node,
        arrival_rate: scenario.arrival_rate,
        zipf_theta: 0.0,
        rounds,
        rebuild_rate: scenario.rebuild_rate,
        rebuild_fanout: 2,
        faults,
        seed,
        threads,
        trace: cms_trace::TraceSpec::off(),
    }
}

/// Runs the cluster campaign: every scenario, `jobs` runs in flight at
/// once (0 = one per task), each cluster's node loop at `sim_threads`.
/// Rows come back in fixed scenario order and are bit-identical at any
/// `jobs`/`sim_threads` setting. `filter` restricts to one scenario.
#[must_use]
pub fn cluster_campaign_rows(
    rounds: u64,
    seed: u64,
    jobs: usize,
    sim_threads: usize,
    filter: Option<&str>,
) -> Vec<ClusterCampaignRow> {
    let tasks: Vec<(usize, &ClusterScenario)> = CLUSTER_SCENARIOS
        .iter()
        // The giant stressor is opt-in: it joins the task list only when
        // named, so the default sweep (and its golden) stays the canned
        // 8-node five.
        .chain(std::iter::once(&GIANT_CLUSTER_SCENARIO).filter(|_| filter == Some("giant")))
        .filter(|sc| filter.is_none_or(|f| f == sc.name))
        .enumerate()
        .collect();
    let workers = if jobs == 0 { tasks.len() } else { jobs }.clamp(1, tasks.len().max(1));
    let results: Vec<Mutex<Option<ClusterCampaignRow>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(slot, scenario)) = tasks.get(i) else { break };
                let cfg = cluster_campaign_config(scenario, rounds, seed, sim_threads);
                let nodes = cfg.nodes;
                // lint: allow(P001) the fixed campaign geometry always constructs
                let sim = ClusterSim::new(cfg).expect("campaign cluster must construct");
                let run = sim.run();
                let row = ClusterCampaignRow::from_metrics(scenario, nodes, &run.metrics);
                // lint: allow(P001) a poisoned slot means a worker already panicked
                *results[slot].lock().expect("campaign worker panicked") = Some(row);
            });
        }
    });
    results
        .into_iter()
        // lint: allow(P001) a poisoned slot means a worker already panicked
        .filter_map(|m| m.into_inner().expect("campaign worker panicked"))
        .collect()
}

/// Serializes rows as JSONL — the campaign's on-disk and golden format.
///
/// # Panics
///
/// Panics if serialization fails (plain data; it cannot).
#[must_use]
pub fn cluster_to_jsonl(rows: &[ClusterCampaignRow]) -> String {
    let mut out = String::new();
    for row in rows {
        // lint: allow(P001) plain-data serialization cannot fail
        out.push_str(&serde_json::to_string(row).expect("serializable"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_specs_parse_and_validate_for_the_cluster() {
        for sc in &CLUSTER_SCENARIOS {
            let cfg = cluster_campaign_config(sc, 60, 7, 1);
            cfg.validate().expect(sc.name);
        }
    }

    #[test]
    fn jobs_and_threads_do_not_change_rows() {
        let seq = cluster_campaign_rows(60, 7, 1, 1, Some("fail_migrate_rebuild"));
        let par = cluster_campaign_rows(60, 7, 8, 4, Some("fail_migrate_rebuild"));
        assert_eq!(seq, par);
        assert_eq!(cluster_to_jsonl(&seq), cluster_to_jsonl(&par));
    }

    #[test]
    fn giant_is_opt_in_and_jobs_invariant() {
        // Not part of the default sweep…
        let rows = cluster_campaign_rows(20, 7, 0, 1, None);
        assert!(rows.iter().all(|r| r.scenario != "giant"));
        // …but runs through the same work-stealing runner when named,
        // with rows identical at any jobs/threads combination.
        let seq = cluster_campaign_rows(60, 7, 1, 1, Some("giant"));
        let par = cluster_campaign_rows(60, 7, 8, 4, Some("giant"));
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].nodes, 48);
        assert!(seq[0].admissions > 0, "the flood must admit streams");
        assert_eq!(seq[0].hiccups, 0);
    }

    #[test]
    fn scenarios_show_their_failure_modes() {
        let rows = cluster_campaign_rows(120, 7, 0, 1, None);
        assert_eq!(rows.len(), CLUSTER_SCENARIOS.len());
        let by_name = |n: &str| rows.iter().find(|r| r.scenario == n).expect(n);
        assert_eq!(by_name("steady").migrations, 0);
        assert_eq!(by_name("steady").lost_streams, 0);
        assert!(by_name("node_failure").migrations > 0, "replicas absorb the streams");
        assert_eq!(by_name("node_failure").lost_streams, 0);
        assert!(by_name("fail_migrate_rebuild").node_rebuilds_completed == 1);
        assert!(by_name("fail_migrate_rebuild").cross_node_rebuild_blocks > 0);
        assert!(by_name("unreplicated_failure").lost_streams > 0, "r=1 has no fallback");
        assert!(by_name("unreplicated_failure").unroutable > 0);
        for r in &rows {
            assert_eq!(r.hiccups, 0, "{}: surviving streams keep their guarantee", r.scenario);
            assert_eq!(r.arrivals, r.routed + r.cluster_refusals + r.unroutable, "{}", r.scenario);
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let rows = cluster_campaign_rows(60, 7, 0, 1, Some("steady"));
        let text = cluster_to_jsonl(&rows);
        let back: Vec<ClusterCampaignRow> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        assert_eq!(rows, back);
    }
}
