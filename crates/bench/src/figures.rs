//! Row generators for every table and figure in the paper's evaluation.

use cms_core::units::{gib, kib, mbps, mib};
use cms_core::{CmsError, ContinuityBudget, DiskId, DiskParams, Scheme};
use cms_model::{capacity, compute_optimal, CapacityPoint, ModelInput};
use cms_sim::{Metrics, SimConfig, Simulator, TraceSpec};
use serde::{Deserialize, Serialize};

/// The paper's array size (`d = 32`).
pub const PAPER_D: u32 = 32;

/// The paper's parity group sweep.
pub const PAPER_PS: [u32; 5] = [2, 4, 8, 16, 32];

/// The paper's two buffer configurations: (label, bytes).
pub const PAPER_BUFFERS: [(&str, u64); 2] = [("256MB", 268_435_456), ("2GB", 2_147_483_648)];

/// One point of Figure 5 (analytical clips vs parity group size).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Buffer label ("256MB" / "2GB").
    pub buffer: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Parity group size.
    pub p: u32,
    /// The solved capacity point (block size, q, f, total clips).
    pub point: CapacityPoint,
}

/// Generates Figure 5: the analytical number of concurrently serviceable
/// clips for the five schemes over the parity-group sweep, both buffer
/// sizes.
#[must_use]
pub fn fig5_rows() -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for (label, bytes) in PAPER_BUFFERS {
        let input = ModelInput::sigmod96(bytes);
        for scheme in Scheme::FIGURE_SCHEMES {
            for p in PAPER_PS {
                if let Ok(point) = capacity(scheme, &input, p) {
                    rows.push(Fig5Row { buffer: label.to_string(), scheme, p, point });
                }
            }
        }
    }
    rows
}

/// Builds the simulation capacity point for `(scheme, p)` — λ-aware for
/// the declustered family, so the simulated server's `(q, f, b)` match the
/// design its admission controller actually gets.
///
/// # Errors
///
/// Propagates the capacity solver's errors.
pub fn sim_point(
    scheme: Scheme,
    input: &ModelInput,
    p: u32,
    seed: u64,
) -> Result<CapacityPoint, CmsError> {
    cms_model::tuned_point(scheme, input, p, seed)
}

/// One point of Figure 6 (simulated clips serviced in 600 rounds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Buffer label.
    pub buffer: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Parity group size.
    pub p: u32,
    /// The capacity point driving the run.
    pub point: CapacityPoint,
    /// Full simulation metrics (the figure's y-axis is `metrics.admitted`).
    pub metrics: Metrics,
}

/// Generates Figure 6: the simulated experiment of §8.2 (1000 clips × 50
/// rounds, Poisson λ = 20 arrivals, uniform clip choice, 600 rounds) for
/// every scheme and parity group size, both buffer sizes. Runs the disk
/// service loop at the machine's available parallelism; rows are
/// identical at any thread count.
#[must_use]
pub fn fig6_rows(rounds: u64, seed: u64) -> Vec<Fig6Row> {
    fig6_rows_threaded(rounds, seed, 0)
}

/// [`fig6_rows`] with an explicit disk-service thread count (`0` = auto,
/// `1` = sequential). The thread count only affects wall-clock time — the
/// returned rows are bit-identical at every setting.
#[must_use]
pub fn fig6_rows_threaded(rounds: u64, seed: u64, threads: usize) -> Vec<Fig6Row> {
    fig6_rows_traced(rounds, seed, threads, &TraceSpec::off())
}

/// [`fig6_rows_threaded`] with event tracing. Each `(buffer, scheme, p)`
/// run exports to its own file derived from the spec's path via
/// [`TraceSpec::labeled`]; traces follow the same determinism contract as
/// the metrics (byte-identical at any thread count).
#[must_use]
pub fn fig6_rows_traced(rounds: u64, seed: u64, threads: usize, trace: &TraceSpec) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    // Block sizing must also respect storage: 1000 clips × 50 blocks plus
    // headroom for the start-jitter padding.
    let storage_blocks = 1000 * 50 * 3 / 2;
    for (label, bytes) in PAPER_BUFFERS {
        let input = ModelInput::sigmod96(bytes).with_storage_blocks(storage_blocks);
        for scheme in Scheme::FIGURE_SCHEMES {
            for p in PAPER_PS {
                let Ok(point) = sim_point(scheme, &input, p, seed) else {
                    continue;
                };
                let mut cfg = SimConfig::sigmod96(scheme, &point, PAPER_D).with_threads(threads);
                cfg.rounds = rounds;
                cfg.seed = seed;
                cfg.trace = trace.labeled(&format!("{label}-{scheme:?}-p{p}"));
                let metrics = Simulator::new(cfg)
                    .expect("paper-scale configuration must construct")
                    .run();
                rows.push(Fig6Row { buffer: label.to_string(), scheme, p, point, metrics });
            }
        }
    }
    rows
}

/// One row of the Equation 1 table (E5): per-disk budget vs block size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QRow {
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Round duration in seconds.
    pub round_seconds: f64,
    /// The per-disk budget `q`.
    pub q: u32,
    /// Disk utilization at load `q`.
    pub utilization: f64,
}

/// Generates the Equation 1 table over a sweep of block sizes for the
/// Figure 1 reference disk and MPEG-1 playback.
#[must_use]
pub fn q_table_rows() -> Vec<QRow> {
    let disk = DiskParams::sigmod96();
    [32u64, 64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .filter_map(|kb| {
            let b = kib(kb);
            ContinuityBudget::solve(&disk, b, mbps(1.5)).ok().map(|budget| QRow {
                block_bytes: b,
                round_seconds: budget.round,
                q: budget.q,
                utilization: budget.utilization(budget.q),
            })
        })
        .collect()
}

/// One row of the `computeOptimal` table (E6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimalRow {
    /// Buffer label.
    pub buffer: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Whether only exact λ = 1 designs were admitted (the paper's
    /// "if a BIBD exists" guard).
    pub exact_designs_only: bool,
    /// The optimal point.
    pub point: CapacityPoint,
}

/// Generates the Figure 4 `computeOptimal` results for every scheme and
/// both buffer sizes, with and without the exact-design guard.
#[must_use]
pub fn optimal_rows() -> Vec<OptimalRow> {
    let mut rows = Vec::new();
    for (label, bytes) in PAPER_BUFFERS {
        let input = ModelInput::sigmod96(bytes);
        for scheme in Scheme::FIGURE_SCHEMES {
            for exact in [false, true] {
                if let Ok(point) = compute_optimal(scheme, &input, 2, exact) {
                    rows.push(OptimalRow {
                        buffer: label.to_string(),
                        scheme,
                        exact_designs_only: exact,
                        point,
                    });
                }
            }
        }
    }
    rows
}

/// One row of the failure drill (E7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrillRow {
    /// Scheme.
    pub scheme: Scheme,
    /// Parity group size.
    pub p: u32,
    /// Metrics of the run with a disk killed mid-run and byte-level
    /// verification on.
    pub metrics: Metrics,
}

/// Runs the failure drill: for every scheme at one representative parity
/// group size, kill a disk mid-run with verification enabled. Schemes 1–5
/// must report zero hiccups and zero parity mismatches; the non-clustered
/// baseline is expected to hiccup under saturation (the §7.4 caveat).
#[must_use]
pub fn failure_drill(rounds: u64, seed: u64) -> Vec<DrillRow> {
    failure_drill_threaded(rounds, seed, 0)
}

/// [`failure_drill`] with an explicit disk-service thread count (`0` =
/// auto, `1` = sequential); metrics are bit-identical at every setting.
#[must_use]
pub fn failure_drill_threaded(rounds: u64, seed: u64, threads: usize) -> Vec<DrillRow> {
    failure_drill_traced(rounds, seed, threads, &TraceSpec::off())
}

/// [`failure_drill_threaded`] with event tracing. Each scheme's run
/// exports to its own file derived from the spec's path via
/// [`TraceSpec::labeled`]; the exported failure→recovery→rebuild event
/// stream is byte-identical at any thread count.
#[must_use]
pub fn failure_drill_traced(
    rounds: u64,
    seed: u64,
    threads: usize,
    trace: &TraceSpec,
) -> Vec<DrillRow> {
    let input = ModelInput::sigmod96(mib(256)).with_storage_blocks(1000 * 50 * 3 / 2);
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let p = 4;
        let Ok(point) = sim_point(scheme, &input, p, seed) else {
            continue;
        };
        let mut cfg = SimConfig::sigmod96(scheme, &point, PAPER_D)
            .with_failure(rounds / 3, DiskId(5))
            .with_verification()
            .with_threads(threads);
        cfg.rounds = rounds;
        cfg.seed = seed;
        cfg.trace = trace.labeled(&format!("{scheme:?}-p{p}"));
        let metrics = Simulator::new(cfg).expect("drill config must construct").run();
        rows.push(DrillRow { scheme, p, metrics });
    }
    rows
}

/// Sanity helper shared by tests: 2 GB input.
#[must_use]
pub fn large_input() -> ModelInput {
    ModelInput::sigmod96(gib(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_covers_the_grid() {
        let rows = fig5_rows();
        // 2 buffers × 5 schemes × 5 p-values = 50 points, all feasible.
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|r| r.point.total_clips > 0));
    }

    #[test]
    fn q_table_matches_equation1() {
        let rows = q_table_rows();
        assert!(!rows.is_empty());
        // q grows with block size; utilization stays within 1.
        for w in rows.windows(2) {
            assert!(w[1].q >= w[0].q);
        }
        for r in &rows {
            assert!(r.utilization <= 1.0 + 1e-9);
            assert!(r.round_seconds > 0.0);
        }
        // The 256 KiB reference point: q = 24 (hand-checked).
        let r256 = rows.iter().find(|r| r.block_bytes == 256 * 1024).unwrap();
        assert_eq!(r256.q, 24);
    }

    #[test]
    fn optimal_rows_cover_schemes() {
        let rows = optimal_rows();
        for scheme in Scheme::FIGURE_SCHEMES {
            assert!(
                rows.iter().any(|r| r.scheme == scheme && !r.exact_designs_only),
                "{scheme} missing"
            );
        }
        // Exact-design guard never beats the relaxed optimum.
        for r in rows.iter().filter(|r| r.exact_designs_only) {
            let relaxed = rows
                .iter()
                .find(|x| x.scheme == r.scheme && x.buffer == r.buffer && !x.exact_designs_only)
                .unwrap();
            assert!(relaxed.point.total_clips >= r.point.total_clips);
        }
    }

    #[test]
    fn sim_point_is_lambda_aware_for_declustered() {
        let input = ModelInput::sigmod96(mib(256));
        let paper = capacity(Scheme::DeclusteredParity, &input, 8).unwrap();
        let sim = sim_point(Scheme::DeclusteredParity, &input, 8, 1).unwrap();
        // (32, 8) has λ_max = 2 ⇒ the sim point reserves more and admits
        // fewer clips than the paper's λ = 1 algebra.
        assert!(sim.total_clips <= paper.total_clips);
        // Non-PGT schemes are unchanged.
        let a = capacity(Scheme::StreamingRaid, &input, 8).unwrap();
        let b = sim_point(Scheme::StreamingRaid, &input, 8, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn short_failure_drill_upholds_guarantees() {
        for row in failure_drill(90, 3) {
            assert_eq!(row.metrics.parity_mismatches, 0, "{}", row.scheme);
            if row.scheme != Scheme::NonClustered {
                assert_eq!(row.metrics.hiccups, 0, "{}", row.scheme);
            }
        }
    }
}
