//! ASCII timeline renderer for JSONL traces — the library behind the
//! `timeline` bin, factored out so the golden snapshot test can pin the
//! exact output.
//!
//! Each output line is one round (or a bucket of rounds for long
//! traces): a bar of blocks served, the arrival/admission/recovery
//! counts, and markers for the failure milestones. Cluster traces add a
//! **node lane** above each round's disk lane (`node>` rows carrying
//! `NFAIL`/`NREPAIR`/`NREBUILT` markers plus migration and cross-node
//! rebuild traffic), so a node-failure→migration→rebuild-complete
//! campaign reads top-down: what the node tier did, then what the disks
//! underneath it served.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cms_sim::TraceSummary;
use cms_trace::{EventKind, TraceEvent};

/// Everything the renderer needs about one round of the trace.
#[derive(Debug, Default, Clone)]
struct RoundAgg {
    arrivals: u64,
    admissions: u64,
    rejections: u64,
    completions: u64,
    blocks: u64,
    recovery_reads: u64,
    hiccups: u64,
    late_serves: u64,
    service_errors: u64,
    lost_streams: u64,
    degraded_refusals: u64,
    rebuild: Option<(u64, u64)>,
    failed: Vec<u64>,
    repaired: Vec<u64>,
    rebuilt: Vec<u64>,
    transient: Vec<u64>,
    slowed: Vec<u64>,
    // The node lane: whole-node lifecycle events (cluster traces).
    node_failed: Vec<u64>,
    node_repaired: Vec<u64>,
    node_rebuilt: Vec<u64>,
    migrations: u64,
    xnode_blocks: u64,
}

impl RoundAgg {
    fn absorb(&mut self, kind: &EventKind) {
        match *kind {
            EventKind::Arrival { .. } => self.arrivals += 1,
            EventKind::Admission { .. } => self.admissions += 1,
            EventKind::Rejection { .. } => self.rejections += 1,
            EventKind::Completion { .. } => self.completions += 1,
            EventKind::DiskServe { blocks, .. } => self.blocks += u64::from(blocks),
            EventKind::RecoveryRead { .. } => self.recovery_reads += 1,
            EventKind::Reconstruction { .. } => {}
            EventKind::Hiccup { .. } => self.hiccups += 1,
            EventKind::LateServe { .. } => self.late_serves += 1,
            EventKind::ServiceError { dropped, .. } => self.service_errors += u64::from(dropped),
            EventKind::RebuildProgress { rebuilt, total } => self.rebuild = Some((rebuilt, total)),
            EventKind::DiskFailure { disk } => self.failed.push(u64::from(disk)),
            EventKind::DiskRepair { disk } => self.repaired.push(u64::from(disk)),
            EventKind::RebuildComplete { disk } => self.rebuilt.push(u64::from(disk)),
            EventKind::DiskTransient { disk, .. } => self.transient.push(u64::from(disk)),
            EventKind::DiskSlow { disk, .. } => self.slowed.push(u64::from(disk)),
            EventKind::DiskTransientEnd { .. } | EventKind::DiskSlowEnd { .. } => {}
            EventKind::StreamLost { .. } => self.lost_streams += 1,
            EventKind::DegradedRefusal { .. } => self.degraded_refusals += 1,
            EventKind::NodeFailure { node } => self.node_failed.push(u64::from(node)),
            EventKind::NodeRepair { node } => self.node_repaired.push(u64::from(node)),
            EventKind::NodeRebuildComplete { node } => self.node_rebuilt.push(u64::from(node)),
            EventKind::StreamMigrated { .. } => self.migrations += 1,
            EventKind::CrossNodeRebuildRead { blocks, .. } => {
                self.xnode_blocks += u64::from(blocks);
            }
        }
    }

    fn merge(&mut self, other: &RoundAgg) {
        self.arrivals += other.arrivals;
        self.admissions += other.admissions;
        self.rejections += other.rejections;
        self.completions += other.completions;
        self.blocks += other.blocks;
        self.recovery_reads += other.recovery_reads;
        self.hiccups += other.hiccups;
        self.late_serves += other.late_serves;
        self.service_errors += other.service_errors;
        self.lost_streams += other.lost_streams;
        self.degraded_refusals += other.degraded_refusals;
        if other.rebuild.is_some() {
            self.rebuild = other.rebuild;
        }
        self.failed.extend_from_slice(&other.failed);
        self.repaired.extend_from_slice(&other.repaired);
        self.rebuilt.extend_from_slice(&other.rebuilt);
        self.transient.extend_from_slice(&other.transient);
        self.slowed.extend_from_slice(&other.slowed);
        self.node_failed.extend_from_slice(&other.node_failed);
        self.node_repaired.extend_from_slice(&other.node_repaired);
        self.node_rebuilt.extend_from_slice(&other.node_rebuilt);
        self.migrations += other.migrations;
        self.xnode_blocks += other.xnode_blocks;
    }

    /// The node lane: markers for whole-node lifecycle events, rendered
    /// on their own row above the disk lane. Empty when the bucket had
    /// no node-tier activity.
    fn node_lane(&self) -> String {
        let mut out = String::new();
        for n in &self.node_failed {
            let _ = write!(out, "  NFAIL(n{n})");
        }
        for n in &self.node_repaired {
            let _ = write!(out, "  NREPAIR(n{n})");
        }
        for n in &self.node_rebuilt {
            let _ = write!(out, "  NREBUILT(n{n})");
        }
        if self.migrations > 0 {
            let _ = write!(out, "  migrate={}", self.migrations);
        }
        if self.xnode_blocks > 0 {
            let _ = write!(out, "  xrebuild={}", self.xnode_blocks);
        }
        out
    }

    fn markers(&self) -> String {
        let mut out = String::new();
        for d in &self.failed {
            let _ = write!(out, "  FAIL(d{d})");
        }
        for d in &self.repaired {
            let _ = write!(out, "  REPAIR(d{d})");
        }
        for d in &self.rebuilt {
            let _ = write!(out, "  REBUILT(d{d})");
        }
        for d in &self.transient {
            let _ = write!(out, "  BLIP(d{d})");
        }
        for d in &self.slowed {
            let _ = write!(out, "  SLOW(d{d})");
        }
        if self.hiccups > 0 {
            let _ = write!(out, "  !hiccups={}", self.hiccups);
        }
        if self.service_errors > 0 {
            let _ = write!(out, "  !errors={}", self.service_errors);
        }
        if self.lost_streams > 0 {
            let _ = write!(out, "  !lost={}", self.lost_streams);
        }
        if self.degraded_refusals > 0 {
            let _ = write!(out, "  refused={}", self.degraded_refusals);
        }
        out
    }
}

fn render(
    out: &mut String,
    rounds: &BTreeMap<u64, RoundAgg>,
    summary: &TraceSummary,
    width: usize,
    max_lines: u64,
) {
    // Long traces are bucketed so the timeline stays readable.
    let (first, last) = match (rounds.keys().next(), rounds.keys().next_back()) {
        (Some(&a), Some(&b)) => (a, b),
        _ => return,
    };
    let span = last - first + 1;
    let bucket = span.div_ceil(max_lines).max(1);
    let mut buckets: BTreeMap<u64, RoundAgg> = BTreeMap::new();
    for (round, agg) in rounds {
        buckets.entry((round - first) / bucket).or_default().merge(agg);
    }
    // Gateway-level traces (the cluster tier) carry no per-disk serve
    // events; their bars show arrivals instead of blocks.
    let arrival_bars = buckets.values().all(|a| a.blocks == 0) && summary.arrivals > 0;
    let bar_value = |a: &RoundAgg| if arrival_bars { a.arrivals } else { a.blocks };
    let peak_blocks = buckets.values().map(bar_value).max().unwrap_or(0).max(1);
    if bucket > 1 {
        let _ = writeln!(out, "(bucketing {bucket} rounds per line)");
    }
    if arrival_bars {
        let _ = writeln!(out, "(no disk serves in trace; bars show gateway arrivals)");
    }
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>5} {:>5} {:>6}  activity",
        "round", "blocks", "adm", "rej", "recov"
    );
    for (b, agg) in &buckets {
        let lo = first + b * bucket;
        let label = if bucket == 1 {
            format!("{lo}")
        } else {
            format!("{lo}-{}", (lo + bucket - 1).min(last))
        };
        // The node lane renders above the disk lane: whole-node events
        // first, then the array activity beneath them.
        let node_lane = agg.node_lane();
        if !node_lane.is_empty() {
            let _ = writeln!(out, "{label:>10} node>{node_lane}");
        }
        let filled = (bar_value(agg) * width as u64 / peak_blocks) as usize;
        let rec = if agg.blocks > 0 {
            (agg.recovery_reads * width as u64 / peak_blocks) as usize
        } else {
            0
        };
        // The recovery share of the bar renders as '+', the rest as '#'.
        let mut bar: String = "#".repeat(filled.saturating_sub(rec));
        bar.push_str(&"+".repeat(rec.min(filled)));
        let rebuild = agg
            .rebuild
            .map(|(done, total)| format!("  rebuild {done}/{total}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{label:>10} {:>7} {:>5} {:>5} {:>6}  |{bar:<width$}|{rebuild}{}",
            agg.blocks,
            agg.admissions,
            agg.rejections,
            agg.recovery_reads,
            agg.markers(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "summary: {} events over rounds {first}..={last}; {} arrivals, {} admissions, \
         {} rejections, {} completions",
        summary.events, summary.arrivals, summary.admissions, summary.rejections,
        summary.completions
    );
    let _ = writeln!(
        out,
        "         {} blocks served, {} recovery reads, {} reconstructions, {} hiccups, \
         {} late serves, {} service errors, {} lost streams, {} degraded refusals",
        summary.blocks_served,
        summary.recovery_reads,
        summary.reconstructions,
        summary.hiccups,
        summary.late_serves,
        summary.service_errors,
        summary.lost_streams,
        summary.degraded_refusals
    );
    if summary.node_failures > 0 || summary.node_repairs > 0 || summary.stream_migrations > 0 {
        let _ = writeln!(
            out,
            "         node tier: {} failures, {} repairs, {} migrations, \
             {} cross-node rebuild blocks",
            summary.node_failures,
            summary.node_repairs,
            summary.stream_migrations,
            summary.cross_node_rebuild_blocks
        );
        if let Some(f) = summary.node_failure_round {
            let rebuilt = summary
                .node_failure_to_rebuild_complete()
                .map_or("never".to_string(), |g| format!("+{g} rounds"));
            let _ = writeln!(
                out,
                "         node failed at round {f}; cross-node rebuild complete {rebuilt}"
            );
        }
    }
    match summary.failure_round {
        None => {
            let _ = writeln!(out, "         no disk failure in this trace");
        }
        Some(f) => {
            let first_rec = summary
                .failure_to_first_recovery()
                .map_or("never".to_string(), |g| format!("+{g} rounds"));
            let rebuilt = summary
                .failure_to_rebuild_complete()
                .map_or("never".to_string(), |g| format!("+{g} rounds"));
            let _ = writeln!(
                out,
                "         disk failed at round {f}; first recovery read {first_rec}; \
                 rebuild complete {rebuilt}"
            );
        }
    }
}

/// Renders a JSONL trace as the ASCII timeline. Returns the rendered
/// text plus the count of unparseable lines skipped, or `Err` when the
/// trace contains no events at all.
///
/// # Errors
///
/// Returns `Err` when no line of `text` parses as a trace event.
pub fn render_timeline(text: &str, width: usize, max_lines: u64) -> Result<(String, u64), String> {
    let mut rounds: BTreeMap<u64, RoundAgg> = BTreeMap::new();
    let mut summary = TraceSummary::default();
    let mut skipped = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match TraceEvent::parse_jsonl(line) {
            Some(ev) => {
                summary.observe(&ev);
                rounds.entry(ev.round).or_default().absorb(&ev.kind);
            }
            None => skipped += 1,
        }
    }
    if rounds.is_empty() {
        return Err("no events in trace".to_string());
    }
    let mut out = String::new();
    render(&mut out, &rounds, &summary, width, max_lines);
    Ok((out, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_an_error() {
        assert!(render_timeline("", 40, 60).is_err());
        assert!(render_timeline("not json\n", 40, 60).is_err());
    }

    #[test]
    fn disk_only_trace_renders_without_node_lane() {
        let text = "\
{\"round\":1,\"event\":\"arrival\",\"request\":0,\"clip\":3}\n\
{\"round\":2,\"event\":\"disk_failure\",\"disk\":5}\n";
        let (out, skipped) = render_timeline(text, 40, 60).unwrap();
        assert_eq!(skipped, 0);
        assert!(out.contains("FAIL(d5)"));
        assert!(!out.contains("node>"), "no node lane without node events");
        assert!(!out.contains("node tier:"));
    }

    #[test]
    fn node_lane_renders_above_the_disk_lane() {
        let text = "\
{\"round\":4,\"event\":\"node_failure\",\"node\":3}\n\
{\"round\":4,\"event\":\"stream_migrated\",\"request\":9,\"from\":3,\"to\":1}\n\
{\"round\":4,\"event\":\"disk_serve\",\"disk\":0,\"blocks\":6,\"queue\":6,\"busy_us\":10}\n\
{\"round\":6,\"event\":\"node_repair\",\"node\":3}\n\
{\"round\":6,\"event\":\"cross_node_rebuild_read\",\"node\":3,\"source\":1,\"blocks\":32}\n\
{\"round\":7,\"event\":\"node_rebuild_complete\",\"node\":3}\n";
        let (out, _) = render_timeline(text, 40, 60).unwrap();
        assert!(out.contains("node>  NFAIL(n3)  migrate=1"));
        assert!(out.contains("node>  NREPAIR(n3)  xrebuild=32"));
        assert!(out.contains("node>  NREBUILT(n3)"));
        assert!(out.contains("node tier: 1 failures, 1 repairs, 1 migrations"));
        assert!(out.contains("cross-node rebuild complete +3 rounds"));
        // The node lane for round 4 appears before round 4's bar line.
        let lane = out.find("NFAIL(n3)").unwrap();
        let bar = out.find('|').unwrap();
        assert!(lane < bar, "node lane must render above the disk lane");
    }
}
