//! Ratcheted performance budgets for the engine baseline.
//!
//! `PERF_BUDGETS.json` (repo root, next to `BENCH_engine.json`) holds one
//! budget per baseline scenario: a rounds/second **floor**, an
//! allocations-per-serve-phase **ceiling** (zero — the DESIGN.md §7
//! contract), and a global peak-RSS ceiling. [`check`] compares a
//! `perf_baseline` report against the table and returns every violation;
//! the `perf_budget` binary turns that into a blocking CI verdict.
//!
//! The table is a *ratchet*: [`ratchet`] only ever tightens it. Floors
//! move up to `measured / FLOOR_HEADROOM`, never down; the RSS ceiling
//! moves down to `measured * RSS_HEADROOM`, never up. Loosening a budget
//! is a deliberate act — edit the JSON by hand and justify it in
//! `PERF_BUDGETS.md`.
//!
//! The headroom factors absorb host-to-host variance (CI runners are
//! several times slower and noisier than a warm workstation) without
//! letting an order-of-magnitude regression — say, the SoA stream table
//! silently reverting to per-round map rebuilds — pass unnoticed.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Floors are set this many times below the measured rounds/second.
pub const FLOOR_HEADROOM: f64 = 4.0;
/// The RSS ceiling is set this many times above the measured peak.
pub const RSS_HEADROOM: f64 = 4.0;

/// Budget for one baseline scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioBudget {
    /// Minimum acceptable rounds/second (floor, with headroom baked in).
    pub min_rounds_per_sec: f64,
    /// Maximum acceptable allocations per serve phase. The contract is
    /// zero for every steady scenario; kept in the table so a deliberate
    /// exception would be visible in review.
    pub max_allocs_per_round: f64,
}

/// The committed budget table (`PERF_BUDGETS.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetTable {
    /// Schema tag, bumped on incompatible change.
    pub schema: String,
    /// Peak-RSS ceiling in KiB for the whole baseline run.
    pub max_peak_rss_kib: u64,
    /// Per-scenario budgets, keyed by scenario name (sorted for stable
    /// diffs).
    pub scenarios: BTreeMap<String, ScenarioBudget>,
}

/// Current schema tag.
pub const BUDGET_SCHEMA: &str = "cms-perf-budgets/v1";

impl BudgetTable {
    /// An empty table ready to be ratcheted from a first report.
    #[must_use]
    pub fn empty() -> Self {
        BudgetTable {
            schema: BUDGET_SCHEMA.to_owned(),
            max_peak_rss_kib: u64::MAX,
            scenarios: BTreeMap::new(),
        }
    }
}

/// The slice of a `perf_baseline` report the checker consumes.
///
/// Deserialized with `serde(deny_unknown_fields)` *off* so the report can
/// grow fields without breaking the checker.
#[derive(Debug, Clone, Deserialize)]
pub struct PerfReport {
    /// Report schema tag (`cms-perf-baseline/v1`).
    pub schema: String,
    /// Whether the counting allocator was compiled in.
    pub alloc_counting: bool,
    /// Peak resident set in KiB, when `/proc` exposed it.
    pub peak_rss_kib: Option<u64>,
    /// Measured scenarios.
    pub scenarios: Vec<PerfScenario>,
}

/// One measured scenario of the report.
#[derive(Debug, Clone, Deserialize)]
pub struct PerfScenario {
    /// Scenario name (`fig6_steady`, `giant`, ...).
    pub name: String,
    /// Measured throughput.
    pub rounds_per_sec: f64,
    /// Allocations per serve phase (`None` without `bench-alloc`).
    pub allocs_per_round: Option<f64>,
}

/// One budget violation, carrying enough context to be actionable from a
/// CI log alone.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Throughput fell below the committed floor.
    TooSlow {
        /// Scenario name.
        name: String,
        /// Measured rounds/second.
        measured: f64,
        /// Committed floor.
        floor: f64,
    },
    /// Serve-phase allocations exceeded the ceiling.
    TooManyAllocs {
        /// Scenario name.
        name: String,
        /// Measured allocations per serve phase.
        measured: f64,
        /// Committed ceiling.
        ceiling: f64,
    },
    /// Peak RSS exceeded the ceiling.
    RssOverCeiling {
        /// Measured peak RSS in KiB.
        measured: u64,
        /// Committed ceiling in KiB.
        ceiling: u64,
    },
    /// A budgeted scenario is absent from the report — a silently dropped
    /// scenario must fail the gate, not dodge it.
    MissingScenario {
        /// Scenario name.
        name: String,
    },
    /// The report lacks allocation counts (built without `bench-alloc`),
    /// so the zero-allocation contract cannot be checked.
    NoAllocCounting,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooSlow { name, measured, floor } => write!(
                f,
                "{name}: {measured:.1} rounds/s is below the committed floor of {floor:.1}"
            ),
            Violation::TooManyAllocs { name, measured, ceiling } => write!(
                f,
                "{name}: {measured} allocs/serve-phase exceeds the ceiling of {ceiling}"
            ),
            Violation::RssOverCeiling { measured, ceiling } => write!(
                f,
                "peak RSS {measured} KiB exceeds the ceiling of {ceiling} KiB"
            ),
            Violation::MissingScenario { name } => {
                write!(f, "{name}: budgeted scenario missing from the report")
            }
            Violation::NoAllocCounting => write!(
                f,
                "report built without --features bench-alloc; allocation contract unchecked"
            ),
        }
    }
}

/// Checks a report against the table. Returns every violation (empty ⇒
/// the budget holds).
#[must_use]
pub fn check(report: &PerfReport, budgets: &BudgetTable) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !report.alloc_counting {
        violations.push(Violation::NoAllocCounting);
    }
    for (name, budget) in &budgets.scenarios {
        let Some(s) = report.scenarios.iter().find(|s| &s.name == name) else {
            violations.push(Violation::MissingScenario { name: name.clone() });
            continue;
        };
        if s.rounds_per_sec < budget.min_rounds_per_sec {
            violations.push(Violation::TooSlow {
                name: name.clone(),
                measured: s.rounds_per_sec,
                floor: budget.min_rounds_per_sec,
            });
        }
        if let Some(allocs) = s.allocs_per_round {
            if allocs > budget.max_allocs_per_round {
                violations.push(Violation::TooManyAllocs {
                    name: name.clone(),
                    measured: allocs,
                    ceiling: budget.max_allocs_per_round,
                });
            }
        }
    }
    if let Some(rss) = report.peak_rss_kib {
        if rss > budgets.max_peak_rss_kib {
            violations.push(Violation::RssOverCeiling {
                measured: rss,
                ceiling: budgets.max_peak_rss_kib,
            });
        }
    }
    violations
}

/// Tightens `budgets` from a fresh report: floors rise to
/// `measured / FLOOR_HEADROOM` (never fall), the RSS ceiling drops to
/// `measured * RSS_HEADROOM` (never rises), allocation ceilings stay at
/// zero for new scenarios. Returns `true` when anything changed.
pub fn ratchet(budgets: &mut BudgetTable, report: &PerfReport) -> bool {
    let before = budgets.clone();
    for s in &report.scenarios {
        let candidate = s.rounds_per_sec / FLOOR_HEADROOM;
        let entry = budgets
            .scenarios
            .entry(s.name.clone())
            .or_insert(ScenarioBudget { min_rounds_per_sec: 0.0, max_allocs_per_round: 0.0 });
        if candidate > entry.min_rounds_per_sec {
            entry.min_rounds_per_sec = candidate;
        }
    }
    if let Some(rss) = report.peak_rss_kib {
        // Ceilings only tighten; the ratchet never loosens one.
        let candidate = (rss as f64 * RSS_HEADROOM).ceil() as u64;
        if candidate < budgets.max_peak_rss_kib {
            budgets.max_peak_rss_kib = candidate;
        }
    }
    *budgets != before
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenarios: Vec<PerfScenario>) -> PerfReport {
        PerfReport {
            schema: "cms-perf-baseline/v1".to_owned(),
            alloc_counting: true,
            peak_rss_kib: Some(100_000),
            scenarios,
        }
    }

    fn table() -> BudgetTable {
        let mut t = BudgetTable::empty();
        t.max_peak_rss_kib = 200_000;
        t.scenarios.insert(
            "fig6_steady".to_owned(),
            ScenarioBudget { min_rounds_per_sec: 1000.0, max_allocs_per_round: 0.0 },
        );
        t
    }

    fn scenario(name: &str, rps: f64, allocs: f64) -> PerfScenario {
        PerfScenario {
            name: name.to_owned(),
            rounds_per_sec: rps,
            allocs_per_round: Some(allocs),
        }
    }

    #[test]
    fn clean_report_passes() {
        let r = report(vec![scenario("fig6_steady", 5000.0, 0.0)]);
        assert!(check(&r, &table()).is_empty());
    }

    #[test]
    fn slow_scenario_fails() {
        let r = report(vec![scenario("fig6_steady", 10.0, 0.0)]);
        let v = check(&r, &table());
        assert!(matches!(&v[..], [Violation::TooSlow { name, .. }] if name == "fig6_steady"));
    }

    #[test]
    fn allocations_fail() {
        let r = report(vec![scenario("fig6_steady", 5000.0, 0.5)]);
        let v = check(&r, &table());
        assert!(
            matches!(&v[..], [Violation::TooManyAllocs { measured, .. }] if *measured == 0.5)
        );
    }

    #[test]
    fn missing_scenario_and_rss_fail() {
        let mut r = report(vec![]);
        r.peak_rss_kib = Some(300_000);
        let v = check(&r, &table());
        assert!(v.contains(&Violation::MissingScenario { name: "fig6_steady".to_owned() }));
        assert!(v.contains(&Violation::RssOverCeiling { measured: 300_000, ceiling: 200_000 }));
    }

    #[test]
    fn missing_alloc_counting_fails() {
        let mut r = report(vec![scenario("fig6_steady", 5000.0, 0.0)]);
        r.alloc_counting = false;
        assert!(check(&r, &table()).contains(&Violation::NoAllocCounting));
    }

    #[test]
    fn ratchet_only_tightens() {
        let mut t = table();
        // Faster report raises the floor and lowers the RSS ceiling.
        let fast = report(vec![scenario("fig6_steady", 8000.0, 0.0)]);
        assert!(ratchet(&mut t, &fast));
        assert_eq!(t.scenarios["fig6_steady"].min_rounds_per_sec, 2000.0);
        assert_eq!(t.max_peak_rss_kib, 200_000); // 100k * 4 == existing, no change

        // A slower report must not loosen anything.
        let mut slow = report(vec![scenario("fig6_steady", 100.0, 0.0)]);
        slow.peak_rss_kib = Some(90_000_000);
        assert!(!ratchet(&mut t, &slow));
        assert_eq!(t.scenarios["fig6_steady"].min_rounds_per_sec, 2000.0);
        assert_eq!(t.max_peak_rss_kib, 200_000);

        // New scenarios enter with a zero-alloc ceiling.
        let fresh = report(vec![scenario("giant", 400.0, 0.0)]);
        assert!(ratchet(&mut t, &fresh));
        assert_eq!(t.scenarios["giant"].max_allocs_per_round, 0.0);
        assert_eq!(t.scenarios["giant"].min_rounds_per_sec, 100.0);
    }

    #[test]
    fn table_round_trips_through_json() {
        let t = table();
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: BudgetTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
