// lint: allow(H001) this bin hosts the bench-alloc counting global allocator, which requires unsafe GlobalAlloc
//! Engine performance baseline: rounds/second for three fixed scenarios,
//! written as machine-readable JSON (`BENCH_engine.json`).
//!
//! Scenarios (all single-cell, deterministic):
//!
//! * `fig6_steady` — the Figure 6 cell (DeclusteredParity, p = 4, 256 MB)
//!   in healthy steady state;
//! * `failure_drill` — the same cell running degraded after a disk
//!   failure, with reconstruction verification on;
//! * `rebuild` — background rebuild onto a spare under client load (the
//!   A3 experiment's configuration);
//! * `rs-rebuild` — the campaign's `double_disk_failure_rs2` cell
//!   (PrefetchParityDisks under RS(2, 2), both failures landing during
//!   warm-up, background rebuild, byte-level verification on), so the
//!   GF(256) encode/decode hot loops run — and are allocation-counted —
//!   inside the timed window;
//! * `cluster-small` — the campaign's 8-node steady-state cluster behind
//!   the gateway (one serve phase per node per round, so `serve_rounds`
//!   is `rounds * 8` for this scenario);
//! * `giant` — the scale stressor: a 1000-disk declustered array
//!   saturated at ~50 000 concurrent streams (p = 2 complete-pairs
//!   design, q = 52, 1 MB blocks). Three orders of magnitude more
//!   streams than a paper cell; capped at 256 measured rounds so the
//!   suite stays CI-sized.
//!
//! Each scenario steps `--warmup` rounds (default 64) to grow the scratch
//! arenas to steady-state size, then times `--rounds` further rounds
//! (default 4096 — long enough that the measurement is dominated by
//! steady-state service, not the admission ramp; sub-second windows
//! showed ±40 % run-to-run noise). With `--features bench-alloc` the
//! binary installs a counting global allocator and reports the
//! allocations attributed to the disk-service phase of the timed window —
//! the performance contract (DESIGN.md §7) says that number is zero.
//! Attribution is only valid single-threaded, so `--threads` defaults to
//! 1 here (0 also means 1).
//!
//! Usage:
//! `cargo run --release -p cms-bench --features bench-alloc --bin perf_baseline -- [--out BENCH_engine.json] [--rounds N] [--warmup N] [--seed S] [--threads T] [--only NAME] [--gauge-probe]`

use std::time::Instant;

use cms_bench::campaign::campaign_config;
use cms_bench::{cluster_campaign_config, sim_point, BenchArgs, CLUSTER_SCENARIOS, PAPER_D, SCENARIOS};
use cms_cluster::ClusterSim;
use cms_core::units::mib;
use cms_core::{DiskId, Scheme};
use cms_model::ModelInput;
use cms_sim::{SimConfig, Simulator};
use serde::Serialize;

#[cfg(feature = "bench-alloc")]
mod counting_alloc {
    //! Pass-through global allocator that notes every allocation with the
    //! sim's hot gauge, so serve-phase allocations can be counted.

    use std::alloc::{GlobalAlloc, Layout, System};

    struct Counting;

    // SAFETY: defers entirely to `System`; the bookkeeping is two relaxed
    // atomic operations and never allocates itself.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            cms_sim::hotgauge::note_alloc();
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            cms_sim::hotgauge::note_alloc();
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static ALLOC: Counting = Counting;
}

/// One timed scenario of the report.
#[derive(Debug, Serialize)]
struct Scenario {
    name: &'static str,
    rounds: u64,
    elapsed_secs: f64,
    rounds_per_sec: f64,
    /// Allocations inside the disk-service phase of the timed window
    /// (`None` without `--features bench-alloc`).
    serve_allocs: Option<u64>,
    /// Serve phases observed in the timed window.
    serve_rounds: Option<u64>,
    allocs_per_round: Option<f64>,
}

/// The whole `BENCH_engine.json` document.
#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    threads: usize,
    warmup_rounds: u64,
    measured_rounds: u64,
    seed: u64,
    alloc_counting: bool,
    /// Peak resident set (`VmHWM`) in KiB, when `/proc` exposes it.
    peak_rss_kib: Option<u64>,
    scenarios: Vec<Scenario>,
}

fn run_scenario(name: &'static str, mut sim: Simulator, warmup: u64, rounds: u64) -> Scenario {
    time_scenario(name, warmup, rounds, || {
        sim.step();
    })
}

/// Times a cluster scenario. Every node steps inside one cluster round,
/// so the serve-phase gauge observes `nodes` phases per timed round —
/// `serve_rounds` comes back as `rounds * nodes`, with the same
/// zero-allocations-per-phase contract as the single-node scenarios.
fn run_cluster_scenario(
    name: &'static str,
    mut sim: ClusterSim,
    warmup: u64,
    rounds: u64,
) -> Scenario {
    time_scenario(name, warmup, rounds, || {
        sim.step();
    })
}

fn time_scenario(
    name: &'static str,
    warmup: u64,
    rounds: u64,
    mut step: impl FnMut(),
) -> Scenario {
    for _ in 0..warmup {
        step();
    }
    #[cfg(feature = "bench-alloc")]
    cms_sim::hotgauge::reset();
    let start = Instant::now();
    for _ in 0..rounds {
        step();
    }
    let elapsed_secs = start.elapsed().as_secs_f64();

    let serve_allocs: Option<u64>;
    let serve_rounds: Option<u64>;
    let allocs_per_round: Option<f64>;
    #[cfg(feature = "bench-alloc")]
    {
        let (allocs, phases) = cms_sim::hotgauge::snapshot();
        serve_allocs = Some(allocs);
        serve_rounds = Some(phases);
        allocs_per_round =
            Some(if phases == 0 { 0.0 } else { allocs as f64 / phases as f64 });
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        serve_allocs = None;
        serve_rounds = None;
        allocs_per_round = None;
    }

    Scenario {
        name,
        rounds,
        elapsed_secs,
        rounds_per_sec: rounds as f64 / elapsed_secs,
        serve_allocs,
        serve_rounds,
        allocs_per_round,
    }
}

/// The Figure 6 cell: DeclusteredParity, p = 4, 256 MB buffer, healthy.
fn fig6_sim(total: u64, seed: u64, threads: usize) -> Simulator {
    let input = ModelInput::sigmod96(mib(256)).with_storage_blocks(1000 * 50 * 3 / 2);
    let point =
        sim_point(Scheme::DeclusteredParity, &input, 4, seed).expect("fig6 cell constructs");
    let mut cfg =
        SimConfig::sigmod96(Scheme::DeclusteredParity, &point, PAPER_D).with_threads(threads);
    cfg.rounds = total;
    cfg.seed = seed;
    Simulator::new(cfg).expect("fig6 sim constructs")
}

/// The same cell degraded: disk 5 fails mid-warm-up, verification on, so
/// the timed window measures reconstruction-mode service.
fn drill_sim(total: u64, warmup: u64, seed: u64, threads: usize) -> Simulator {
    let input = ModelInput::sigmod96(mib(256)).with_storage_blocks(1000 * 50 * 3 / 2);
    let point =
        sim_point(Scheme::DeclusteredParity, &input, 4, seed).expect("drill cell constructs");
    let mut cfg = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, PAPER_D)
        .with_failure(warmup / 2, DiskId(5))
        .with_verification()
        .with_threads(threads);
    cfg.rounds = total;
    cfg.seed = seed;
    Simulator::new(cfg).expect("drill sim constructs")
}

/// The A3 rebuild configuration: small library, moderate load, background
/// rebuild onto a spare running through the whole timed window.
fn rebuild_sim(total: u64, warmup: u64, seed: u64, threads: usize) -> Simulator {
    let input = ModelInput::sigmod96(mib(256)).with_storage_blocks(24_000);
    let point =
        sim_point(Scheme::DeclusteredParity, &input, 4, seed).expect("rebuild point constructs");
    let mut cfg = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, PAPER_D)
        .with_failure(warmup / 2, DiskId(1))
        .with_threads(threads);
    cfg.catalog_clips = 300;
    cfg.arrival_rate = 5.0;
    cfg.rounds = total;
    cfg.seed = seed;
    cfg.auto_rebuild = true;
    Simulator::new(cfg).expect("rebuild sim constructs")
}

/// The Reed–Solomon drill: the fault campaign's `double_disk_failure_rs2`
/// cell — PrefetchParityDisks with RS(2, 2) groups, disks 1 and 2 (same
/// cluster) failing at rounds 30/40 (inside the default warm-up),
/// background rebuild, and byte-level reconstruction verification on.
/// Every recovery and rebuild decode in the timed window exercises the
/// GF(256) kernels, so the budget gate pins both their throughput and
/// the zero-allocation contract of the `_within` codec paths.
fn rs_rebuild_sim(total: u64, seed: u64, threads: usize) -> Simulator {
    let scenario = SCENARIOS
        .iter()
        .find(|s| s.name == "double_disk_failure_rs2")
        .expect("rs2 campaign scenario exists");
    let cfg = campaign_config(scenario, Scheme::PrefetchParityDisks, total, seed, threads);
    Simulator::new(cfg).expect("rs-rebuild sim constructs")
}

/// The scale stressor: 1000 disks, ~50 000 concurrent streams. p = 2
/// resolves to the complete-pairs design (every disk pair is a parity
/// group; r = 999, λ = 1 — the only feasible block design at v = 1000),
/// and q = 52 with f = 2 puts nominal capacity at d·(q−f) = 50 000
/// double-buffered streams. The arrival flood (λ = 800/round) saturates
/// admission within the warm-up; the huge aging limit keeps the backlog
/// queued instead of expiring it.
fn giant_sim(total: u64, seed: u64, threads: usize) -> Simulator {
    let cfg = SimConfig {
        scheme: Scheme::DeclusteredParity,
        d: 1000,
        p: 2,
        m: 1,
        q: 52,
        f: 2,
        block_bytes: mib(1),
        catalog_clips: 1000,
        clip_len: 64,
        clip_len_spread: 0,
        arrival_rate: 800.0,
        zipf_theta: 0.0,
        rounds: total,
        failure: None,
        faults: None,
        degraded_admission: false,
        verify_parity: false,
        content_bytes: 512,
        seed,
        admission_scan: 64,
        aging_limit: 100_000,
        auto_rebuild: false,
        threads,
        trace: cms_sim::TraceSpec::off(),
    };
    Simulator::new(cfg).expect("giant sim constructs")
}

/// The cluster-tier scenario: the campaign's 8-node steady-state cluster
/// (DeclusteredParity, d = 8 per node, replicated catalog, gateway
/// arrivals) stepped single-threaded so allocation attribution stays
/// valid.
fn cluster_sim(total: u64, seed: u64, threads: usize) -> ClusterSim {
    let steady = CLUSTER_SCENARIOS
        .iter()
        .find(|s| s.name == "steady")
        .expect("steady scenario exists");
    let cfg = cluster_campaign_config(steady, total, seed, threads);
    ClusterSim::new(cfg).expect("cluster sim constructs")
}

/// Peak resident set size (`VmHWM`) in KiB from `/proc/self/status`.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `--gauge-probe`: proves the allocation-measurement chain is live.
/// Every real scenario is allocation-free, so a dead gauge (e.g. the
/// binary rebuilt without `bench-alloc`) and a clean hot path report the
/// same zero — this deliberately allocates inside a synthetic serve
/// bracket and demands the count.
#[cfg(feature = "bench-alloc")]
fn gauge_probe() -> ! {
    cms_sim::hotgauge::reset();
    cms_sim::hotgauge::probe_serve(|| {
        let v = vec![0u8; 4096];
        std::hint::black_box(&v);
    });
    let (allocs, phases) = cms_sim::hotgauge::snapshot();
    assert!(
        allocs >= 1 && phases == 1,
        "gauge dead: {allocs} allocs / {phases} phases counted for a probe that allocates once"
    );
    println!("perf_baseline: gauge probe ok ({allocs} alloc(s) attributed to 1 serve phase)");
    std::process::exit(0);
}

#[cfg(not(feature = "bench-alloc"))]
fn gauge_probe() -> ! {
    eprintln!("perf_baseline: --gauge-probe requires --features bench-alloc");
    std::process::exit(2);
}

fn main() {
    let args = BenchArgs::parse();
    if args.flag("--gauge-probe") {
        gauge_probe();
    }
    if args.trace_path().is_some() {
        eprintln!("perf_baseline: --trace ignored (tracing would perturb the timings)");
    }
    let threads = match args.threads() {
        0 => 1, // allocation attribution needs a single service thread
        t => t,
    };
    let warmup = args.u64_value("--warmup").unwrap_or(64);
    let rounds = args.rounds_or(4096);
    let seed = args.seed_or(1);
    let total = warmup + rounds;

    let only = args.value("--only").map(str::to_owned);
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);

    let mut scenarios = Vec::new();
    if want("fig6_steady") {
        scenarios.push(run_scenario(
            "fig6_steady",
            fig6_sim(total, seed, threads),
            warmup,
            rounds,
        ));
    }
    if want("failure_drill") {
        scenarios.push(run_scenario(
            "failure_drill",
            drill_sim(total, warmup, seed, threads),
            warmup,
            rounds,
        ));
    }
    if want("rebuild") {
        scenarios.push(run_scenario(
            "rebuild",
            rebuild_sim(total, warmup, seed, threads),
            warmup,
            rounds,
        ));
    }
    if want("rs-rebuild") {
        scenarios.push(run_scenario(
            "rs-rebuild",
            rs_rebuild_sim(total, seed, threads),
            warmup,
            rounds,
        ));
    }
    if want("cluster-small") {
        scenarios.push(run_cluster_scenario(
            "cluster-small",
            cluster_sim(total, seed, threads),
            warmup,
            rounds,
        ));
    }
    if want("giant") {
        // Each giant round services ~50k streams across 1000 disks, so
        // the measured window is capped to keep the suite CI-sized.
        let giant_rounds = rounds.min(256);
        scenarios.push(run_scenario(
            "giant",
            giant_sim(warmup + giant_rounds, seed, threads),
            warmup,
            giant_rounds,
        ));
    }
    if scenarios.is_empty() {
        eprintln!("perf_baseline: --only matched no scenario");
        std::process::exit(2);
    }

    let report = Report {
        schema: "cms-perf-baseline/v1",
        threads,
        warmup_rounds: warmup,
        measured_rounds: rounds,
        seed,
        alloc_counting: cfg!(feature = "bench-alloc"),
        peak_rss_kib: peak_rss_kib(),
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let out = args.value("--out").unwrap_or("BENCH_engine.json");
    std::fs::write(out, format!("{json}\n")).expect("output file writable");
    println!("{json}");
    eprintln!("perf_baseline: wrote {out}");
}
