//! Blocking perf-budget gate: checks a `perf_baseline` report
//! (`BENCH_engine.json`) against the committed ratchet table
//! (`PERF_BUDGETS.json`) and exits non-zero on any violation.
//!
//! Modes:
//!
//! * default — load report + budgets, print a verdict per scenario, exit
//!   1 if any floor/ceiling is violated. This is the CI gate.
//! * `--update-budgets` — tighten the table from the report (floors only
//!   rise, ceilings only fall; see `cms_bench::budget`) and rewrite the
//!   budgets file. Run after landing a real optimisation, then commit the
//!   diff.
//! * `--self-test` — feed the checker synthetic reports that violate each
//!   budget class and assert every one is flagged, so CI proves the gate
//!   can actually fail before trusting its green.
//!
//! Usage:
//! `cargo run --release -p cms-bench --bin perf_budget -- [--report BENCH_engine.json] [--budgets PERF_BUDGETS.json] [--update-budgets | --self-test]`

#![forbid(unsafe_code)]

use std::process::ExitCode;

use cms_bench::budget::{check, ratchet, BudgetTable, PerfReport, PerfScenario, Violation};
use cms_bench::BenchArgs;

fn load_report(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_budget: cannot read report {path}: {e}"));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("perf_budget: report {path} does not parse: {e}"))
}

fn load_budgets(path: &str) -> BudgetTable {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_budget: cannot read budgets {path}: {e}"));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("perf_budget: budgets {path} do not parse: {e}"))
}

/// Asserts that the checker flags every violation class and passes a
/// clean report. A gate that cannot fail is decoration; this proves the
/// failure paths before CI trusts the success path.
fn self_test() {
    let mut budgets = BudgetTable::empty();
    budgets.max_peak_rss_kib = 1_000;
    budgets.scenarios.insert(
        "steady".to_owned(),
        cms_bench::budget::ScenarioBudget {
            min_rounds_per_sec: 100.0,
            max_allocs_per_round: 0.0,
        },
    );
    budgets.scenarios.insert(
        "gone".to_owned(),
        cms_bench::budget::ScenarioBudget { min_rounds_per_sec: 1.0, max_allocs_per_round: 0.0 },
    );

    let bad = PerfReport {
        schema: "cms-perf-baseline/v1".to_owned(),
        alloc_counting: false,
        peak_rss_kib: Some(2_000),
        scenarios: vec![PerfScenario {
            name: "steady".to_owned(),
            rounds_per_sec: 50.0,
            allocs_per_round: Some(3.0),
        }],
    };
    let violations = check(&bad, &budgets);
    let has = |pred: fn(&Violation) -> bool| violations.iter().any(pred);
    assert!(has(|v| matches!(v, Violation::TooSlow { .. })), "floor violation not flagged");
    assert!(
        has(|v| matches!(v, Violation::TooManyAllocs { .. })),
        "allocation violation not flagged"
    );
    assert!(has(|v| matches!(v, Violation::RssOverCeiling { .. })), "RSS violation not flagged");
    assert!(
        has(|v| matches!(v, Violation::MissingScenario { .. })),
        "missing scenario not flagged"
    );
    assert!(has(|v| matches!(v, Violation::NoAllocCounting)), "missing alloc counting not flagged");

    let good = PerfReport {
        schema: "cms-perf-baseline/v1".to_owned(),
        alloc_counting: true,
        peak_rss_kib: Some(500),
        scenarios: vec![
            PerfScenario {
                name: "steady".to_owned(),
                rounds_per_sec: 400.0,
                allocs_per_round: Some(0.0),
            },
            PerfScenario {
                name: "gone".to_owned(),
                rounds_per_sec: 4.0,
                allocs_per_round: Some(0.0),
            },
        ],
    };
    assert!(check(&good, &budgets).is_empty(), "clean report must pass");
    println!("perf_budget: self-test ok (all 5 violation classes flagged, clean report passes)");
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    if args.flag("--self-test") {
        self_test();
        return ExitCode::SUCCESS;
    }

    let report_path = args.value("--report").unwrap_or("BENCH_engine.json");
    let budgets_path = args.value("--budgets").unwrap_or("PERF_BUDGETS.json");
    let report = load_report(report_path);

    if args.flag("--update-budgets") {
        let mut budgets = if std::path::Path::new(budgets_path).exists() {
            load_budgets(budgets_path)
        } else {
            BudgetTable::empty()
        };
        let changed = ratchet(&mut budgets, &report);
        let json = serde_json::to_string_pretty(&budgets).expect("budgets serialize");
        std::fs::write(budgets_path, format!("{json}\n")).expect("budgets file writable");
        println!("{json}");
        eprintln!(
            "perf_budget: {} {budgets_path}",
            if changed { "tightened" } else { "no change to" }
        );
        return ExitCode::SUCCESS;
    }

    let budgets = load_budgets(budgets_path);
    let violations = check(&report, &budgets);
    for (name, b) in &budgets.scenarios {
        let measured = report
            .scenarios
            .iter()
            .find(|s| &s.name == name)
            .map_or_else(|| "MISSING".to_owned(), |s| format!("{:.1} r/s", s.rounds_per_sec));
        println!("{name:>14}: {measured:>14}  (floor {:.1} r/s)", b.min_rounds_per_sec);
    }
    if let (Some(rss), ceiling) = (report.peak_rss_kib, budgets.max_peak_rss_kib) {
        println!("{:>14}: {rss:>10} KiB  (ceiling {ceiling} KiB)", "peak RSS");
    }
    if violations.is_empty() {
        println!("perf_budget: OK — every floor and ceiling holds");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("perf_budget: VIOLATION: {v}");
        }
        eprintln!(
            "perf_budget: {} violation(s); a real regression should be fixed, a deliberate \
             trade-off needs PERF_BUDGETS.json edited by hand and justified in PERF_BUDGETS.md",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
