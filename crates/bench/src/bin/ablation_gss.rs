//! Ablation A5 — grouped sweeping (GSS, CKY93) vs one-sweep C-SCAN.
//!
//! The paper fixes the disk schedule at C-SCAN with double buffering
//! (`g = 1` in GSS terms). This ablation sweeps the group count on the
//! reference disk: more groups pay more arm strokes but need smaller
//! per-stream buffers, so under buffer pressure a `g > 1` schedule can
//! serve more streams per megabyte — the CKY93 optimization the paper
//! cites when deriving Equation 1.
//!
//! Usage: `cargo run -p cms-bench --bin ablation_gss [-- --json]`
//!
//! Accepts the shared flag set; `--trace` is ignored (with a warning)
//! because this binary evaluates the GSS budget only — no simulation
//! runs.

#![forbid(unsafe_code)]

use cms_bench::BenchArgs;
use cms_core::units::{kib, mbps};
use cms_core::{DiskParams, GssBudget};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    block_kib: u64,
    groups: u32,
    q: u32,
    buffer_blocks_total: f64,
    streams_per_buffer_block: f64,
}

fn main() {
    let args = BenchArgs::parse();
    args.warn_if_trace_unused("ablation_gss");
    let disk = DiskParams::sigmod96();
    let mut rows = Vec::new();
    for block_kb in [128u64, 256, 512] {
        for g in [1u32, 2, 4, 8, 16] {
            let Ok(point) = GssBudget::solve(&disk, kib(block_kb), mbps(1.5), g) else {
                continue;
            };
            rows.push(Row {
                block_kib: block_kb,
                groups: g,
                q: point.q,
                buffer_blocks_total: point.buffer_blocks_total(),
                streams_per_buffer_block: f64::from(point.q) / point.buffer_blocks_total(),
            });
        }
    }
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== A5: grouped sweeping vs C-SCAN (per disk, Figure 1 drive, 1.5 Mbps) ==");
    println!(
        "{:>9} {:>7} {:>5} {:>14} {:>18}",
        "block", "groups", "q", "buffer (blocks)", "streams / buf-block"
    );
    for r in &rows {
        println!(
            "{:>6} KiB {:>7} {:>5} {:>14.1} {:>18.3}",
            r.block_kib, r.groups, r.q, r.buffer_blocks_total, r.streams_per_buffer_block
        );
    }
    println!(
        "\nReading: g = 1 (the paper's C-SCAN) maximizes raw streams; larger g\n\
         maximizes streams per unit of buffer — the right choice when RAM,\n\
         not disk bandwidth, binds (exactly the 256 MB regime of Figure 5)."
    );
}
