//! Runs the cluster campaign: canned node-failure scenarios (steady
//! state, unrepaired node failure, fail→migrate→rebuild, concurrent
//! double failure, unreplicated failure) on an 8-node cluster, one JSONL
//! verdict per scenario.
//!
//! Usage: `cargo run --release -p cms-bench --bin cluster [-- --out PATH] [--jobs N] [--scenario NAME] [--list] [--rounds N] [--seed S] [--threads T]`
//!
//! `--jobs` is the number of cluster simulations in flight at once (0 =
//! one per task); `--threads` is each cluster's node-stepping worker
//! count. Neither changes a byte of the output — CI regenerates the
//! sweep at `--jobs 1` and `--jobs 8 --threads 4` and diffs both against
//! the committed golden (`crates/bench/goldens/cluster_campaign.jsonl`).
//! Regenerate the golden with:
//!
//! ```text
//! cargo run --release -p cms-bench --bin cluster -- --out crates/bench/goldens/cluster_campaign.jsonl
//! ```

#![forbid(unsafe_code)]

use cms_bench::{cluster_campaign_rows, cluster_to_jsonl, BenchArgs, CLUSTER_SCENARIOS};

fn main() {
    let args = BenchArgs::parse();
    if args.flag("--list") {
        for sc in &CLUSTER_SCENARIOS {
            let spec = if sc.spec.is_empty() { "(fault-free)" } else { sc.spec };
            println!("{:<24} r={} {}", sc.name, sc.replication, spec.replace('\n', "; "));
        }
        return;
    }
    let rounds = args.rounds_or(120);
    let seed = args.seed_or(7);
    let jobs = args.u64_value("--jobs").unwrap_or(0) as usize;
    let filter = args.value("--scenario");
    let rows = cluster_campaign_rows(rounds, seed, jobs, args.threads().max(1), filter);
    if let Some(f) = filter {
        assert!(!rows.is_empty(), "unknown scenario {f:?}; try --list");
    }
    let jsonl = cluster_to_jsonl(&rows);
    match args.value("--out") {
        Some(path) => {
            std::fs::write(path, &jsonl)
                .unwrap_or_else(|e| panic!("cluster: cannot write {path}: {e}"));
            eprintln!("cluster: wrote {} rows to {path}", rows.len());
        }
        None => print!("{jsonl}"),
    }
    // Invariants every sweep must uphold, whatever the flags: surviving
    // streams never glitch, and arrivals are fully accounted for.
    for r in &rows {
        assert_eq!(r.hiccups, 0, "{}: a surviving stream glitched", r.scenario);
        assert_eq!(
            r.arrivals,
            r.routed + r.cluster_refusals + r.unroutable,
            "{}: arrivals not conserved",
            r.scenario
        );
    }
}
