//! Regenerates experiment E7: a disk is killed mid-run under the paper's
//! workload with byte-level reconstruction verification on. The five
//! guarantee schemes must report zero hiccups and zero parity mismatches;
//! the non-clustered baseline is allowed (expected, under saturation) to
//! glitch — the §7.4 caveat.
//!
//! Usage: `cargo run --release -p cms-bench --bin failure_drill [-- --json] [--rounds N]`

use cms_bench::failure_drill;
use cms_core::Scheme;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rounds = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let rows = failure_drill(rounds, 0x0DEA_D15C);
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== Failure drill: disk 5 killed at round {}, verification on ==", rounds / 3);
    println!(
        "{:<34} {:>8} {:>8} {:>9} {:>8} {:>8} {:>10}",
        "scheme", "admitted", "recons", "recovery", "hiccups", "parityΔ", "guarantee"
    );
    for r in &rows {
        println!(
            "{:<34} {:>8} {:>8} {:>9} {:>8} {:>8} {:>10}",
            r.scheme.label(),
            r.metrics.admitted,
            r.metrics.reconstructions,
            r.metrics.recovery_reads,
            r.metrics.hiccups,
            r.metrics.parity_mismatches,
            if r.metrics.guarantees_held() { "HELD" } else { "BROKEN" }
        );
        if r.scheme != Scheme::NonClustered {
            assert!(
                r.metrics.guarantees_held(),
                "{}: a guarantee scheme broke its promise",
                r.scheme
            );
        }
        assert_eq!(r.metrics.parity_mismatches, 0, "{}: corrupt reconstruction", r.scheme);
    }
}
