//! Regenerates experiment E7: a disk is killed mid-run under the paper's
//! workload with byte-level reconstruction verification on. The five
//! guarantee schemes must report zero hiccups and zero parity mismatches;
//! the non-clustered baseline is allowed (expected, under saturation) to
//! glitch — the §7.4 caveat.
//!
//! Usage: `cargo run --release -p cms-bench --bin failure_drill [-- --json] [--rounds N] [--threads T] [--trace PATH] [--trace-rounds N]`
//!
//! `--threads` sets the disk-service worker count (0 = available
//! parallelism, 1 = sequential); the numbers are identical at any setting.
//! `--trace` exports each scheme's failure→recovery→rebuild event stream
//! (JSONL, or CSV when the path ends in `.csv`) to its own file; feed a
//! JSONL file to the `timeline` binary to render the drill. The exported
//! streams are byte-identical at any `--threads` setting.

#![forbid(unsafe_code)]

use cms_bench::{failure_drill_traced, BenchArgs};
use cms_core::Scheme;

fn main() {
    let args = BenchArgs::parse();
    let rounds = args.rounds_or(300);
    let rows = failure_drill_traced(rounds, 0x0DEA_D15C, args.threads(), &args.trace_spec());
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== Failure drill: disk 5 killed at round {}, verification on ==", rounds / 3);
    println!(
        "{:<34} {:>8} {:>8} {:>9} {:>8} {:>8} {:>10}",
        "scheme", "admitted", "recons", "recovery", "hiccups", "parityΔ", "guarantee"
    );
    for r in &rows {
        println!(
            "{:<34} {:>8} {:>8} {:>9} {:>8} {:>8} {:>10}",
            r.scheme.label(),
            r.metrics.admitted,
            r.metrics.reconstructions,
            r.metrics.recovery_reads,
            r.metrics.hiccups,
            r.metrics.parity_mismatches,
            if r.metrics.guarantees_held() { "HELD" } else { "BROKEN" }
        );
        if r.scheme != Scheme::NonClustered {
            assert!(
                r.metrics.guarantees_held(),
                "{}: a guarantee scheme broke its promise",
                r.scheme
            );
        }
        assert_eq!(r.metrics.parity_mismatches, 0, "{}: corrupt reconstruction", r.scheme);
    }
}
