//! Experiment A3 — background rebuild time vs parity group size and load.
//!
//! The declustering literature's companion result (Holland & Gibson,
//! ASPLOS'92; Muntz & Lui, VLDB'90): spreading parity groups over the
//! whole array parallelizes reconstruction, so a failed disk rebuilds
//! onto a spare faster — and the gap widens under client load because
//! rebuild may only use slack bandwidth. This experiment measures rounds
//! to full redundancy for the declustered scheme across parity group
//! sizes and client loads, at fixed hardware.
//!
//! Usage: `cargo run --release -p cms-bench --bin rebuild [-- --json] [--threads T] [--trace PATH] [--trace-rounds N]`
//!
//! `--threads` sets the disk-service worker count (0 = available
//! parallelism, 1 = sequential); the numbers are identical at any setting.
//! `--trace` exports each `(scheme, p, λ)` run's event stream to its own
//! file (JSONL, or CSV when the path ends in `.csv`).

#![forbid(unsafe_code)]

use cms_bench::BenchArgs;
use cms_core::{DiskId, Scheme};
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scheme: Scheme,
    p: u32,
    arrival_rate: f64,
    rebuild_rounds: Option<u64>,
    rebuild_reads: u64,
    hiccups: u64,
}

fn main() {
    let args = BenchArgs::parse();
    let threads = args.threads();
    let trace = args.trace_spec();
    let input = ModelInput::sigmod96(268_435_456).with_storage_blocks(24_000);
    let fail_round = 50u64;
    let mut rows = Vec::new();
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks] {
        for p in [2u32, 4, 8, 16] {
            for rate in [0.0f64, 5.0, 15.0] {
                let Ok(point) = tuned_point(scheme, &input, p, 1) else {
                    continue;
                };
                let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
                cfg.catalog_clips = 300; // smaller library → measurable rebuild
                cfg.arrival_rate = rate;
                cfg.rounds = 6_000;
                cfg.threads = threads;
                cfg.auto_rebuild = true;
                cfg.trace = trace.labeled(&format!("{scheme:?}-p{p}-lambda{rate}"));
                cfg = cfg.with_failure(fail_round, DiskId(1));
                let m = Simulator::new(cfg).expect("constructs").run();
                assert_eq!(m.hiccups, 0, "{scheme} p={p} λ={rate}");
                rows.push(Row {
                    scheme,
                    p,
                    arrival_rate: rate,
                    rebuild_rounds: m.rebuild_completed_round.map(|r| r - fail_round),
                    rebuild_reads: m.rebuild_reads,
                    hiccups: m.hiccups,
                });
            }
        }
    }
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== A3: rounds to rebuild a failed disk onto a spare (slack bandwidth only) ==");
    println!(
        "{:<34} {:>4} {:>6} {:>15} {:>14}",
        "scheme", "p", "λ", "rebuild rounds", "rebuild reads"
    );
    for r in &rows {
        println!(
            "{:<34} {:>4} {:>6} {:>15} {:>14}",
            r.scheme.label(),
            r.p,
            r.arrival_rate,
            r.rebuild_rounds.map_or("unfinished".into(), |x| x.to_string()),
            r.rebuild_reads
        );
    }
}
