//! Regenerates Figure 5: analytical clips serviced vs parity group size,
//! five schemes, two buffer sizes.
//!
//! Usage: `cargo run -p cms-bench --bin fig5 [-- --json]`
//!
//! Accepts the shared flag set; `--trace` is ignored (with a warning)
//! because this binary evaluates the capacity model only — no simulation
//! runs, so there is nothing to trace.

#![forbid(unsafe_code)]

use cms_bench::{fig5_rows, BenchArgs, PAPER_PS};
use cms_core::Scheme;

fn main() {
    let args = BenchArgs::parse();
    args.warn_if_trace_unused("fig5");
    let rows = fig5_rows();
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    for (label, _) in cms_bench::PAPER_BUFFERS {
        println!("== Figure 5, B = {label} — number of clips serviced (analytical) ==");
        print!("{:<34}", "scheme");
        for p in PAPER_PS {
            print!("{:>8}", format!("p={p}"));
        }
        println!();
        for scheme in Scheme::FIGURE_SCHEMES {
            print!("{:<34}", scheme.label());
            for p in PAPER_PS {
                match rows
                    .iter()
                    .find(|r| r.buffer == label && r.scheme == scheme && r.p == p)
                {
                    Some(r) => print!("{:>8}", r.point.total_clips),
                    None => print!("{:>8}", "-"),
                }
            }
            println!();
        }
        println!();
    }
}
