//! Regenerates the Equation 1 table (experiment E5): the per-disk round
//! budget `q` as a function of block size for the paper's Figure 1
//! reference disk and MPEG-1 playback.
//!
//! Usage: `cargo run -p cms-bench --bin table_q [-- --json]`
//!
//! Accepts the shared flag set; `--trace` is ignored (with a warning)
//! because this binary evaluates Equation 1 only — no simulation runs.

#![forbid(unsafe_code)]

use cms_bench::{q_table_rows, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.warn_if_trace_unused("table_q");
    let rows = q_table_rows();
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== Equation 1: per-disk budget q vs block size (Figure 1 disk, 1.5 Mbps playback) ==");
    println!("{:>12} {:>12} {:>6} {:>12}", "block", "round (s)", "q", "util @ q");
    for r in rows {
        println!(
            "{:>9} KiB {:>12.4} {:>6} {:>11.1}%",
            r.block_bytes / 1024,
            r.round_seconds,
            r.q,
            r.utilization * 100.0
        );
    }
}
