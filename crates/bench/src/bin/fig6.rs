//! Regenerates Figure 6: simulated clips serviced in 600 time units vs
//! parity group size (Poisson λ = 20, 1000 clips × 50 rounds), five
//! schemes, two buffer sizes.
//!
//! Usage: `cargo run --release -p cms-bench --bin fig6 [-- --json] [--rounds N] [--seed S] [--threads T]`
//!
//! `--threads` sets the disk-service worker count (0 = available
//! parallelism, 1 = sequential); the numbers are identical at any setting.

#![forbid(unsafe_code)]

use cms_bench::{fig6_rows_threaded, PAPER_PS};
use cms_core::Scheme;

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rounds = arg_value("--rounds").unwrap_or(600);
    let seed = arg_value("--seed").unwrap_or(0x51_6D0D);
    let threads = arg_value("--threads").unwrap_or(0) as usize;
    let rows = fig6_rows_threaded(rounds, seed, threads);
    if json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    for (label, _) in cms_bench::PAPER_BUFFERS {
        println!("== Figure 6, B = {label} — clips serviced in {rounds} time units (simulated) ==");
        print!("{:<34}", "scheme");
        for p in PAPER_PS {
            print!("{:>8}", format!("p={p}"));
        }
        println!();
        for scheme in Scheme::FIGURE_SCHEMES {
            print!("{:<34}", scheme.label());
            for p in PAPER_PS {
                match rows
                    .iter()
                    .find(|r| r.buffer == label && r.scheme == scheme && r.p == p)
                {
                    Some(r) => {
                        assert_eq!(
                            r.metrics.hiccups, 0,
                            "{scheme} p={p}: fault-free run must not hiccup"
                        );
                        print!("{:>8}", r.metrics.admitted);
                    }
                    None => print!("{:>8}", "-"),
                }
            }
            println!();
        }
        println!();
    }
}
