//! Regenerates Figure 6: simulated clips serviced in 600 time units vs
//! parity group size (Poisson λ = 20, 1000 clips × 50 rounds), five
//! schemes, two buffer sizes.
//!
//! Usage: `cargo run --release -p cms-bench --bin fig6 [-- --json] [--rounds N] [--seed S] [--threads T] [--trace PATH] [--trace-rounds N]`
//!
//! `--threads` sets the disk-service worker count (0 = available
//! parallelism, 1 = sequential); the numbers are identical at any setting.
//! `--trace` exports a per-run event stream (JSONL, or CSV when the path
//! ends in `.csv`) with each run's `(buffer, scheme, p)` label inserted
//! into the file name; `--trace-rounds N` keeps only the last N rounds.

#![forbid(unsafe_code)]

use cms_bench::{fig6_rows_traced, BenchArgs, PAPER_PS};
use cms_core::Scheme;

fn main() {
    let args = BenchArgs::parse();
    let rounds = args.rounds_or(600);
    let seed = args.seed_or(0x51_6D0D);
    let rows = fig6_rows_traced(rounds, seed, args.threads(), &args.trace_spec());
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    for (label, _) in cms_bench::PAPER_BUFFERS {
        println!("== Figure 6, B = {label} — clips serviced in {rounds} time units (simulated) ==");
        print!("{:<34}", "scheme");
        for p in PAPER_PS {
            print!("{:>8}", format!("p={p}"));
        }
        println!();
        for scheme in Scheme::FIGURE_SCHEMES {
            print!("{:<34}", scheme.label());
            for p in PAPER_PS {
                match rows
                    .iter()
                    .find(|r| r.buffer == label && r.scheme == scheme && r.p == p)
                {
                    Some(r) => {
                        assert_eq!(
                            r.metrics.hiccups, 0,
                            "{scheme} p={p}: fault-free run must not hiccup"
                        );
                        print!("{:>8}", r.metrics.admitted);
                    }
                    None => print!("{:>8}", "-"),
                }
            }
            println!();
        }
        println!();
    }
}
