//! Regenerates the Figure 4 `computeOptimal` table (experiment E6): the
//! capacity-maximizing `(p, b, q, f)` per scheme and buffer size, with and
//! without the paper's "if a BIBD exists" guard.
//!
//! Usage: `cargo run -p cms-bench --bin table_optimal [-- --json]`
//!
//! Accepts the shared flag set; `--trace` is ignored (with a warning)
//! because this binary runs the optimizer only — no simulation runs.

#![forbid(unsafe_code)]

use cms_bench::{optimal_rows, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.warn_if_trace_unused("table_optimal");
    let rows = optimal_rows();
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== computeOptimal (Figure 4): capacity-maximizing parameters ==");
    println!(
        "{:<8} {:<34} {:<7} {:>4} {:>10} {:>4} {:>3} {:>7}",
        "buffer", "scheme", "designs", "p", "block", "q", "f", "clips"
    );
    for r in rows {
        println!(
            "{:<8} {:<34} {:<7} {:>4} {:>6} KiB {:>4} {:>3} {:>7}",
            r.buffer,
            r.scheme.label(),
            if r.exact_designs_only { "exact" } else { "any" },
            r.point.p,
            r.point.block_bytes / 1024,
            r.point.q,
            r.point.f,
            r.point.total_clips
        );
    }
}
