//! Experiment A4 — clip-popularity skew (extension).
//!
//! The paper draws requested clips uniformly; real video-on-demand
//! workloads are Zipf-skewed. Because every stream gets its own buffer
//! and bandwidth (no inter-stream caching in the paper's architecture),
//! skew should barely change throughput for the declustered scheme (start
//! positions are spread by placement), but it concentrates start disks
//! for the clustered schemes when popular clips share a cluster — the
//! experiment measures how much.
//!
//! Usage: `cargo run --release -p cms-bench --bin popularity [-- --json] [--threads T] [--trace PATH] [--trace-rounds N]`

#![forbid(unsafe_code)]

use cms_bench::BenchArgs;
use cms_core::Scheme;
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scheme: Scheme,
    theta: f64,
    admitted: u64,
    mean_wait: f64,
    p95_wait: u64,
}

fn main() {
    let args = BenchArgs::parse();
    let trace = args.trace_spec();
    let input = ModelInput::sigmod96(268_435_456).with_storage_blocks(75_000);
    let mut rows = Vec::new();
    for scheme in [
        Scheme::DeclusteredParity,
        Scheme::PrefetchParityDisks,
        Scheme::StreamingRaid,
    ] {
        for theta in [0.0f64, 0.5, 1.0] {
            let point = tuned_point(scheme, &input, 4, 1).expect("feasible");
            let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
            cfg.zipf_theta = theta;
            cfg.rounds = 600;
            cfg.threads = args.threads();
            cfg.trace = trace.labeled(&format!("{scheme:?}-theta{theta}"));
            let m = Simulator::new(cfg).expect("constructs").run();
            assert_eq!(m.hiccups, 0, "{scheme} θ={theta}");
            rows.push(Row {
                scheme,
                theta,
                admitted: m.admitted,
                mean_wait: m.mean_wait(),
                p95_wait: m.wait_percentile(0.95),
            });
        }
    }
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== A4: popularity skew (Zipf θ), p = 4, 256 MB, 600 rounds ==");
    println!(
        "{:<34} {:>5} {:>9} {:>11} {:>9}",
        "scheme", "θ", "admitted", "mean wait", "p95 wait"
    );
    for r in &rows {
        println!(
            "{:<34} {:>5} {:>9} {:>11.1} {:>9}",
            r.scheme.label(),
            r.theta,
            r.admitted,
            r.mean_wait,
            r.p95_wait
        );
    }
}
