//! Ablation A1 — static contingency (§4) vs dynamic reservation (§5).
//!
//! Section 5's motivation: with a static `f`, a clip can be rejected
//! because its particular (disk, row) class is full even when the disk
//! itself has bandwidth to spare; choosing `f` larger wastes bandwidth
//! permanently. Dynamic reservation sizes the contingency to the actual
//! workload. This ablation runs both schemes at identical hardware and
//! sweeps the arrival rate from light to saturating load, reporting
//! admitted clips and mean admission wait.
//!
//! Usage: `cargo run --release -p cms-bench --bin ablation_dynamic [-- --json] [--threads T] [--trace PATH] [--trace-rounds N]`

#![forbid(unsafe_code)]

use cms_bench::BenchArgs;
use cms_core::Scheme;
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    arrival_rate: f64,
    scheme: Scheme,
    admitted: u64,
    mean_wait: f64,
    max_wait: u64,
    peak_active: u64,
}

fn main() {
    let args = BenchArgs::parse();
    let trace = args.trace_spec();
    let input = ModelInput::sigmod96(268_435_456).with_storage_blocks(75_000);
    let p = 4;
    let mut rows = Vec::new();
    for rate in [2.0f64, 5.0, 10.0, 20.0] {
        for scheme in [Scheme::DeclusteredParity, Scheme::DynamicReservation] {
            let point = tuned_point(scheme, &input, p, 1).expect("feasible");
            let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
            cfg.arrival_rate = rate;
            cfg.rounds = 600;
            cfg.threads = args.threads();
            cfg.trace = trace.labeled(&format!("{scheme:?}-lambda{rate}"));
            let m = Simulator::new(cfg).expect("constructs").run();
            assert_eq!(m.hiccups, 0, "{scheme} must not hiccup");
            rows.push(Row {
                arrival_rate: rate,
                scheme,
                admitted: m.admitted,
                mean_wait: m.mean_wait(),
                max_wait: m.wait_rounds_max,
                peak_active: m.peak_active,
            });
        }
    }
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== A1: static f (§4) vs dynamic reservation (§5), d = 32, p = {p}, 600 rounds ==");
    println!(
        "{:<8} {:<24} {:>9} {:>11} {:>9} {:>12}",
        "λ", "scheme", "admitted", "mean wait", "max wait", "peak active"
    );
    for r in &rows {
        println!(
            "{:<8} {:<24} {:>9} {:>11.2} {:>9} {:>12}",
            r.arrival_rate,
            r.scheme.label(),
            r.admitted,
            r.mean_wait,
            r.max_wait,
            r.peak_active
        );
    }
}
