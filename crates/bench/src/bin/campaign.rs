//! Runs the fault-schedule campaign: canned multi-event failure
//! scenarios (hard failures, failure-during-rebuild, transient outages,
//! same-group double failures, slow-disk windows) swept across a
//! declustered, a clustered and the no-redundancy scheme, one JSONL
//! verdict per run.
//!
//! Usage: `cargo run --release -p cms-bench --bin campaign [-- --out PATH] [--jobs N] [--scenario NAME] [--list] [--rounds N] [--seed S] [--threads T]`
//!
//! `--jobs` is the number of simulations in flight at once (0 = one per
//! task); `--threads` is each simulation's disk-service worker count.
//! Neither changes a byte of the output — CI regenerates the sweep at
//! `--jobs 1` and `--jobs 8` and diffs both against the committed
//! golden (`crates/bench/goldens/campaign.jsonl`). Regenerate the
//! golden with:
//!
//! ```text
//! cargo run --release -p cms-bench --bin campaign -- --out crates/bench/goldens/campaign.jsonl
//! ```

#![forbid(unsafe_code)]

use cms_bench::campaign::{campaign_rows, to_jsonl, SCENARIOS};
use cms_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    if args.flag("--list") {
        for sc in &SCENARIOS {
            println!("{:<28} {}", sc.name, sc.spec.replace('\n', "; "));
        }
        return;
    }
    let rounds = args.rounds_or(120);
    let seed = args.seed_or(7);
    let jobs = args.u64_value("--jobs").unwrap_or(0) as usize;
    let filter = args.value("--scenario");
    let rows = campaign_rows(rounds, seed, jobs, args.threads().max(1), filter);
    if let Some(f) = filter {
        assert!(!rows.is_empty(), "unknown scenario {f:?}; try --list");
    }
    let jsonl = to_jsonl(&rows);
    match args.value("--out") {
        Some(path) => {
            std::fs::write(path, &jsonl)
                .unwrap_or_else(|e| panic!("campaign: cannot write {path}: {e}"));
            eprintln!("campaign: wrote {} rows to {path}", rows.len());
        }
        None => print!("{jsonl}"),
    }
    // Invariants every sweep must uphold, whatever the flags: verified
    // reconstructions never mismatch, and a lost stream is always the
    // result of a multi-failure scenario.
    for r in &rows {
        assert_eq!(r.parity_mismatches, 0, "{}/{}: corrupt reconstruction", r.scenario, r.scheme);
    }
}
