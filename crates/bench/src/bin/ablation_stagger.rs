//! Ablation A2 — the staggered-group buffer optimization (§6.1).
//!
//! The pre-fetching schemes normally hold an entire parity group per clip
//! (`p·b`); fetching the whole group in one round and idling `p−2` rounds
//! (the staggered-group trick from BGM95) halves the *average* footprint
//! to `p·b/2`. Analytically the non-staggered variant is the staggered
//! one with half the buffer, so the ablation evaluates the capacity model
//! at `B` and `B/2` for both pre-fetching schemes across the parity-group
//! sweep.
//!
//! Usage: `cargo run -p cms-bench --bin ablation_stagger [-- --json]`
//!
//! Accepts the shared flag set; `--trace` is ignored (with a warning)
//! because this binary evaluates the capacity model only — no simulation
//! runs.

#![forbid(unsafe_code)]

use cms_bench::{BenchArgs, PAPER_PS};
use cms_core::Scheme;
use cms_model::{capacity, ModelInput};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    buffer: &'static str,
    scheme: Scheme,
    p: u32,
    staggered_clips: u32,
    plain_clips: u32,
}

fn main() {
    let args = BenchArgs::parse();
    args.warn_if_trace_unused("ablation_stagger");
    let mut rows = Vec::new();
    for (label, bytes) in [("256MB", 268_435_456u64), ("2GB", 2_147_483_648)] {
        let full = ModelInput::sigmod96(bytes);
        let half = ModelInput::sigmod96(bytes / 2);
        for scheme in [Scheme::PrefetchParityDisks, Scheme::PrefetchFlat] {
            for p in PAPER_PS {
                let (Ok(staggered), Ok(plain)) =
                    (capacity(scheme, &full, p), capacity(scheme, &half, p))
                else {
                    continue;
                };
                rows.push(Row {
                    buffer: label,
                    scheme,
                    p,
                    staggered_clips: staggered.total_clips,
                    plain_clips: plain.total_clips,
                });
            }
        }
    }
    if args.json() {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }
    println!("== A2: staggered-group buffer optimization on/off (analytical clips) ==");
    println!(
        "{:<8} {:<34} {:>4} {:>11} {:>9} {:>7}",
        "buffer", "scheme", "p", "staggered", "plain", "gain"
    );
    for r in &rows {
        println!(
            "{:<8} {:<34} {:>4} {:>11} {:>9} {:>6.0}%",
            r.buffer,
            r.scheme.label(),
            r.p,
            r.staggered_clips,
            r.plain_clips,
            100.0 * (f64::from(r.staggered_clips) / f64::from(r.plain_clips) - 1.0)
        );
        assert!(
            r.staggered_clips >= r.plain_clips,
            "halving the buffer must never help"
        );
    }
}
