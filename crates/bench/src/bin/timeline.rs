//! Renders an ASCII failure→recovery→rebuild timeline from a JSONL trace
//! exported by any simulation binary's `--trace` flag.
//!
//! Usage: `cargo run -p cms-bench --bin timeline -- <trace.jsonl> [--width N]`
//!
//! Each output line is one round (or a bucket of rounds for long traces):
//! a bar of blocks served, the arrival/admission/recovery counts, and
//! markers for the failure milestones (`FAIL`, `REPAIR`, `REBUILT`,
//! hiccups). Cluster traces get a node lane above each round's disk lane
//! (`NFAIL`/`NREPAIR`/`NREBUILT`, migrations, cross-node rebuild
//! traffic). The footer reports the [`cms_sim::TraceSummary`] roll-up
//! including the failure→first-recovery-read and failure→rebuild-complete
//! round gaps. The rendering itself lives in [`cms_bench::timeline`] and
//! is pinned by the golden snapshot test.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use cms_bench::{render_timeline, BenchArgs};

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // The trace path is the first operand that is neither a flag nor the
    // value of a value-taking flag.
    let mut path = None;
    let mut skip_next = false;
    for a in &raw {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--width" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            path = Some(a.clone());
            break;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: timeline <trace.jsonl> [--width N]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("timeline: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let width = args.u64_value("--width").unwrap_or(40).clamp(10, 200) as usize;
    match render_timeline(&text, width, 60) {
        Ok((rendered, skipped)) => {
            if skipped > 0 {
                eprintln!("timeline: skipped {skipped} unparseable lines");
            }
            println!("== trace timeline: {path} ==");
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("timeline: {e} in {path}");
            ExitCode::FAILURE
        }
    }
}
