//! Renders an ASCII failure→recovery→rebuild timeline from a JSONL trace
//! exported by any simulation binary's `--trace` flag.
//!
//! Usage: `cargo run -p cms-bench --bin timeline -- <trace.jsonl> [--width N]`
//!
//! Each output line is one round (or a bucket of rounds for long traces):
//! a bar of blocks served, the arrival/admission/recovery counts, and
//! markers for the failure milestones (`FAIL`, `REPAIR`, `REBUILT`,
//! hiccups). The footer reports the [`cms_sim::TraceSummary`] roll-up
//! including the failure→first-recovery-read and failure→rebuild-complete
//! round gaps.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

use cms_bench::BenchArgs;
use cms_sim::TraceSummary;
use cms_trace::{EventKind, TraceEvent};

/// Everything the renderer needs about one round of the trace.
#[derive(Debug, Default, Clone)]
struct RoundAgg {
    arrivals: u64,
    admissions: u64,
    rejections: u64,
    completions: u64,
    blocks: u64,
    recovery_reads: u64,
    hiccups: u64,
    late_serves: u64,
    service_errors: u64,
    lost_streams: u64,
    degraded_refusals: u64,
    rebuild: Option<(u64, u64)>,
    failed: Vec<u64>,
    repaired: Vec<u64>,
    rebuilt: Vec<u64>,
    transient: Vec<u64>,
    slowed: Vec<u64>,
}

impl RoundAgg {
    fn absorb(&mut self, kind: &EventKind) {
        match *kind {
            EventKind::Arrival { .. } => self.arrivals += 1,
            EventKind::Admission { .. } => self.admissions += 1,
            EventKind::Rejection { .. } => self.rejections += 1,
            EventKind::Completion { .. } => self.completions += 1,
            EventKind::DiskServe { blocks, .. } => self.blocks += u64::from(blocks),
            EventKind::RecoveryRead { .. } => self.recovery_reads += 1,
            EventKind::Reconstruction { .. } => {}
            EventKind::Hiccup { .. } => self.hiccups += 1,
            EventKind::LateServe { .. } => self.late_serves += 1,
            EventKind::ServiceError { dropped, .. } => self.service_errors += u64::from(dropped),
            EventKind::RebuildProgress { rebuilt, total } => self.rebuild = Some((rebuilt, total)),
            EventKind::DiskFailure { disk } => self.failed.push(u64::from(disk)),
            EventKind::DiskRepair { disk } => self.repaired.push(u64::from(disk)),
            EventKind::RebuildComplete { disk } => self.rebuilt.push(u64::from(disk)),
            EventKind::DiskTransient { disk, .. } => self.transient.push(u64::from(disk)),
            EventKind::DiskSlow { disk, .. } => self.slowed.push(u64::from(disk)),
            EventKind::DiskTransientEnd { .. } | EventKind::DiskSlowEnd { .. } => {}
            EventKind::StreamLost { .. } => self.lost_streams += 1,
            EventKind::DegradedRefusal { .. } => self.degraded_refusals += 1,
        }
    }

    fn merge(&mut self, other: &RoundAgg) {
        self.arrivals += other.arrivals;
        self.admissions += other.admissions;
        self.rejections += other.rejections;
        self.completions += other.completions;
        self.blocks += other.blocks;
        self.recovery_reads += other.recovery_reads;
        self.hiccups += other.hiccups;
        self.late_serves += other.late_serves;
        self.service_errors += other.service_errors;
        self.lost_streams += other.lost_streams;
        self.degraded_refusals += other.degraded_refusals;
        if other.rebuild.is_some() {
            self.rebuild = other.rebuild;
        }
        self.failed.extend_from_slice(&other.failed);
        self.repaired.extend_from_slice(&other.repaired);
        self.rebuilt.extend_from_slice(&other.rebuilt);
        self.transient.extend_from_slice(&other.transient);
        self.slowed.extend_from_slice(&other.slowed);
    }

    fn markers(&self) -> String {
        let mut out = String::new();
        for d in &self.failed {
            out.push_str(&format!("  FAIL(d{d})"));
        }
        for d in &self.repaired {
            out.push_str(&format!("  REPAIR(d{d})"));
        }
        for d in &self.rebuilt {
            out.push_str(&format!("  REBUILT(d{d})"));
        }
        for d in &self.transient {
            out.push_str(&format!("  BLIP(d{d})"));
        }
        for d in &self.slowed {
            out.push_str(&format!("  SLOW(d{d})"));
        }
        if self.hiccups > 0 {
            out.push_str(&format!("  !hiccups={}", self.hiccups));
        }
        if self.service_errors > 0 {
            out.push_str(&format!("  !errors={}", self.service_errors));
        }
        if self.lost_streams > 0 {
            out.push_str(&format!("  !lost={}", self.lost_streams));
        }
        if self.degraded_refusals > 0 {
            out.push_str(&format!("  refused={}", self.degraded_refusals));
        }
        out
    }
}

fn render(rounds: &BTreeMap<u64, RoundAgg>, summary: &TraceSummary, width: usize, max_lines: u64) {
    // Long traces are bucketed so the timeline stays readable.
    let (first, last) = match (rounds.keys().next(), rounds.keys().next_back()) {
        (Some(&a), Some(&b)) => (a, b),
        _ => return,
    };
    let span = last - first + 1;
    let bucket = span.div_ceil(max_lines).max(1);
    let mut buckets: BTreeMap<u64, RoundAgg> = BTreeMap::new();
    for (round, agg) in rounds {
        buckets.entry((round - first) / bucket).or_default().merge(agg);
    }
    let peak_blocks = buckets.values().map(|a| a.blocks).max().unwrap_or(0).max(1);
    if bucket > 1 {
        println!("(bucketing {bucket} rounds per line)");
    }
    println!(
        "{:>10} {:>7} {:>5} {:>5} {:>6}  activity",
        "round", "blocks", "adm", "rej", "recov"
    );
    for (b, agg) in &buckets {
        let lo = first + b * bucket;
        let label = if bucket == 1 {
            format!("{lo}")
        } else {
            format!("{lo}-{}", (lo + bucket - 1).min(last))
        };
        let filled = (agg.blocks * width as u64 / peak_blocks) as usize;
        let rec = if agg.blocks > 0 {
            (agg.recovery_reads * width as u64 / peak_blocks) as usize
        } else {
            0
        };
        // The recovery share of the bar renders as '+', the rest as '#'.
        let mut bar: String = "#".repeat(filled.saturating_sub(rec));
        bar.push_str(&"+".repeat(rec.min(filled)));
        let rebuild = agg
            .rebuild
            .map(|(done, total)| format!("  rebuild {done}/{total}"))
            .unwrap_or_default();
        println!(
            "{label:>10} {:>7} {:>5} {:>5} {:>6}  |{bar:<width$}|{rebuild}{}",
            agg.blocks,
            agg.admissions,
            agg.rejections,
            agg.recovery_reads,
            agg.markers(),
        );
    }
    println!();
    println!(
        "summary: {} events over rounds {first}..={last}; {} arrivals, {} admissions, \
         {} rejections, {} completions",
        summary.events, summary.arrivals, summary.admissions, summary.rejections,
        summary.completions
    );
    println!(
        "         {} blocks served, {} recovery reads, {} reconstructions, {} hiccups, \
         {} late serves, {} service errors, {} lost streams, {} degraded refusals",
        summary.blocks_served,
        summary.recovery_reads,
        summary.reconstructions,
        summary.hiccups,
        summary.late_serves,
        summary.service_errors,
        summary.lost_streams,
        summary.degraded_refusals
    );
    match summary.failure_round {
        None => println!("         no disk failure in this trace"),
        Some(f) => {
            let first_rec = summary
                .failure_to_first_recovery()
                .map_or("never".to_string(), |g| format!("+{g} rounds"));
            let rebuilt = summary
                .failure_to_rebuild_complete()
                .map_or("never".to_string(), |g| format!("+{g} rounds"));
            println!(
                "         disk failed at round {f}; first recovery read {first_rec}; \
                 rebuild complete {rebuilt}"
            );
        }
    }
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // The trace path is the first operand that is neither a flag nor the
    // value of a value-taking flag.
    let mut path = None;
    let mut skip_next = false;
    for a in &raw {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--width" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            path = Some(a.clone());
            break;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: timeline <trace.jsonl> [--width N]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("timeline: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let width = args.u64_value("--width").unwrap_or(40).clamp(10, 200) as usize;
    let mut rounds: BTreeMap<u64, RoundAgg> = BTreeMap::new();
    let mut summary = TraceSummary::default();
    let mut skipped = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match TraceEvent::parse_jsonl(line) {
            Some(ev) => {
                summary.observe(&ev);
                rounds.entry(ev.round).or_default().absorb(&ev.kind);
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("timeline: skipped {skipped} unparseable lines");
    }
    if rounds.is_empty() {
        eprintln!("timeline: no events in {path}");
        return ExitCode::FAILURE;
    }
    println!("== trace timeline: {path} ==");
    render(&rounds, &summary, width, 60);
    ExitCode::SUCCESS
}
