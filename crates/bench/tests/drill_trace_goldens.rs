//! Byte-diff of the failure-drill trace export against the committed
//! goldens (`crates/bench/goldens/drill_trace.*.jsonl`).
//!
//! The goldens were exported by the pre-SoA, map-based engine
//! (`failure_drill --rounds 90 --threads 1 --trace drill_trace.jsonl
//! --trace-rounds 24`), so this test pins the stream-table refactor — and
//! any future hot-path change — to the exact observable event stream of
//! the original implementation: admission order, EDF drain order,
//! recovery scheduling, reconstruction completions, every round, every
//! scheme. Thread-count invariance of the same export is covered by
//! `trace_determinism` and CI's t1-vs-t8 diff; this test anchors the
//! *content*.

use std::fs;
use std::path::Path;

use cms_bench::failure_drill_traced;
use cms_sim::TraceSpec;

const SCHEMES: [&str; 6] = [
    "DeclusteredParity",
    "DynamicReservation",
    "NonClustered",
    "PrefetchFlat",
    "PrefetchParityDisks",
    "StreamingRaid",
];

#[test]
fn drill_trace_export_matches_committed_goldens() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens");
    let out_dir = std::env::temp_dir().join(format!("cms-drill-goldens-{}", std::process::id()));
    fs::create_dir_all(&out_dir).expect("temp dir");

    // The exact invocation that produced the goldens.
    let spec = TraceSpec::jsonl(out_dir.join("drill_trace.jsonl")).with_last_rounds(24);
    let rows = failure_drill_traced(90, 0x0DEA_D15C, 1, &spec);
    assert_eq!(rows.len(), SCHEMES.len(), "every scheme must run");

    for scheme in SCHEMES {
        let name = format!("drill_trace.{scheme}-p4.jsonl");
        let got = fs::read(out_dir.join(&name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let want = fs::read(golden_dir.join(&name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            got == want,
            "{name}: trace diverged from the committed golden ({} vs {} bytes) — \
             the engine's observable behavior changed",
            got.len(),
            want.len()
        );
    }
    let _ = fs::remove_dir_all(&out_dir);
}
