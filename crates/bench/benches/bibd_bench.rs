//! Microbenchmarks for the combinatorial substrate: design construction
//! (exact and fallback) and parity-group-table queries.

use cms_bibd::{best_design, DesignRequest, Pgt};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_construction");
    for (v, k, label) in [
        (32u32, 2u32, "pairs_32_2"),
        (33, 3, "bose_33_3"),
        (31, 3, "stinson_31_3"),
        (49, 7, "affine_49_7"),
        (32, 4, "fallback_32_4"),
        (32, 8, "fallback_32_8"),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| best_design(black_box(DesignRequest::new(v, k))).unwrap())
        });
    }
    group.finish();
}

fn bench_pgt(c: &mut Criterion) {
    let design = best_design(DesignRequest::new(32, 8)).unwrap();
    c.bench_function("pgt_build_32_8", |b| {
        b.iter_batched(|| design.clone(), |d| Pgt::new(black_box(&d)), BatchSize::SmallInput)
    });
    let pgt = Pgt::new(&design);
    c.bench_function("pgt_block_lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for disk in 0..32u32 {
                for block in 0..64u64 {
                    acc ^= pgt.set_of_block(black_box(disk), black_box(block));
                }
            }
            acc
        })
    });
    c.bench_function("pgt_reconstruction_overlap", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..32 {
                for j in 0..32 {
                    acc += pgt.reconstruction_overlap(black_box(i), black_box(j));
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_constructions, bench_pgt);
criterion_main!(benches);
