//! End-to-end benchmarks: one simulated round, and a full Figure 6 cell,
//! at paper scale (d = 32, 1000 clips).

use cms_core::Scheme;
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn paper_cfg(scheme: Scheme) -> SimConfig {
    let input = ModelInput::sigmod96(268_435_456).with_storage_blocks(75_000);
    let point = tuned_point(scheme, &input, 4, 1).expect("feasible");
    SimConfig::sigmod96(scheme, &point, 32)
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_round");
    group.sample_size(20);
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks] {
        // Warm the server to steady state, then measure one round.
        let mut sim = Simulator::new(paper_cfg(scheme)).expect("constructs");
        for _ in 0..100 {
            sim.step();
        }
        group.bench_function(format!("steady_round_{scheme:?}"), |b| {
            b.iter(|| {
                sim.step();
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

fn bench_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_cell");
    group.sample_size(10);
    group.bench_function("declustered_600_rounds", |b| {
        b.iter_batched(
            || paper_cfg(Scheme::DeclusteredParity),
            |cfg| Simulator::new(cfg).expect("constructs").run(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_round, bench_cell);
criterion_main!(benches);
