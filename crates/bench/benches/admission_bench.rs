//! Microbenchmarks for admission decision latency at realistic load — the
//! per-request cost a production server would pay on its control path.

use cms_admission::{
    Admission, AdmitRequest, DeclusteredAdmission, DynamicAdmission, FlatAdmission,
    PrefetchParityDiskAdmission,
};
use cms_bibd::{best_design, DesignRequest, Pgt};
use cms_core::{DiskId, RequestId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn req(id: u64, disk: u32, row: u32, index: u64) -> AdmitRequest {
    AdmitRequest {
        id: RequestId(id),
        stream: 0,
        start_index: index,
        start_disk: DiskId(disk),
        row,
        len: 50,
    }
}

/// Loads a controller to roughly half capacity, then measures one
/// admit/remove cycle.
fn bench_cycle<A: Admission + Clone>(c: &mut Criterion, label: &str, mut ctrl: A, q_half: u64) {
    let mut id = 0u64;
    let mut filled = 0u64;
    'fill: for round in 0..64u64 {
        for disk in 0..32u32 {
            if filled >= q_half {
                break 'fill;
            }
            id += 1;
            let r = req(id, disk, (round % 3) as u32, u64::from(disk) + round * 32);
            if ctrl.try_admit(r).is_ok() {
                filled += 1;
            }
        }
        ctrl.advance_round();
    }
    c.bench_function(label, |b| {
        b.iter_batched(
            || ctrl.clone(),
            |mut ctrl| {
                let r = req(u64::MAX, 7, 1, 7 + 32);
                let ok = ctrl.try_admit(black_box(r)).is_ok();
                if ok {
                    ctrl.remove(RequestId(u64::MAX));
                }
                ok
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_admission(c: &mut Criterion) {
    let declustered = DeclusteredAdmission::new(32, 11, 22, 1, 2).unwrap();
    bench_cycle(c, "admit_declustered_d32", declustered, 300);

    let design = best_design(DesignRequest::new(32, 4)).unwrap();
    let pgt = Pgt::new(&design);
    let deltas = (0..pgt.rows()).map(|r| pgt.row_deltas(r)).collect();
    let dynamic = DynamicAdmission::new(32, 22, deltas).unwrap();
    bench_cycle(c, "admit_dynamic_d32", dynamic, 300);

    let flat = FlatAdmission::new(32, 4, 22, 2).unwrap();
    bench_cycle(c, "admit_flat_d32", flat, 300);

    let prefetch = PrefetchParityDiskAdmission::new(32, 4, 20).unwrap();
    bench_cycle(c, "admit_prefetch_d32", prefetch, 300);
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
