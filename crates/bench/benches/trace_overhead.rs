//! Tracing overhead on a Figure-6-scale run: `TraceSpec::off()` (no
//! tracer at all) vs `TraceSpec::null()` (every event built and
//! summarised, nothing exported). The observability contract promises the
//! off-path costs nothing and the null sink stays within noise (<1%) of
//! it — compare the two `figure6_cell_*` medians to check.

use cms_core::Scheme;
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator, TraceSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn paper_cfg(scheme: Scheme, trace: TraceSpec, rounds: u64) -> SimConfig {
    let input = ModelInput::sigmod96(268_435_456).with_storage_blocks(75_000);
    let point = tuned_point(scheme, &input, 4, 1).expect("feasible");
    let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
    cfg.rounds = rounds;
    cfg.trace = trace;
    cfg
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for (label, trace) in [("off", TraceSpec::off()), ("null", TraceSpec::null())] {
        group.bench_function(format!("figure6_cell_{label}"), |b| {
            let spec = trace.clone();
            b.iter_batched(
                || paper_cfg(Scheme::DeclusteredParity, spec.clone(), 600),
                |cfg| Simulator::new(cfg).expect("constructs").run(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
