//! Microbenchmarks for the XOR parity codec at the paper's stripe-unit
//! sizes.

use cms_parity::{parity_of, reconstruct, Block};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity_codec");
    for (p, kb) in [(4usize, 64u64), (4, 256), (8, 256), (16, 256)] {
        let bytes = (kb * 1024) as usize;
        let data: Vec<Block> = (0..p - 1)
            .map(|i| Block::synthetic(9, i as u64, bytes))
            .collect();
        let refs: Vec<&Block> = data.iter().collect();
        group.throughput(Throughput::Bytes((bytes * (p - 1)) as u64));
        group.bench_function(format!("encode_p{p}_{kb}KiB"), |b| {
            b.iter(|| parity_of(black_box(&refs)).unwrap())
        });
        let parity = parity_of(&refs).unwrap();
        let mut survivors: Vec<&Block> = data[1..].iter().collect();
        survivors.push(&parity);
        group.bench_function(format!("reconstruct_p{p}_{kb}KiB"), |b| {
            b.iter(|| reconstruct(black_box(&survivors)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parity);
criterion_main!(benches);
