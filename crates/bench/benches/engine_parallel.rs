//! Parallel round engine: 1-thread vs N-thread disk service at d = 32.
//!
//! The disk-service phase of a round drains each disk's C-SCAN queue
//! independently, so it parallelizes across worker threads; per-disk
//! accounting is merged in disk-ID order afterwards, which keeps the
//! metrics bit-identical at any thread count. This bench quantifies the
//! wall-clock win of the parallel path on a paper-scale array.

use cms_core::Scheme;
use cms_model::{tuned_point, ModelInput};
use cms_sim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const WARMUP_ROUNDS: u64 = 100;

fn paper_cfg(threads: usize) -> SimConfig {
    let input = ModelInput::sigmod96(268_435_456).with_storage_blocks(75_000);
    let point = tuned_point(Scheme::DeclusteredParity, &input, 4, 1).expect("feasible");
    SimConfig::sigmod96(Scheme::DeclusteredParity, &point, 32).with_threads(threads)
}

fn warmed(threads: usize) -> Simulator {
    let mut sim = Simulator::new(paper_cfg(threads)).expect("constructs");
    for _ in 0..WARMUP_ROUNDS {
        sim.step();
    }
    sim
}

fn bench_thread_sweep(c: &mut Criterion) {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("engine_parallel");
    group.sample_size(30);
    for threads in [1usize, 2, 4, auto] {
        let mut sim = warmed(threads);
        group.bench_function(format!("steady_round_threads_{threads}"), |b| {
            b.iter(|| {
                sim.step();
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_sweep);
criterion_main!(benches);
