//! # cms-server — the fault-tolerant continuous media server
//!
//! The high-level API tying the whole reproduction together: pick a
//! fault-tolerance [`cms_core::Scheme`], describe the hardware and the
//! clip library, and get a server that
//!
//! * auto-tunes the parity group size `p`, block size `b` and contingency
//!   reservation `f` with the paper's Section 7 capacity model
//!   (λ-aware for the declustered family),
//! * lays clips out across the array with the scheme's placement rules,
//! * admits playback requests through the scheme's admission controller
//!   (FIFO with bounded bypass — starvation-free), and
//! * keeps every admitted stream's rate guarantee intact through a
//!   single disk failure, reconstructing lost blocks from parity.
//!
//! ```
//! use cms_core::{ClipId, DiskId, Scheme};
//! use cms_server::CmServer;
//!
//! let mut server = CmServer::builder(Scheme::DeclusteredParity)
//!     .disks(8)
//!     .buffer_bytes(64 << 20)
//!     .catalog(40, 20) // 40 clips, 20 blocks each
//!     .build()
//!     .expect("feasible configuration");
//!
//! let req = server.request(ClipId(7)).expect("known clip");
//! for _ in 0..5 {
//!     server.tick();
//! }
//! server.fail_disk(DiskId(2)).expect("no prior failure");
//! for _ in 0..30 {
//!     server.tick();
//! }
//! let _ = req;
//! assert_eq!(server.metrics().hiccups, 0, "guarantee held through failure");
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod builder;
pub mod server;

pub use builder::CmServerBuilder;
pub use server::{CmServer, ServerStatus};
