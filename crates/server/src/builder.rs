//! Fluent configuration for [`crate::CmServer`].

use cms_core::units::mbps;
use cms_core::{CmsError, DiskParams, Scheme};
use cms_model::{
    capacity_with_redundancy, tuned_optimal, tuned_point_with_redundancy, CapacityPoint,
    ModelInput,
};
use cms_sim::{SimConfig, TraceSpec};

/// Builder for a [`crate::CmServer`].
///
/// Only the scheme is mandatory; everything else defaults to the paper's
/// evaluation setup (32 Figure-1 disks, 256 MB buffer, 1000 × 50-block
/// MPEG-1 clips) and the parity group size is auto-tuned unless pinned
/// with [`CmServerBuilder::parity_group`].
#[derive(Debug, Clone)]
pub struct CmServerBuilder {
    scheme: Scheme,
    d: u32,
    buffer_bytes: u64,
    disk: DiskParams,
    clips: u64,
    clip_len: u64,
    p: Option<u32>,
    m: u32,
    seed: u64,
    verify_parity: bool,
    auto_rebuild: bool,
    threads: usize,
    trace: TraceSpec,
}

impl CmServerBuilder {
    /// Starts a builder for `scheme` with the paper's defaults.
    #[must_use]
    pub fn new(scheme: Scheme) -> Self {
        CmServerBuilder {
            scheme,
            d: 32,
            buffer_bytes: 256 << 20,
            disk: DiskParams::sigmod96(),
            clips: 1000,
            clip_len: 50,
            p: None,
            m: 1,
            seed: 0xCAFE,
            verify_parity: false,
            auto_rebuild: false,
            threads: 0,
            trace: TraceSpec::off(),
        }
    }

    /// Sets the number of disks.
    #[must_use]
    pub fn disks(mut self, d: u32) -> Self {
        self.d = d;
        self
    }

    /// Sets the RAM buffer size in bytes.
    #[must_use]
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Overrides the physical disk model.
    #[must_use]
    pub fn disk_model(mut self, disk: DiskParams) -> Self {
        self.disk = disk;
        self
    }

    /// Sets the clip library: `count` clips of `len_blocks` each.
    #[must_use]
    pub fn catalog(mut self, count: u64, len_blocks: u64) -> Self {
        self.clips = count;
        self.clip_len = len_blocks;
        self
    }

    /// Pins the parity group size instead of auto-tuning it.
    #[must_use]
    pub fn parity_group(mut self, p: u32) -> Self {
        self.p = Some(p);
        self
    }

    /// Sets the redundancy shard count `m` per parity group (default 1 =
    /// the paper's XOR parity). `m >= 2` switches the group codec to
    /// GF(256) Reed–Solomon and is supported by the clustered parity-disk
    /// schemes (pre-fetching with parity disks, streaming RAID), which
    /// then survive up to `m` concurrent disk failures per cluster.
    #[must_use]
    pub fn redundancy(mut self, m: u32) -> Self {
        self.m = m;
        self
    }

    /// Sets the seed for design construction and layout jitter.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Verifies every parity reconstruction byte-for-byte (slower;
    /// recommended in tests and drills).
    #[must_use]
    pub fn verify_reconstructions(mut self) -> Self {
        self.verify_parity = true;
        self
    }

    /// Sets the disk-service worker thread count (`0` = available
    /// parallelism, `1` = sequential). A wall-clock knob only: results
    /// are bit-identical at every setting.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Rebuilds a failed disk onto a hot spare in the background, using
    /// only slack bandwidth; the array returns to full redundancy when
    /// the rebuild finishes.
    #[must_use]
    pub fn auto_rebuild(mut self) -> Self {
        self.auto_rebuild = true;
        self
    }

    /// Enables event tracing (summary-only, JSONL or CSV — see
    /// [`TraceSpec`]). Traces follow the same determinism contract as
    /// the metrics: byte-identical at any thread count.
    #[must_use]
    pub fn trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }

    /// Solves the capacity model and produces the tuned point plus the
    /// simulation config the server runs on.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InfeasibleConfig`] when no parity group size
    /// supports even one stream under the given hardware, and
    /// [`CmsError::InvalidParams`] for structurally invalid input.
    pub fn solve(&self) -> Result<(CapacityPoint, SimConfig), CmsError> {
        // Storage headroom ×1.5 covers start-jitter padding.
        let storage_blocks = self.clips.saturating_mul(self.clip_len).saturating_mul(3) / 2;
        let input = ModelInput {
            d: self.d,
            buffer_bytes: self.buffer_bytes,
            playback_rate: mbps(1.5),
            disk: self.disk,
            storage_blocks: Some(storage_blocks.max(1)),
            mid_round_failure: false,
        };
        let point = match (self.p, self.m) {
            (Some(p), m) => tuned_point_with_redundancy(self.scheme, &input, p, m, self.seed)?,
            (None, 1) => tuned_optimal(self.scheme, &input, self.seed)?,
            (None, m) => {
                // Sweep p at fixed m (the m >= 2 analogue of
                // `tuned_optimal`; no PGT schemes qualify, so no λ tuning).
                let mut best: Option<CapacityPoint> = None;
                for p in 2..=self.d {
                    let Ok(pt) = capacity_with_redundancy(self.scheme, &input, p, m) else {
                        continue;
                    };
                    if best.is_none_or(|b| pt.total_clips > b.total_clips) {
                        best = Some(pt);
                    }
                }
                best.ok_or_else(|| CmsError::InfeasibleConfig {
                    reason: format!(
                        "{}: no feasible p in 2..={} at m = {m}",
                        self.scheme, self.d
                    ),
                })?
            }
        };
        let cfg = SimConfig {
            scheme: self.scheme,
            d: self.d,
            p: point.p,
            m: point.m,
            q: point.q,
            f: point.f,
            block_bytes: point.block_bytes,
            catalog_clips: self.clips,
            clip_len: self.clip_len,
            clip_len_spread: 0,
            arrival_rate: 0.0, // externally driven
            zipf_theta: 0.0,
            rounds: u64::MAX, // unused: the server ticks manually
            failure: None,
            faults: None,
            degraded_admission: false,
            verify_parity: self.verify_parity,
            content_bytes: 512,
            seed: self.seed,
            admission_scan: 64,
            aging_limit: 200,
            auto_rebuild: self.auto_rebuild,
            threads: self.threads,
            trace: self.trace.clone(),
        };
        Ok((point, cfg))
    }

    /// Builds the server.
    ///
    /// # Errors
    ///
    /// As for [`CmServerBuilder::solve`].
    pub fn build(self) -> Result<crate::CmServer, CmsError> {
        crate::CmServer::from_builder(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let (point, cfg) = CmServerBuilder::new(Scheme::DeclusteredParity).solve().unwrap();
        assert_eq!(cfg.d, 32);
        assert_eq!(cfg.catalog_clips, 1000);
        assert!(point.total_clips > 100);
        assert_eq!(cfg.q, point.q);
        assert_eq!(cfg.block_bytes, point.block_bytes);
    }

    #[test]
    fn pinned_parity_group_is_respected() {
        let (point, _) = CmServerBuilder::new(Scheme::StreamingRaid)
            .parity_group(8)
            .solve()
            .unwrap();
        assert_eq!(point.p, 8);
    }

    #[test]
    fn auto_tuning_beats_or_matches_any_pin() {
        let auto = CmServerBuilder::new(Scheme::PrefetchParityDisks).solve().unwrap().0;
        for p in [2u32, 4, 8, 16, 32] {
            if let Ok((pinned, _)) =
                CmServerBuilder::new(Scheme::PrefetchParityDisks).parity_group(p).solve()
            {
                assert!(auto.total_clips >= pinned.total_clips, "p = {p}");
            }
        }
    }

    #[test]
    fn infeasible_hardware_errors() {
        let tiny = CmServerBuilder::new(Scheme::DeclusteredParity)
            .disks(4)
            .buffer_bytes(1024)
            .solve();
        assert!(tiny.is_err());
    }
}
