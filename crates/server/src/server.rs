//! The [`CmServer`] facade.

use crate::builder::CmServerBuilder;
use cms_core::{ClipId, CmsError, DiskId, RequestId, Scheme};
use cms_model::CapacityPoint;
use cms_sim::{Metrics, SimConfig, Simulator};

/// A snapshot of the server's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatus {
    /// Current round (one round = the playback time of one block).
    pub round: u64,
    /// Active playback sessions.
    pub active: usize,
    /// Requests waiting for admission.
    pub pending: usize,
    /// The failed disk, if one is down.
    pub failed_disk: Option<DiskId>,
}

/// A fault-tolerant continuous media server: the paper's system behind a
/// library API. Drive it with [`CmServer::request`] and [`CmServer::tick`];
/// inject faults with [`CmServer::fail_disk`].
pub struct CmServer {
    sim: Simulator,
    point: CapacityPoint,
    scheme: Scheme,
}

impl CmServer {
    /// Starts a builder.
    #[must_use]
    pub fn builder(scheme: Scheme) -> CmServerBuilder {
        CmServerBuilder::new(scheme)
    }

    pub(crate) fn from_builder(builder: CmServerBuilder) -> Result<Self, CmsError> {
        let (point, cfg) = builder.solve()?;
        Self::from_parts(point, cfg)
    }

    /// Builds a server directly from a solved capacity point and sim
    /// config (advanced; the builder is the normal entry).
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn from_parts(point: CapacityPoint, cfg: SimConfig) -> Result<Self, CmsError> {
        let scheme = cfg.scheme;
        Ok(CmServer { sim: Simulator::new(cfg)?, point, scheme })
    }

    /// The scheme this server runs.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The tuned capacity point: parity group size, block size, round
    /// budget, contingency and the analytical concurrent-stream ceiling.
    #[must_use]
    pub fn capacity(&self) -> &CapacityPoint {
        &self.point
    }

    /// The admission controller's fault-free capacity ceiling — the
    /// engine-side counterpart of [`CmServer::capacity`]'s
    /// `total_clips`, exposed so conformance checks can compare the two
    /// without reaching into the simulator.
    #[must_use]
    pub fn nominal_capacity(&self) -> u64 {
        self.sim.nominal_capacity()
    }

    /// Queues a playback request for `clip`. Admission happens on
    /// subsequent [`CmServer::tick`]s, FIFO with bounded bypass.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] for an unknown clip.
    pub fn request(&mut self, clip: ClipId) -> Result<RequestId, CmsError> {
        self.sim.submit(clip)
    }

    /// Advances the server by one round: admissions, block retrievals
    /// (with reconstruction when a disk is down), and delivery.
    pub fn tick(&mut self) -> &Metrics {
        self.sim.step();
        self.sim.metrics()
    }

    /// Like [`CmServer::tick`], but returns the per-round record
    /// (arrivals, admissions, completions, recovery reads, queue depth) —
    /// what an operator's dashboard would ingest.
    pub fn tick_report(&mut self) -> cms_sim::RoundReport {
        self.sim.step_report()
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) -> &Metrics {
        for _ in 0..n {
            self.sim.step();
        }
        self.sim.metrics()
    }

    /// Fails a disk (single-failure model).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if another disk is already
    /// failed or the id is out of range.
    pub fn fail_disk(&mut self, disk: DiskId) -> Result<(), CmsError> {
        self.sim.fail_disk(disk)
    }

    /// Repairs the failed disk.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if `disk` is not the failed
    /// one.
    pub fn repair_disk(&mut self, disk: DiskId) -> Result<(), CmsError> {
        self.sim.repair_disk(disk)
    }

    /// Current status snapshot.
    #[must_use]
    pub fn status(&self) -> ServerStatus {
        ServerStatus {
            round: self.sim.now(),
            active: self.sim.active_clients(),
            pending: self.sim.pending_requests(),
            failed_disk: self.sim.failed_disk(),
        }
    }

    /// Cumulative metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Background rebuild progress as `(rebuilt, total)` blocks, if one
    /// is running (requires [`crate::CmServerBuilder::auto_rebuild`]).
    #[must_use]
    pub fn rebuild_progress(&self) -> Option<(u64, u64)> {
        self.sim.rebuild_progress()
    }

    /// The running trace summary — event counts, load-shape histograms
    /// and the failure→recovery→rebuild milestone gaps. `None` unless
    /// tracing was enabled via [`crate::CmServerBuilder::trace`] (or
    /// [`CmServer::set_trace_sink`]).
    #[must_use]
    pub fn trace_summary(&self) -> Option<&cms_sim::TraceSummary> {
        self.sim.trace_summary()
    }

    /// Installs a custom trace sink (e.g. a `RingSink` whose handle the
    /// caller keeps for live inspection).
    pub fn set_trace_sink(&mut self, sink: Box<dyn cms_sim::TraceSink + Send>) {
        self.sim.set_trace_sink(sink);
    }

    /// Flushes the trace sink (file traces are buffered; call this when
    /// done ticking).
    pub fn flush_trace(&mut self) {
        self.sim.flush_trace();
    }

    /// VCR pause: stops a playing session, releasing its bandwidth slot
    /// (the buffer is dropped; resuming re-admits through the controller).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if the session is not playing.
    pub fn pause(&mut self, id: RequestId) -> Result<(), CmsError> {
        self.sim.pause(id)
    }

    /// VCR resume: re-queues a paused session's remainder for admission.
    /// Returns the new request id tracking the resumed playback.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if the session is not paused.
    pub fn resume(&mut self, id: RequestId) -> Result<RequestId, CmsError> {
        self.sim.resume(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(scheme: Scheme) -> CmServer {
        CmServer::builder(scheme)
            .disks(8)
            .buffer_bytes(64 << 20)
            .catalog(40, 20)
            .verify_reconstructions()
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_playback_for_every_scheme() {
        for scheme in Scheme::ALL {
            let mut server = small(scheme);
            let ids: Vec<RequestId> = (0..10u64)
                .map(|c| server.request(ClipId(c)).unwrap())
                .collect();
            assert_eq!(ids.len(), 10);
            assert_eq!(server.status().pending, 10);
            server.run_rounds(80);
            let m = server.metrics();
            assert_eq!(m.completed, 10, "{scheme}: all clips must finish");
            assert_eq!(m.hiccups, 0, "{scheme}");
            assert_eq!(server.status().active, 0);
        }
    }

    #[test]
    fn guarantee_through_failure_and_repair() {
        let mut server = small(Scheme::DeclusteredParity);
        for c in 0..12u64 {
            server.request(ClipId(c)).unwrap();
        }
        server.run_rounds(8);
        server.fail_disk(DiskId(1)).unwrap();
        assert_eq!(server.status().failed_disk, Some(DiskId(1)));
        server.run_rounds(15);
        server.repair_disk(DiskId(1)).unwrap();
        server.run_rounds(60);
        let m = server.metrics();
        assert_eq!(m.completed, 12);
        assert_eq!(m.hiccups, 0);
        assert_eq!(m.parity_mismatches, 0);
        assert!(m.reconstructions > 0, "failure must exercise reconstruction");
    }

    #[test]
    fn auto_rebuild_restores_the_array() {
        let mut server = CmServer::builder(Scheme::DeclusteredParity)
            .disks(8)
            .buffer_bytes(64 << 20)
            .catalog(40, 20)
            .verify_reconstructions()
            .auto_rebuild()
            .build()
            .unwrap();
        for c in 0..8u64 {
            server.request(ClipId(c)).unwrap();
        }
        server.run_rounds(5);
        server.fail_disk(DiskId(2)).unwrap();
        assert!(server.rebuild_progress().is_some());
        // Run until the rebuild completes (bounded).
        let mut rounds = 0;
        while server.status().failed_disk.is_some() {
            server.run_rounds(10);
            rounds += 10;
            assert!(rounds < 5_000, "rebuild must finish");
        }
        let m = server.metrics();
        assert!(m.rebuild_completed_round.is_some());
        assert_eq!(m.hiccups, 0);
        assert!(server.rebuild_progress().is_none());
        // Another failure is survivable after the rebuild (redundancy is
        // conceptually restored; we model the spare as the same slot).
        server.fail_disk(DiskId(5)).unwrap();
        server.run_rounds(50);
        assert_eq!(server.metrics().hiccups, 0);
    }

    #[test]
    fn tick_report_tracks_a_failure_live() {
        let mut server = small(Scheme::DeclusteredParity);
        for c in 0..8u64 {
            server.request(ClipId(c)).unwrap();
        }
        server.run_rounds(4);
        server.fail_disk(DiskId(1)).unwrap();
        let mut saw_recovery = false;
        for _ in 0..30 {
            let r = server.tick_report();
            assert_eq!(r.hiccups, 0);
            if r.recovery_reads > 0 {
                saw_recovery = true;
            }
        }
        assert!(saw_recovery, "round reports must surface recovery traffic");
    }

    #[test]
    fn vcr_pause_resume_roundtrip() {
        let mut server = small(Scheme::DeclusteredParity);
        let id = server.request(ClipId(3)).unwrap();
        server.run_rounds(5);
        server.pause(id).unwrap();
        let at_pause = server.status().active;
        server.run_rounds(3);
        let resumed = server.resume(id).unwrap();
        server.run_rounds(60);
        let m = server.metrics();
        assert_eq!(m.completed, 1);
        assert_eq!(m.hiccups, 0);
        assert!(at_pause == 0, "pause must free the slot immediately");
        let _ = resumed;
    }

    #[test]
    fn trace_summary_follows_a_failure_drill() {
        let mut server = CmServer::builder(Scheme::DeclusteredParity)
            .disks(8)
            .buffer_bytes(64 << 20)
            .catalog(40, 20)
            .verify_reconstructions()
            .trace(cms_sim::TraceSpec::null())
            .build()
            .unwrap();
        assert_eq!(server.trace_summary().map(|s| s.events), Some(0));
        for c in 0..8u64 {
            server.request(ClipId(c)).unwrap();
        }
        server.run_rounds(5);
        server.fail_disk(DiskId(1)).unwrap();
        server.run_rounds(20);
        server.repair_disk(DiskId(1)).unwrap();
        server.run_rounds(40);
        server.flush_trace();
        let s = server.trace_summary().expect("tracing enabled");
        assert_eq!(s.failure_round, Some(5));
        assert_eq!(s.repair_round, Some(25));
        assert!(s.recovery_reads > 0);
        assert_eq!(s.recovery_reads, server.metrics().recovery_reads);
        assert_eq!(s.completions, 8);
        assert!(s.failure_to_first_recovery().is_some());
    }

    #[test]
    fn capacity_point_is_exposed() {
        let server = small(Scheme::StreamingRaid);
        let point = server.capacity();
        assert!(point.total_clips > 0);
        assert!(point.block_bytes > 0);
        assert_eq!(server.scheme(), Scheme::StreamingRaid);
    }

    #[test]
    fn rejects_unknown_clips() {
        let mut server = small(Scheme::PrefetchFlat);
        assert!(server.request(ClipId(40)).is_err());
        assert!(server.request(ClipId(39)).is_ok());
    }

    #[test]
    fn overload_queues_and_drains() {
        let mut server = small(Scheme::PrefetchParityDisks);
        let burst = 4 * u64::from(server.capacity().total_clips);
        for i in 0..burst {
            server.request(ClipId(i % 40)).unwrap();
        }
        server.run_rounds(5);
        let st = server.status();
        assert!(st.pending > 0, "a 4× burst must queue (capacity {burst})");
        assert!(st.active > 0);
        server.run_rounds(20 * burst + 600);
        assert_eq!(u64::from(server.metrics().completed as u32), burst, "queue must drain");
        assert_eq!(server.metrics().hiccups, 0);
    }
}
