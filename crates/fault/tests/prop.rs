//! Property tests for the fault-schedule subsystem: the parser round-trip
//! and the structural guarantees the generators advertise (sorted by
//! round, state-machine-consistent — in particular, never repairing a
//! disk that is not failed).

use cms_core::DiskId;
use cms_fault::{correlated_shelf, fail_during_rebuild, independent};
use cms_fault::{FaultEvent, FaultSchedule, ScheduledEvent};
use proptest::prelude::*;

const D: u32 = 16;

/// Strategy for one arbitrary (not necessarily consistent) event.
fn arb_event() -> impl Strategy<Value = ScheduledEvent> {
    (
        0u64..500,
        prop_oneof![
            (0u32..D).prop_map(|d| FaultEvent::Fail(DiskId(d))),
            (0u32..D).prop_map(|d| FaultEvent::Repair(DiskId(d))),
            ((0u32..D), (1u64..40))
                .prop_map(|(d, rounds)| FaultEvent::Transient { disk: DiskId(d), rounds }),
            ((0u32..D), (2u32..9), (1u64..40)).prop_map(|(d, factor, rounds)| {
                FaultEvent::SlowDisk { disk: DiskId(d), factor, rounds }
            }),
        ],
    )
        .prop_map(|(round, event)| ScheduledEvent { round, event })
}

proptest! {
    #[test]
    fn parse_format_parse_round_trips(events in prop::collection::vec(arb_event(), 0..24)) {
        let schedule = FaultSchedule::new(events);
        let text = schedule.to_string();
        let reparsed = FaultSchedule::parse(&text)
            .unwrap_or_else(|e| panic!("formatted schedule must reparse: {e}\n{text}"));
        prop_assert_eq!(reparsed, schedule, "{}", text);
    }

    #[test]
    fn new_sorts_and_is_stable_for_equal_rounds(events in prop::collection::vec(arb_event(), 0..24)) {
        let schedule = FaultSchedule::new(events.clone());
        // Sorted by round.
        prop_assert!(schedule.events().windows(2).all(|w| w[0].round <= w[1].round));
        // Stable: same-round events keep their input order.
        for round in schedule.events().iter().map(|e| e.round) {
            let input: Vec<_> =
                events.iter().filter(|e| e.round == round).map(|e| e.event).collect();
            let output: Vec<_> = schedule
                .events()
                .iter()
                .filter(|e| e.round == round)
                .map(|e| e.event)
                .collect();
            prop_assert_eq!(input, output, "round {}", round);
        }
    }

    #[test]
    fn independent_is_sorted_and_consistent(
        horizon in 10u64..400,
        p in 0.0f64..1.0,
        repair in 1u64..60,
        seed in 0u64..1_000_000,
    ) {
        let s = independent(D, horizon, p, repair, seed);
        prop_assert!(s.events().windows(2).all(|w| w[0].round <= w[1].round));
        // Consistency implies: every repair targets a disk failed earlier
        // and not yet repaired — i.e. the generator never repairs a
        // healthy disk.
        s.check_consistency(D).unwrap();
        prop_assert_eq!(independent(D, horizon, p, repair, seed), s, "same seed, same schedule");
    }

    #[test]
    fn correlated_shelf_is_sorted_and_consistent(
        width in 1u32..D + 1,
        start in 0u64..200,
        spread in 0u64..20,
        seed in 0u64..1_000_000,
    ) {
        let s = correlated_shelf(D, width, start, spread, seed);
        prop_assert!(s.events().windows(2).all(|w| w[0].round <= w[1].round));
        s.check_consistency(D).unwrap();
        prop_assert_eq!(s.len() as u32, width.clamp(1, D));
    }

    #[test]
    fn fail_during_rebuild_is_sorted_and_consistent(
        first in 1u64..200,
        gap in 0u64..60,
        seed in 0u64..1_000_000,
    ) {
        let s = fail_during_rebuild(D, first, gap, seed);
        prop_assert!(s.events().windows(2).all(|w| w[0].round <= w[1].round));
        s.check_consistency(D).unwrap();
        prop_assert_eq!(s.len(), 2);
    }
}
