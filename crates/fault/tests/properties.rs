//! Display→parse round-trips for the fault-schedule *generators*.
//!
//! The conformance harness serializes shrunk repro cases through
//! `FaultSchedule`'s `Display` and commits the text (see
//! `cms-conformance`), so the printed form of every generator family
//! must reparse to the identical schedule — including with the
//! `#`-comment headers a repro file prepends.

use cms_core::NodeId;
use cms_fault::{
    correlated_shelf, fail_during_rebuild, independent, FaultEvent, FaultSchedule, ScheduledEvent,
};
use proptest::prelude::*;

const D: u32 = 12;

fn reparse(s: &FaultSchedule) -> FaultSchedule {
    let text = s.to_string();
    FaultSchedule::parse(&text)
        .unwrap_or_else(|e| panic!("generator output must reparse: {e}\n{text}"))
}

proptest! {
    #[test]
    fn independent_output_round_trips(
        horizon in 10u64..400,
        p in 0.0f64..1.0,
        repair in 1u64..60,
        seed in 0u64..1_000_000,
    ) {
        let s = independent(D, horizon, p, repair, seed);
        prop_assert_eq!(reparse(&s), s);
    }

    #[test]
    fn correlated_shelf_output_round_trips(
        width in 1u32..D + 1,
        start in 0u64..200,
        spread in 0u64..20,
        seed in 0u64..1_000_000,
    ) {
        let s = correlated_shelf(D, width, start, spread, seed);
        prop_assert_eq!(reparse(&s), s);
    }

    #[test]
    fn fail_during_rebuild_output_round_trips(
        first in 1u64..200,
        gap in 0u64..60,
        seed in 0u64..1_000_000,
    ) {
        let s = fail_during_rebuild(D, first, gap, seed);
        prop_assert_eq!(reparse(&s), s);
    }

    #[test]
    fn comment_headers_do_not_change_the_parse(
        horizon in 10u64..200,
        p in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        // Repro files are fault specs with `#`-comment header lines;
        // the headers must be invisible to the parser.
        let s = independent(D, horizon, p, 20, seed);
        let text = format!(
            "# cms-conformance repro v1\n# detail: anything at all\n{s}"
        );
        let parsed = FaultSchedule::parse(&text)
            .unwrap_or_else(|e| panic!("headers broke the parse: {e}\n{text}"));
        prop_assert_eq!(parsed, s);
    }

    /// Node-scoped verbs round-trip through Display→parse like the disk
    /// verbs do: cluster campaign specs are committed as text goldens, so
    /// `parse(format(s)) == s` must hold for arbitrary fail-node /
    /// repair-node interleavings.
    #[test]
    fn node_verbs_round_trip(
        events in prop::collection::vec((0u64..500, 0u32..64, any::<bool>()), 0..24),
    ) {
        let s = FaultSchedule::new(
            events
                .iter()
                .map(|&(round, node, fail)| ScheduledEvent {
                    round,
                    event: if fail {
                        FaultEvent::FailNode(NodeId(node))
                    } else {
                        FaultEvent::RepairNode(NodeId(node))
                    },
                })
                .collect(),
        );
        prop_assert_eq!(reparse(&s), s);
    }

    /// Alternating fail-node/repair-node on one node is always a
    /// consistent cluster schedule, and its text form survives comment
    /// headers.
    #[test]
    fn alternating_node_cycle_is_consistent(
        node in 0u32..64,
        start in 0u64..100,
        gaps in prop::collection::vec(1u64..40, 1..8),
    ) {
        let mut round = start;
        let mut events = Vec::new();
        for (i, gap) in gaps.iter().enumerate() {
            let event = if i % 2 == 0 {
                FaultEvent::FailNode(NodeId(node))
            } else {
                FaultEvent::RepairNode(NodeId(node))
            };
            events.push(ScheduledEvent { round, event });
            round += gap;
        }
        let s = FaultSchedule::new(events);
        prop_assert!(s.check_consistency_cluster(64).is_ok());
        prop_assert!(s.has_node_events());
        // Single-server validation must refuse the whole schedule.
        prop_assert!(s.validate(64).is_err());
        let text = format!("# cluster campaign repro\n{s}");
        prop_assert_eq!(FaultSchedule::parse(&text).unwrap_or_else(|e| panic!("{e}")), s);
    }

    /// Malformed node-verb lines fail with a diagnostic naming the
    /// 1-based line number and the offending token — the same contract
    /// the disk verbs honor.
    #[test]
    fn node_verb_errors_name_line_and_token(
        headers in 0usize..4,
        round in 0u64..1000,
        word in 0usize..6,
    ) {
        // Non-numeric tokens that can land where the node id belongs.
        const WORDS: [&str; 6] = ["two", "nodeX", "x7", "-1", "grid", "zz"];
        let bad_id = WORDS[word];
        let mut text = String::new();
        for i in 0..headers {
            text.push_str(&format!("# header {i}\n"));
        }
        text.push_str(&format!("@{round} fail-node {bad_id}\n"));
        let msg = FaultSchedule::parse(&text).expect_err("non-numeric node id").to_string();
        prop_assert!(
            msg.contains(&format!("line {}", headers + 1)),
            "missing line number in {msg:?}"
        );
        prop_assert!(msg.contains("expected a node id"), "wrong what-clause in {msg:?}");
        prop_assert!(msg.contains(&format!("`{bad_id}`")), "missing token in {msg:?}");

        // Missing id entirely: the token clause degrades to `end of line`.
        let msg = FaultSchedule::parse(&format!("@{round} repair-node"))
            .expect_err("missing node id")
            .to_string();
        prop_assert!(msg.contains("line 1") && msg.contains("end of line"), "{msg:?}");
    }
}
