//! Display→parse round-trips for the fault-schedule *generators*.
//!
//! The conformance harness serializes shrunk repro cases through
//! `FaultSchedule`'s `Display` and commits the text (see
//! `cms-conformance`), so the printed form of every generator family
//! must reparse to the identical schedule — including with the
//! `#`-comment headers a repro file prepends.

use cms_fault::{correlated_shelf, fail_during_rebuild, independent, FaultSchedule};
use proptest::prelude::*;

const D: u32 = 12;

fn reparse(s: &FaultSchedule) -> FaultSchedule {
    let text = s.to_string();
    FaultSchedule::parse(&text)
        .unwrap_or_else(|e| panic!("generator output must reparse: {e}\n{text}"))
}

proptest! {
    #[test]
    fn independent_output_round_trips(
        horizon in 10u64..400,
        p in 0.0f64..1.0,
        repair in 1u64..60,
        seed in 0u64..1_000_000,
    ) {
        let s = independent(D, horizon, p, repair, seed);
        prop_assert_eq!(reparse(&s), s);
    }

    #[test]
    fn correlated_shelf_output_round_trips(
        width in 1u32..D + 1,
        start in 0u64..200,
        spread in 0u64..20,
        seed in 0u64..1_000_000,
    ) {
        let s = correlated_shelf(D, width, start, spread, seed);
        prop_assert_eq!(reparse(&s), s);
    }

    #[test]
    fn fail_during_rebuild_output_round_trips(
        first in 1u64..200,
        gap in 0u64..60,
        seed in 0u64..1_000_000,
    ) {
        let s = fail_during_rebuild(D, first, gap, seed);
        prop_assert_eq!(reparse(&s), s);
    }

    #[test]
    fn comment_headers_do_not_change_the_parse(
        horizon in 10u64..200,
        p in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        // Repro files are fault specs with `#`-comment header lines;
        // the headers must be invisible to the parser.
        let s = independent(D, horizon, p, 20, seed);
        let text = format!(
            "# cms-conformance repro v1\n# detail: anything at all\n{s}"
        );
        let parsed = FaultSchedule::parse(&text)
            .unwrap_or_else(|e| panic!("headers broke the parse: {e}\n{text}"));
        prop_assert_eq!(parsed, s);
    }
}
