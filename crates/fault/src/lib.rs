//! # cms-fault — declarative fault schedules for the CM server
//!
//! The paper's guarantees are statements about what the server does
//! *across* a failure: contingency bandwidth `f` absorbs the failure-mode
//! load (§4–§6), declustering spreads rebuild reads over every survivor
//! (§4.1), and admitted streams never hiccup. The interesting regimes
//! from the related work are multi-event — a second fault landing
//! mid-rebuild, correlated shelf failures, transient blips — so fault
//! injection must be a first-class, replayable input rather than an
//! ad-hoc `fail()`/`repair()` pair in a drill binary.
//!
//! A [`FaultSchedule`] is a round-stamped list of [`FaultEvent`]s, kept
//! sorted by round. It can be written by hand, parsed from a tiny
//! line-oriented text spec ([`FaultSchedule::parse`], round-tripped by
//! `Display`), or produced by the seeded generators in [`gen`]
//! (independent failures, correlated-shelf, fail-during-rebuild). The
//! simulation engine drains due events at the start of each round —
//! before admission — on the coordinating thread, so scheduled faults
//! obey the same bit-identical replay contract as everything else
//! (DESIGN.md §10).
//!
//! ```
//! use cms_fault::{FaultEvent, FaultSchedule, ScheduledEvent};
//! use cms_core::DiskId;
//!
//! let s = FaultSchedule::parse("@40 fail 2\n@90 repair 2\n").unwrap();
//! assert_eq!(s.events().len(), 2);
//! assert_eq!(s.events()[0].event, FaultEvent::Fail(DiskId(2)));
//! // Display renders the same spec back.
//! assert_eq!(FaultSchedule::parse(&s.to_string()).unwrap(), s);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod gen;
pub mod schedule;

pub use gen::{correlated_shelf, fail_during_rebuild, independent};
pub use schedule::{FaultEvent, FaultSchedule, ScheduledEvent};
