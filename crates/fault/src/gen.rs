//! Seeded schedule generators for the failure regimes the related work
//! cares about: independent failures, a correlated shelf losing several
//! disks at once, and a second failure landing mid-rebuild.
//!
//! Every generator is a pure function of its parameters and seed — the
//! same inputs produce the same [`FaultSchedule`] on every run, so a
//! campaign sweep is replayable from its manifest alone. All outputs are
//! sorted by round and pass [`FaultSchedule::check_consistency`] (the
//! proptests in `tests/prop.rs` pin both properties down).

use crate::schedule::{FaultEvent, FaultSchedule, ScheduledEvent};
use cms_core::DiskId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Independent fail/repair cycles: each disk, independently with
/// probability `p_fail`, suffers one failure at a uniform round in
/// `[1, horizon)`, repaired `repair_rounds` later (if that still falls
/// inside the horizon — late failures stay unrepaired). Failures on
/// *different* disks may overlap freely; that is the double-failure
/// regime the engine must survive.
#[must_use]
pub fn independent(d: u32, horizon: u64, p_fail: f64, repair_rounds: u64, seed: u64) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let horizon = horizon.max(2);
    for disk in 0..d {
        if !rng.gen_bool(p_fail) {
            continue;
        }
        let fail_round = rng.gen_range(1u64..horizon);
        events.push(ScheduledEvent { round: fail_round, event: FaultEvent::Fail(DiskId(disk)) });
        let repair_round = fail_round.saturating_add(repair_rounds.max(1));
        if repair_round < horizon {
            events.push(ScheduledEvent {
                round: repair_round,
                event: FaultEvent::Repair(DiskId(disk)),
            });
        }
    }
    FaultSchedule::new(events)
}

/// Correlated shelf failure: `width` consecutive disks starting at a
/// random shelf boundary all fail within a window of `spread` rounds
/// after `start_round` — the power-supply / enclosure fault that defeats
/// schemes whose parity groups sit on one shelf. No repairs are
/// scheduled; the scenario measures how much of the load survives.
#[must_use]
pub fn correlated_shelf(d: u32, width: u32, start_round: u64, spread: u64, seed: u64) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = width.clamp(1, d);
    let shelves = d / width;
    let shelf = if shelves > 1 { rng.gen_range(0u32..shelves) } else { 0 };
    let first = shelf * width;
    let mut events = Vec::new();
    for i in 0..width {
        let jitter = if spread > 0 { rng.gen_range(0u64..spread.saturating_add(1)) } else { 0 };
        events.push(ScheduledEvent {
            round: start_round.saturating_add(jitter),
            event: FaultEvent::Fail(DiskId(first + i)),
        });
    }
    // Same-round events on distinct disks are fine; dedupe is not needed
    // because each disk fails exactly once.
    FaultSchedule::new(events)
}

/// Fail-during-rebuild: disk `a` fails at `first_round`; while its
/// rebuild is still in flight, a second, randomly chosen surviving disk
/// fails `gap` rounds later. Neither is repaired — the scenario exists to
/// exercise the second-failure path (streams whose parity group lost two
/// members are declared lost deterministically).
#[must_use]
pub fn fail_during_rebuild(d: u32, first_round: u64, gap: u64, seed: u64) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = if d > 1 { rng.gen_range(0u32..d) } else { 0 };
    let b = if d > 1 {
        let pick = rng.gen_range(0u32..d - 1);
        if pick >= a { pick + 1 } else { pick }
    } else {
        0
    };
    FaultSchedule::new(vec![
        ScheduledEvent { round: first_round, event: FaultEvent::Fail(DiskId(a)) },
        ScheduledEvent {
            round: first_round.saturating_add(gap.max(1)),
            event: FaultEvent::Fail(DiskId(b)),
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_is_deterministic_and_consistent() {
        let a = independent(16, 200, 0.5, 30, 9);
        let b = independent(16, 200, 0.5, 30, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "p=0.5 over 16 disks should fire at least once");
        a.check_consistency(16).unwrap();
    }

    #[test]
    fn independent_zero_probability_is_empty() {
        assert!(independent(16, 200, 0.0, 30, 1).is_empty());
    }

    #[test]
    fn correlated_shelf_fails_consecutive_disks_once_each() {
        let s = correlated_shelf(16, 4, 50, 5, 3);
        assert_eq!(s.len(), 4);
        s.check_consistency(16).unwrap();
        let mut disks: Vec<u32> =
            s.events().iter().filter_map(|e| e.event.disk()).map(DiskId::raw).collect();
        disks.sort_unstable();
        let first = disks[0];
        assert_eq!(disks, (first..first + 4).collect::<Vec<_>>());
        assert_eq!(first % 4, 0, "shelf starts on a width boundary");
        for e in s.events() {
            assert!(matches!(e.event, FaultEvent::Fail(_)));
            assert!((50..=55).contains(&e.round));
        }
    }

    #[test]
    fn fail_during_rebuild_hits_two_distinct_disks() {
        for seed in 0..32 {
            let s = fail_during_rebuild(8, 40, 15, seed);
            assert_eq!(s.len(), 2);
            s.check_consistency(8).unwrap();
            let a = s.events()[0].event.disk().unwrap();
            let b = s.events()[1].event.disk().unwrap();
            assert_ne!(a, b, "seed {seed} picked the same disk twice");
            assert_eq!(s.events()[0].round, 40);
            assert_eq!(s.events()[1].round, 55);
        }
    }
}
