//! The schedule model: round-stamped fault events, the text spec parser,
//! and the consistency checker the generators and proptests rely on.

use cms_core::{CmsError, DiskId, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// One fault-injection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The disk fails hard: its contents are gone until repaired (or
    /// rebuilt onto a spare). Reads must be served by reconstruction.
    Fail(DiskId),
    /// The failed disk returns to service with its contents intact
    /// (models an external replacement that restored the data).
    Repair(DiskId),
    /// The disk stops serving for `rounds` rounds, then returns on its
    /// own with contents intact — a controller reset or cable blip. No
    /// rebuild is needed; reads during the window go to survivors.
    Transient {
        /// The affected disk.
        disk: DiskId,
        /// Length of the outage window, in rounds (≥ 1).
        rounds: u64,
    },
    /// The disk keeps serving but `factor`× slower for `rounds` rounds:
    /// its per-round service budget shrinks to `max(1, q / factor)` and
    /// its busy time is multiplied by `factor` — the degraded-but-alive
    /// regime between healthy and failed.
    SlowDisk {
        /// The affected disk.
        disk: DiskId,
        /// Slowdown multiplier (≥ 2; 1 would be a no-op).
        factor: u32,
        /// Length of the slow window, in rounds (≥ 1).
        rounds: u64,
    },
    /// A whole server node — one complete d-disk array — goes dark: every
    /// stream it was serving must migrate to a surviving replica. Only
    /// meaningful in cluster schedules (`cms-cluster`); single-server
    /// schedules reject it.
    FailNode(NodeId),
    /// The failed node returns with its disks blank and starts a
    /// cross-node rebuild from its replica peers before it becomes
    /// routable again.
    RepairNode(NodeId),
}

impl FaultEvent {
    /// The disk this event targets, or `None` for node-scoped events.
    #[must_use]
    pub fn disk(&self) -> Option<DiskId> {
        match *self {
            FaultEvent::Fail(d) | FaultEvent::Repair(d) => Some(d),
            FaultEvent::Transient { disk, .. } | FaultEvent::SlowDisk { disk, .. } => Some(disk),
            FaultEvent::FailNode(_) | FaultEvent::RepairNode(_) => None,
        }
    }

    /// The node this event targets, or `None` for disk-scoped events.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            FaultEvent::FailNode(n) | FaultEvent::RepairNode(n) => Some(n),
            _ => None,
        }
    }
}

/// A fault event stamped with the round it takes effect in (applied at
/// the start of that round, before admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// The round the event fires in.
    pub round: u64,
    /// What happens.
    pub event: FaultEvent,
}

impl fmt::Display for ScheduledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.event {
            FaultEvent::Fail(d) => write!(f, "@{} fail {}", self.round, d.raw()),
            FaultEvent::Repair(d) => write!(f, "@{} repair {}", self.round, d.raw()),
            FaultEvent::Transient { disk, rounds } => {
                write!(f, "@{} transient {} rounds={rounds}", self.round, disk.raw())
            }
            FaultEvent::SlowDisk { disk, factor, rounds } => {
                write!(
                    f,
                    "@{} slow {} factor={factor} rounds={rounds}",
                    self.round,
                    disk.raw()
                )
            }
            FaultEvent::FailNode(n) => write!(f, "@{} fail-node {}", self.round, n.raw()),
            FaultEvent::RepairNode(n) => write!(f, "@{} repair-node {}", self.round, n.raw()),
        }
    }
}

/// A deterministic, replayable list of fault events, sorted by round.
/// Events sharing a round apply in list order. The empty schedule is the
/// fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<ScheduledEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from events, stably sorting them by round (the
    /// relative order of same-round events is preserved).
    #[must_use]
    pub fn new(mut events: Vec<ScheduledEvent>) -> Self {
        events.sort_by_key(|e| e.round);
        FaultSchedule { events }
    }

    /// The events, in firing order.
    #[must_use]
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the schedule empty (a fault-free run)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Convenience constructor for the classic drill: fail one disk, and
    /// optionally repair it later.
    #[must_use]
    pub fn single_failure(fail_round: u64, disk: DiskId, repair_round: Option<u64>) -> Self {
        let mut events = vec![ScheduledEvent { round: fail_round, event: FaultEvent::Fail(disk) }];
        if let Some(r) = repair_round {
            events.push(ScheduledEvent { round: r, event: FaultEvent::Repair(disk) });
        }
        FaultSchedule::new(events)
    }

    /// Parses the line-oriented text spec. One event per line:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// @40 fail 5
    /// @90 repair 5
    /// @30 transient 2 rounds=5
    /// @60 slow 3 factor=4 rounds=10
    /// @45 fail-node 2
    /// @95 repair-node 2
    /// ```
    ///
    /// The node-scoped verbs address whole server nodes behind the
    /// cluster gateway; [`FaultSchedule::validate`] (single server) and
    /// [`FaultSchedule::validate_cluster`] (cluster) police which scope a
    /// schedule may use.
    ///
    /// `Display` renders exactly this format back, and
    /// `parse(format(s)) == s` for any schedule (the round-trip property
    /// the proptests pin down).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] naming the line number *and*
    /// the offending token for any malformed event — shrunk conformance
    /// repros are hand-edited, so the diagnostics must point at the exact
    /// word that broke.
    pub fn parse(text: &str) -> Result<Self, CmsError> {
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Every diagnostic carries the 1-based line number, what was
            // expected, and the token that failed to parse (or `end of
            // line` when the token is missing outright).
            let bad = |what: &str, token: Option<&str>| {
                let got = match token {
                    Some(t) => format!("`{t}`"),
                    None => "end of line".to_owned(),
                };
                CmsError::invalid_params(format!(
                    "fault schedule line {}: {what}, got {got} in {line:?}",
                    lineno + 1
                ))
            };
            let mut words = line.split_whitespace();
            let first = words.next();
            let round = first
                .and_then(|w| w.strip_prefix('@'))
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or_else(|| bad("expected `@<round>`", first))?;
            let verb = words.next().ok_or_else(|| bad("expected an event verb", None))?;
            let node_scoped = matches!(verb, "fail-node" | "repair-node");
            let id_word = words.next();
            let id = id_word.and_then(|w| w.parse::<u32>().ok()).ok_or_else(|| {
                bad(if node_scoped { "expected a node id" } else { "expected a disk id" }, id_word)
            })?;
            let disk = DiskId(id);
            let mut keys: BTreeMap<&str, u64> = BTreeMap::new();
            for kv in words {
                let (k, v) =
                    kv.split_once('=').ok_or_else(|| bad("expected `key=value`", Some(kv)))?;
                let v = v
                    .parse::<u64>()
                    .map_err(|_| bad(&format!("key `{k}` needs an integer value"), Some(kv)))?;
                keys.insert(k, v);
            }
            let key = |k: &str| {
                keys.get(k).copied().ok_or_else(|| bad(&format!("missing key `{k}`"), Some(verb)))
            };
            let event = match verb {
                "fail" => FaultEvent::Fail(disk),
                "repair" => FaultEvent::Repair(disk),
                "transient" => FaultEvent::Transient { disk, rounds: key("rounds")? },
                "slow" => {
                    let factor = u32::try_from(key("factor")?)
                        .map_err(|_| bad("key `factor` out of range", Some(verb)))?;
                    FaultEvent::SlowDisk { disk, factor, rounds: key("rounds")? }
                }
                "fail-node" => FaultEvent::FailNode(NodeId(id)),
                "repair-node" => FaultEvent::RepairNode(NodeId(id)),
                _ => return Err(bad("unknown event verb", Some(verb))),
            };
            events.push(ScheduledEvent { round, event });
        }
        Ok(FaultSchedule::new(events))
    }

    /// Does the schedule contain any node-scoped (`fail-node` /
    /// `repair-node`) events? Such schedules belong to a cluster run;
    /// [`FaultSchedule::validate`] rejects them for a single server.
    #[must_use]
    pub fn has_node_events(&self) -> bool {
        self.events.iter().any(|e| e.event.node().is_some())
    }

    /// Structural validation against a single server's array of `d`
    /// disks: every disk id in range, every window length ≥ 1, every slow
    /// factor ≥ 2, and **no node-scoped events** — those only make sense
    /// behind the cluster gateway (see
    /// [`FaultSchedule::validate_cluster`]).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] naming the offending event.
    pub fn validate(&self, d: u32) -> Result<(), CmsError> {
        for e in &self.events {
            if e.event.node().is_some() {
                return Err(CmsError::invalid_params(format!(
                    "fault schedule event `{e}` is node-scoped; a single-server schedule \
                     cannot fail whole nodes (use a cluster schedule)"
                )));
            }
            if e.event.disk().is_some_and(|disk| disk.raw() >= d) {
                return Err(CmsError::invalid_params(format!(
                    "fault schedule event `{e}` targets a disk outside the {d}-disk array"
                )));
            }
            match e.event {
                FaultEvent::Transient { rounds: 0, .. } => {
                    return Err(CmsError::invalid_params(format!(
                        "fault schedule event `{e}`: transient window must be >= 1 round"
                    )));
                }
                FaultEvent::SlowDisk { factor, rounds, .. } if factor < 2 || rounds == 0 => {
                    return Err(CmsError::invalid_params(format!(
                        "fault schedule event `{e}`: slow window needs factor >= 2 and rounds >= 1"
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Structural validation against a cluster of `n` nodes: every event
    /// node-scoped (the gateway does not forward disk-level faults — a
    /// node *is* the failure unit at this tier) and every node id in
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] naming the offending event.
    pub fn validate_cluster(&self, n: u32) -> Result<(), CmsError> {
        for e in &self.events {
            let Some(node) = e.event.node() else {
                return Err(CmsError::invalid_params(format!(
                    "fault schedule event `{e}` is disk-scoped; cluster schedules take \
                     fail-node/repair-node events only"
                )));
            };
            if node.raw() >= n {
                return Err(CmsError::invalid_params(format!(
                    "fault schedule event `{e}` targets a node outside the {n}-node cluster"
                )));
            }
        }
        Ok(())
    }

    /// Full consistency check for a cluster schedule:
    /// [`FaultSchedule::validate_cluster`] plus the node state machine —
    /// a node fails only while up and is repaired only while failed.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] naming the first inconsistent
    /// event.
    pub fn check_consistency_cluster(&self, n: u32) -> Result<(), CmsError> {
        self.validate_cluster(n)?;
        let mut failed: Vec<bool> = vec![false; n as usize];
        for e in &self.events {
            let bad = |what: &str| {
                Err(CmsError::invalid_params(format!("fault schedule event `{e}`: {what}")))
            };
            match e.event {
                FaultEvent::FailNode(node) => {
                    if failed.get(node.idx()).copied().unwrap_or(false) {
                        return bad("fails a node that is already down");
                    }
                    if let Some(slot) = failed.get_mut(node.idx()) {
                        *slot = true;
                    }
                }
                FaultEvent::RepairNode(node) => {
                    if !failed.get(node.idx()).copied().unwrap_or(false) {
                        return bad("repairs a node that is not failed");
                    }
                    if let Some(slot) = failed.get_mut(node.idx()) {
                        *slot = false;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Full consistency check: [`FaultSchedule::validate`] plus the
    /// state-machine rules the generators guarantee — a disk fails only
    /// while up, is repaired only while failed, and transient/slow
    /// windows target up disks and never overlap another window on the
    /// same disk. The engine tolerates inconsistent schedules (stray
    /// events degrade to no-ops), but generated schedules must pass this,
    /// and the proptests enforce it.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] naming the first inconsistent
    /// event.
    pub fn check_consistency(&self, d: u32) -> Result<(), CmsError> {
        self.validate(d)?;
        // Per-disk state: failed-set plus window-end rounds (exclusive).
        let mut failed: Vec<bool> = vec![false; d as usize];
        let mut transient_until: BTreeMap<DiskId, u64> = BTreeMap::new();
        let mut slow_until: BTreeMap<DiskId, u64> = BTreeMap::new();
        let bad = |e: &ScheduledEvent, what: &str| {
            Err(CmsError::invalid_params(format!("fault schedule event `{e}`: {what}")))
        };
        for e in &self.events {
            // validate() already rejected node-scoped events.
            let Some(disk) = e.event.disk() else { continue };
            transient_until.retain(|_, end| *end > e.round);
            slow_until.retain(|_, end| *end > e.round);
            let is_failed = failed.get(disk.idx()).copied().unwrap_or(false);
            let in_transient = transient_until.contains_key(&disk);
            match e.event {
                FaultEvent::Fail(_) => {
                    if is_failed || in_transient {
                        return bad(e, "fails a disk that is already down");
                    }
                    if let Some(slot) = failed.get_mut(disk.idx()) {
                        *slot = true;
                    }
                }
                FaultEvent::Repair(_) => {
                    if !is_failed {
                        return bad(e, "repairs a disk that is not failed");
                    }
                    if let Some(slot) = failed.get_mut(disk.idx()) {
                        *slot = false;
                    }
                }
                FaultEvent::Transient { rounds, .. } => {
                    if is_failed || in_transient {
                        return bad(e, "transient on a disk that is already down");
                    }
                    transient_until.insert(disk, e.round.saturating_add(rounds));
                }
                FaultEvent::SlowDisk { rounds, .. } => {
                    if is_failed || in_transient || slow_until.contains_key(&disk) {
                        return bad(e, "slow window on a disk that is down or already slow");
                    }
                    slow_until.insert(disk, e.round.saturating_add(rounds));
                }
                // Skipped above: validate() bans node events here.
                FaultEvent::FailNode(_) | FaultEvent::RepairNode(_) => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        FaultSchedule::new(vec![
            ScheduledEvent { round: 60, event: FaultEvent::Repair(DiskId(5)) },
            ScheduledEvent { round: 40, event: FaultEvent::Fail(DiskId(5)) },
            ScheduledEvent {
                round: 10,
                event: FaultEvent::Transient { disk: DiskId(1), rounds: 5 },
            },
            ScheduledEvent {
                round: 70,
                event: FaultEvent::SlowDisk { disk: DiskId(2), factor: 4, rounds: 10 },
            },
        ])
    }

    #[test]
    fn new_sorts_by_round() {
        let s = sample();
        let rounds: Vec<u64> = s.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![10, 40, 60, 70]);
    }

    #[test]
    fn display_then_parse_round_trips() {
        let s = sample();
        let text = s.to_string();
        assert_eq!(FaultSchedule::parse(&text).unwrap(), s, "{text}");
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let s = FaultSchedule::parse("# drill\n\n@40 fail 2\n  # tail\n@90 repair 2\n").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].event, FaultEvent::Fail(DiskId(2)));
        assert_eq!(s.events()[1].event, FaultEvent::Repair(DiskId(2)));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "40 fail 2",           // missing @
            "@x fail 2",           // non-numeric round
            "@40 fail",            // missing disk
            "@40 explode 2",       // unknown verb
            "@40 transient 2",     // missing rounds=
            "@40 slow 2 rounds=3", // missing factor=
            "@40 slow 2 factor=abc rounds=3",
            "@40 fail 2 extra",    // trailing junk that is not key=value
        ] {
            assert!(FaultSchedule::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    /// Parse diagnostics must name the 1-based line number and the exact
    /// offending token — shrunk conformance repros get hand-edited, and a
    /// whole-line error makes that miserable.
    #[test]
    fn parse_errors_name_line_and_token() {
        let expect = |input: &str, fragments: &[&str]| {
            let msg = FaultSchedule::parse(input).unwrap_err().to_string();
            for frag in fragments {
                assert!(msg.contains(frag), "{input:?}: message {msg:?} must contain {frag:?}");
            }
        };
        // Line numbers count raw lines, comments and blanks included.
        expect("# header\n\n@40 explode 2", &["line 3", "unknown event verb", "`explode`"]);
        expect("40 fail 2", &["line 1", "expected `@<round>`", "`40`"]);
        expect("@x fail 2", &["line 1", "`@x`"]);
        expect("@40 fail", &["line 1", "expected a disk id", "end of line"]);
        expect("@40 fail two", &["line 1", "expected a disk id", "`two`"]);
        expect("@40 transient 2", &["line 1", "missing key `rounds`"]);
        expect("@40 slow 2 rounds=3", &["line 1", "missing key `factor`"]);
        expect(
            "@40 slow 2 factor=abc rounds=3",
            &["line 1", "key `factor` needs an integer value", "`factor=abc`"],
        );
        expect("@40 fail 2 extra", &["line 1", "expected `key=value`", "`extra`"]);
        expect("@10 fail 1\n@40 repair 1 rounds", &["line 2", "`rounds`"]);
    }

    #[test]
    fn validate_checks_ranges() {
        assert!(sample().validate(8).is_ok());
        assert!(sample().validate(5).is_err(), "disk 5 outside a 5-disk array");
        let zero_window = FaultSchedule::new(vec![ScheduledEvent {
            round: 1,
            event: FaultEvent::Transient { disk: DiskId(0), rounds: 0 },
        }]);
        assert!(zero_window.validate(8).is_err());
        let noop_slow = FaultSchedule::new(vec![ScheduledEvent {
            round: 1,
            event: FaultEvent::SlowDisk { disk: DiskId(0), factor: 1, rounds: 5 },
        }]);
        assert!(noop_slow.validate(8).is_err());
    }

    #[test]
    fn consistency_rejects_stray_transitions() {
        let double_fail = FaultSchedule::parse("@10 fail 1\n@20 fail 1\n").unwrap();
        assert!(double_fail.check_consistency(8).is_err());
        let stray_repair = FaultSchedule::parse("@10 repair 1\n").unwrap();
        assert!(stray_repair.check_consistency(8).is_err());
        let fail_in_transient =
            FaultSchedule::parse("@10 transient 1 rounds=10\n@15 fail 1\n").unwrap();
        assert!(fail_in_transient.check_consistency(8).is_err());
        let ok = FaultSchedule::parse(
            "@10 transient 1 rounds=5\n@20 fail 1\n@30 repair 1\n@31 fail 1\n",
        )
        .unwrap();
        assert!(ok.check_consistency(8).is_ok());
        // Two concurrent failures on *different* disks are consistent —
        // that is the whole point of the multi-event model.
        let double = FaultSchedule::parse("@10 fail 1\n@15 fail 2\n").unwrap();
        assert!(double.check_consistency(8).is_ok());
    }

    fn node_sample() -> FaultSchedule {
        FaultSchedule::parse("@45 fail-node 2\n@95 repair-node 2\n@50 fail-node 0\n").unwrap()
    }

    #[test]
    fn node_verbs_round_trip_and_sort() {
        let s = node_sample();
        let rounds: Vec<u64> = s.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![45, 50, 95]);
        assert_eq!(s.events()[0].event, FaultEvent::FailNode(NodeId(2)));
        assert_eq!(s.events()[0].event.node(), Some(NodeId(2)));
        assert_eq!(s.events()[0].event.disk(), None);
        assert_eq!(FaultSchedule::parse(&s.to_string()).unwrap(), s);
        assert!(s.has_node_events());
        assert!(!sample().has_node_events());
    }

    #[test]
    fn node_events_are_rejected_by_single_server_validate() {
        let s = node_sample();
        let msg = s.validate(8).unwrap_err().to_string();
        assert!(msg.contains("node-scoped"), "{msg}");
        // And the mirror: disk events are rejected by the cluster scope.
        let msg = sample().validate_cluster(8).unwrap_err().to_string();
        assert!(msg.contains("disk-scoped"), "{msg}");
    }

    #[test]
    fn validate_cluster_checks_node_range() {
        let s = node_sample();
        assert!(s.validate_cluster(4).is_ok());
        let msg = s.validate_cluster(2).unwrap_err().to_string();
        assert!(msg.contains("outside the 2-node cluster"), "{msg}");
    }

    #[test]
    fn cluster_consistency_tracks_node_state() {
        assert!(node_sample().check_consistency_cluster(4).is_ok());
        let double = FaultSchedule::parse("@10 fail-node 1\n@20 fail-node 1\n").unwrap();
        assert!(double.check_consistency_cluster(4).is_err());
        let stray = FaultSchedule::parse("@10 repair-node 1\n").unwrap();
        assert!(stray.check_consistency_cluster(4).is_err());
        let cycle =
            FaultSchedule::parse("@10 fail-node 1\n@30 repair-node 1\n@31 fail-node 1\n").unwrap();
        assert!(cycle.check_consistency_cluster(4).is_ok());
    }

    #[test]
    fn node_verb_parse_errors_name_the_token() {
        let msg = FaultSchedule::parse("@40 fail-node").unwrap_err().to_string();
        assert!(msg.contains("expected a node id") && msg.contains("end of line"), "{msg}");
        let msg = FaultSchedule::parse("@40 fail-node two").unwrap_err().to_string();
        assert!(msg.contains("expected a node id") && msg.contains("`two`"), "{msg}");
    }

    #[test]
    fn single_failure_matches_the_legacy_scenario_shape() {
        let s = FaultSchedule::single_failure(40, DiskId(3), Some(90));
        assert_eq!(
            s.events(),
            &[
                ScheduledEvent { round: 40, event: FaultEvent::Fail(DiskId(3)) },
                ScheduledEvent { round: 90, event: FaultEvent::Repair(DiskId(3)) },
            ]
        );
        assert!(s.check_consistency(8).is_ok());
    }
}
