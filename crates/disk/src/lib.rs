//! # cms-disk — disk timing, C-SCAN scheduling, and the disk array
//!
//! The substrate under every scheme in the paper: a model of mid-1990s
//! disk drives (Section 3 / Figure 1) with
//!
//! * a **timing model** ([`timing`]) offering both the worst-case costs
//!   the admission math assumes and a sampled model (distance-dependent
//!   seeks, uniform rotation) for the simulator's realistic mode,
//! * a **C-SCAN scheduler** ([`cscan`]) that orders a round's block
//!   requests into at most two ascending sweeps, matching the paper's
//!   "disk heads travel across the disk at most twice" accounting,
//! * a **disk array** ([`mod@array`]) with per-disk health state, failure
//!   injection/repair and per-round service accounting, used by `cms-sim`
//!   to execute rounds and verify that the round deadline `b / r_p` is
//!   never violated for admitted loads.

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod array;
pub mod cscan;
pub mod timing;

pub use array::{Disk, DiskArray, DiskStatus, RoundOutcome, ServiceContext, ServiceScratch};
pub use cscan::{sweep_order, sweep_order_into, BlockRequest};
pub use timing::{RotationModel, SeekModel, TimingModel};
