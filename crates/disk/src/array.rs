//! The disk array: per-disk health state, failure injection, and
//! round-by-round service-time accounting.
//!
//! [`DiskArray::service_round`] executes one service round on one disk: it
//! C-SCAN-orders the round's requests, prices each retrieval under the
//! configured [`TimingModel`], and reports whether the round met its
//! deadline `b / r_p`. The simulator calls this for every disk every
//! round; admission control is supposed to make deadline misses
//! *impossible*, and the simulator asserts exactly that.

use crate::cscan::{sweep_order_into, BlockRequest};
use crate::timing::{SeekModel, TimingModel};
use cms_core::units::Seconds;
use cms_core::{CmsError, DiskId, DiskParams};

/// Health state of one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskStatus {
    /// Operating normally.
    Healthy,
    /// Failed; all reads to it must be served by reconstruction.
    Failed,
    /// Temporarily unreachable (controller reset, cable blip): refuses
    /// service exactly like [`DiskStatus::Failed`], but the platters are
    /// intact — when the window ends the disk returns to service with
    /// its data, so no rebuild is triggered.
    Transient,
}

/// One physical disk.
#[derive(Debug, Clone)]
pub struct Disk {
    /// This disk's id (its column in the PGT).
    pub id: DiskId,
    /// Health state.
    pub status: DiskStatus,
    /// Service-time multiplier: 1 for a nominal disk, `k` for a disk
    /// currently serving `k`× slower (thermal recalibration, media
    /// retries). Busy time scales by this factor; admission must shrink
    /// the disk's round budget to compensate.
    pub slow_factor: u32,
    /// Current head cylinder (persisted across rounds).
    head: u32,
    /// Cumulative busy time, seconds.
    busy_total: Seconds,
    /// Number of blocks served over the disk's lifetime.
    blocks_served: u64,
}

/// The array-wide, immutable parameters a disk needs to service a round:
/// physical model, timing model and geometry. `Copy`, so each worker
/// thread in a parallel round can carry its own.
#[derive(Debug, Clone, Copy)]
pub struct ServiceContext {
    params: DiskParams,
    timing: TimingModel,
    block_bytes: u64,
    blocks_per_disk: u64,
}

/// Reusable buffers for [`Disk::service_round_with`]: the cylinder list
/// and the C-SCAN order of one round. One instance per worker (or per
/// disk) turns the service loop allocation-free in steady state — the
/// buffers grow to the round budget `q` once and are reused every round
/// thereafter (DESIGN.md §7).
#[derive(Debug, Clone, Default)]
pub struct ServiceScratch {
    cylinders: Vec<u32>,
    order: Vec<usize>,
}

impl ServiceScratch {
    /// A scratch pre-grown for rounds of up to `budget` requests, so that
    /// even the very first serve — or a later queue-deepening burst, e.g.
    /// rebuild reads raising the high-water mark mid-run — allocates
    /// nothing inside the service loop.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        ServiceScratch {
            cylinders: Vec::with_capacity(budget),
            order: Vec::with_capacity(budget),
        }
    }
}

impl Disk {
    /// Executes one round of requests on this disk, in C-SCAN order, and
    /// accounts the time against this disk's state only — no shared
    /// mutation, so disks can be serviced concurrently.
    /// `deadline` is the round duration `b / r_p`.
    ///
    /// Allocates working buffers per call; the engine's hot path uses
    /// [`Disk::service_round_with`] with a retained [`ServiceScratch`].
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if any request addresses a
    /// different disk or a block beyond the disk, and
    /// [`CmsError::InvalidParams`] if the disk is failed (a failed disk
    /// cannot serve; the caller must reroute to survivors).
    pub fn service_round(
        &mut self,
        ctx: &ServiceContext,
        requests: &[BlockRequest],
        deadline: Seconds,
    ) -> Result<RoundOutcome, CmsError> {
        let mut scratch = ServiceScratch::default();
        self.service_round_with(ctx, requests, deadline, &mut scratch)
    }

    /// [`Disk::service_round`] against caller-owned scratch buffers:
    /// allocation-free once `scratch` has grown to the round budget.
    /// Identical results — the scratch only changes where the working
    /// memory lives, never what is computed.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Disk::service_round`].
    // lint: hot
    pub fn service_round_with(
        &mut self,
        ctx: &ServiceContext,
        requests: &[BlockRequest],
        deadline: Seconds,
        scratch: &mut ServiceScratch,
    ) -> Result<RoundOutcome, CmsError> {
        if self.status != DiskStatus::Healthy {
            return Err(CmsError::invalid_params(format!(
                "{} is {}",
                self.id,
                if self.status == DiskStatus::Failed { "failed" } else { "transiently down" }
            )));
        }
        scratch.cylinders.clear();
        scratch.cylinders.reserve(requests.len());
        for r in requests {
            if r.disk != self.id {
                return Err(CmsError::out_of_bounds(format!(
                    "request for {} routed to {}",
                    r.disk, self.id
                )));
            }
            if r.block_no >= ctx.blocks_per_disk {
                return Err(CmsError::out_of_bounds(format!(
                    "block {} beyond disk capacity ({} blocks)",
                    r.block_no, ctx.blocks_per_disk
                )));
            }
            scratch.cylinders.push(ctx.timing.cylinder_of(r.block_no, ctx.blocks_per_disk));
        }

        sweep_order_into(&scratch.cylinders, self.head, &mut scratch.order);
        let mut busy = 0.0;
        let mut pos = self.head;
        // When rotation and transfer are block-independent (the worst-case
        // and expected models without zoning — every simulator
        // configuration), hoist that constant tail and price only the seek
        // per block. `seek + rot + settle + tx` is the exact expression
        // `block_time` evaluates, in the same association order, so the
        // busy total is bit-identical to the generic path.
        match (ctx.timing.constant_block_tail(&ctx.params, ctx.block_bytes), ctx.timing.seek) {
            (Some((rot, settle, tx)), SeekModel::WorstCase) => {
                for &i in &scratch.order {
                    let c = scratch.cylinders[i];
                    let seek = ctx.params.seek_worst * f64::from(pos.abs_diff(c)) / 1999.0;
                    busy += seek + rot + settle + tx;
                    pos = c;
                }
            }
            (Some((rot, settle, tx)), SeekModel::SqrtCurve { min_seek, cylinders }) => {
                let full = f64::from(cylinders.saturating_sub(1).max(1));
                let coef = (ctx.params.seek_worst - min_seek) / full.sqrt();
                for &i in &scratch.order {
                    let c = scratch.cylinders[i];
                    let d = pos.abs_diff(c);
                    let seek = if d == 0 {
                        0.0
                    } else {
                        (min_seek + coef * f64::from(d).sqrt()).min(ctx.params.seek_worst)
                    };
                    busy += seek + rot + settle + tx;
                    pos = c;
                }
            }
            (None, _) => {
                for &i in &scratch.order {
                    let c = scratch.cylinders[i];
                    busy += ctx.timing.block_time(
                        &ctx.params,
                        pos.abs_diff(c),
                        requests[i].block_no,
                        ctx.block_bytes,
                    );
                    pos = c;
                }
            }
        }
        self.head = pos;
        let busy = busy * f64::from(self.slow_factor.max(1));
        self.busy_total += busy;
        self.blocks_served += requests.len() as u64;
        Ok(RoundOutcome { blocks: requests.len() as u32, busy, deadline })
    }
}

/// Outcome of servicing one round on one disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundOutcome {
    /// Number of block retrievals performed.
    pub blocks: u32,
    /// Total busy time for the round (seeks + rotations + settles +
    /// transfers), seconds.
    pub busy: Seconds,
    /// The round deadline `b / r_p`, seconds.
    pub deadline: Seconds,
}

impl RoundOutcome {
    /// Did the disk finish within the round?
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.busy <= self.deadline + 1e-9
    }

    /// Utilization of the round (busy / deadline).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.deadline <= 0.0 {
            return f64::INFINITY;
        }
        self.busy / self.deadline
    }
}

/// A homogeneous array of `d` disks.
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<Disk>,
    params: DiskParams,
    timing: TimingModel,
    block_bytes: u64,
    blocks_per_disk: u64,
}

impl DiskArray {
    /// Creates a healthy array of `d` disks with the given physical model
    /// and block size.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for zero disks or a block size
    /// exceeding disk capacity.
    pub fn new(
        d: u32,
        params: DiskParams,
        timing: TimingModel,
        block_bytes: u64,
    ) -> Result<Self, CmsError> {
        params.validate()?;
        if d == 0 {
            return Err(CmsError::invalid_params("array needs at least one disk"));
        }
        if block_bytes == 0 || block_bytes > params.capacity {
            return Err(CmsError::invalid_params(
                "block size must be in 1..=disk capacity",
            ));
        }
        let disks = (0..d)
            .map(|i| Disk {
                id: DiskId(i),
                status: DiskStatus::Healthy,
                slow_factor: 1,
                head: 0,
                busy_total: 0.0,
                blocks_served: 0,
            })
            .collect();
        Ok(DiskArray {
            disks,
            params,
            timing,
            block_bytes,
            blocks_per_disk: params.capacity / block_bytes,
        })
    }

    /// Number of disks in the array.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.disks.len() as u32
    }

    /// Is the array empty? (Never true for a constructed array.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Blocks each disk can hold at the configured block size.
    #[must_use]
    pub fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    /// The physical disk parameters.
    #[must_use]
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Marks `disk` failed. Idempotent; returns whether this call made
    /// the Healthy→Failed transition — the hook observability layers use
    /// to emit a failure event exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if the disk id is out of range —
    /// an injected fault must never be able to panic the server loop.
    pub fn fail(&mut self, disk: DiskId) -> Result<bool, CmsError> {
        let n = self.disks.len();
        match self.disks.get_mut(disk.idx()) {
            Some(d) => {
                // A transient outage escalating to a hard failure is a
                // transition too: the data is now actually gone.
                let transitioned = d.status != DiskStatus::Failed;
                d.status = DiskStatus::Failed;
                Ok(transitioned)
            }
            None => Err(CmsError::out_of_bounds(format!(
                "cannot fail disk {}: array has {n} disks",
                disk.idx()
            ))),
        }
    }

    /// Repairs `disk` (models the completed replacement/rebuild).
    /// Idempotent; returns whether this call made the Failed→Healthy
    /// transition.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if the disk id is out of range.
    pub fn repair(&mut self, disk: DiskId) -> Result<bool, CmsError> {
        let n = self.disks.len();
        match self.disks.get_mut(disk.idx()) {
            Some(d) => {
                let transitioned = d.status == DiskStatus::Failed;
                d.status = DiskStatus::Healthy;
                Ok(transitioned)
            }
            None => Err(CmsError::out_of_bounds(format!(
                "cannot repair disk {}: array has {n} disks",
                disk.idx()
            ))),
        }
    }

    /// Marks `disk` transiently unreachable: it refuses service but keeps
    /// its data, so no rebuild is needed when the window ends. Idempotent;
    /// returns whether this call made the Healthy→Transient transition.
    /// A disk that is already [`DiskStatus::Failed`] stays failed (a hard
    /// failure outranks a blip).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if the disk id is out of range.
    pub fn set_transient(&mut self, disk: DiskId) -> Result<bool, CmsError> {
        let n = self.disks.len();
        match self.disks.get_mut(disk.idx()) {
            Some(d) => {
                let transitioned = d.status == DiskStatus::Healthy;
                if transitioned {
                    d.status = DiskStatus::Transient;
                }
                Ok(transitioned)
            }
            None => Err(CmsError::out_of_bounds(format!(
                "cannot mark disk {} transient: array has {n} disks",
                disk.idx()
            ))),
        }
    }

    /// Ends a transient outage: the disk returns to service with its data
    /// intact. Idempotent; returns whether this call made the
    /// Transient→Healthy transition. A [`DiskStatus::Failed`] disk is
    /// left failed — only [`DiskArray::repair`] clears a hard failure.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if the disk id is out of range.
    pub fn clear_transient(&mut self, disk: DiskId) -> Result<bool, CmsError> {
        let n = self.disks.len();
        match self.disks.get_mut(disk.idx()) {
            Some(d) => {
                let transitioned = d.status == DiskStatus::Transient;
                if transitioned {
                    d.status = DiskStatus::Healthy;
                }
                Ok(transitioned)
            }
            None => Err(CmsError::out_of_bounds(format!(
                "cannot clear transient on disk {}: array has {n} disks",
                disk.idx()
            ))),
        }
    }

    /// Sets the disk's service-time multiplier (`1` = nominal). Returns
    /// the previous factor.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if the disk id is out of range,
    /// and [`CmsError::InvalidParams`] for a factor of zero.
    pub fn set_slow_factor(&mut self, disk: DiskId, factor: u32) -> Result<u32, CmsError> {
        if factor == 0 {
            return Err(CmsError::invalid_params("slow factor must be >= 1"));
        }
        let n = self.disks.len();
        match self.disks.get_mut(disk.idx()) {
            Some(d) => {
                let prev = d.slow_factor;
                d.slow_factor = factor;
                Ok(prev)
            }
            None => Err(CmsError::out_of_bounds(format!(
                "cannot set slow factor on disk {}: array has {n} disks",
                disk.idx()
            ))),
        }
    }

    /// The disk's current service-time multiplier (1 = nominal).
    /// Out-of-range ids read as nominal.
    #[must_use]
    pub fn slow_factor(&self, disk: DiskId) -> u32 {
        self.disks.get(disk.idx()).map_or(1, |d| d.slow_factor)
    }

    /// Health of a disk.
    #[must_use]
    pub fn status(&self, disk: DiskId) -> DiskStatus {
        self.disks[disk.idx()].status
    }

    /// Is `disk` currently failed? Out-of-range ids are a caller bug —
    /// routing code must never manufacture a disk id the array does not
    /// have — so they trip a debug assertion; release builds read them as
    /// healthy (an out-of-range disk can never serve a misrouted fetch
    /// anyway, so "healthy" is the non-escalating answer).
    #[must_use]
    pub fn is_failed(&self, disk: DiskId) -> bool {
        debug_assert!(
            disk.idx() < self.disks.len(),
            "is_failed({disk}) on a {}-disk array",
            self.disks.len()
        );
        self.disks
            .get(disk.idx())
            .is_some_and(|d| d.status == DiskStatus::Failed)
    }

    /// Is `disk` currently unable to serve (hard-failed or in a transient
    /// outage)? Same out-of-range contract as [`DiskArray::is_failed`].
    #[must_use]
    pub fn is_down(&self, disk: DiskId) -> bool {
        debug_assert!(
            disk.idx() < self.disks.len(),
            "is_down({disk}) on a {}-disk array",
            self.disks.len()
        );
        self.disks
            .get(disk.idx())
            .is_some_and(|d| d.status != DiskStatus::Healthy)
    }

    /// Is any disk failed? Returns the first failed disk, if any.
    #[must_use]
    pub fn failed_disk(&self) -> Option<DiskId> {
        self.disks
            .iter()
            .find(|d| d.status == DiskStatus::Failed)
            .map(|d| d.id)
    }

    /// Number of healthy disks.
    #[must_use]
    pub fn healthy_count(&self) -> u32 {
        self.disks
            .iter()
            .filter(|d| d.status == DiskStatus::Healthy)
            .count() as u32
    }

    /// Executes one round of requests on `disk`, in C-SCAN order, and
    /// accounts the time. `deadline` is the round duration `b / r_p`.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] if any request addresses a
    /// different disk or a block beyond the disk, and
    /// [`CmsError::InvalidParams`] if the disk is failed (a failed disk
    /// cannot serve; the caller must reroute to survivors).
    pub fn service_round(
        &mut self,
        disk: DiskId,
        requests: &[BlockRequest],
        deadline: Seconds,
    ) -> Result<RoundOutcome, CmsError> {
        let ctx = self.service_context();
        let state = self
            .disks
            .get_mut(disk.idx())
            .ok_or_else(|| CmsError::out_of_bounds(format!("{disk} out of range")))?;
        state.service_round(&ctx, requests, deadline)
    }

    /// The immutable parameters needed to service any disk of this array.
    #[must_use]
    pub fn service_context(&self) -> ServiceContext {
        ServiceContext {
            params: self.params,
            timing: self.timing,
            block_bytes: self.block_bytes,
            blocks_per_disk: self.blocks_per_disk,
        }
    }

    /// Splits the array into the shared [`ServiceContext`] and the
    /// per-disk mutable state, so callers can service disjoint disks
    /// concurrently (each worker gets `&mut Disk` slices plus a copy of
    /// the context) without aliasing `&mut self`.
    #[must_use]
    pub fn service_parts(&mut self) -> (ServiceContext, &mut [Disk]) {
        let ctx = self.service_context();
        (ctx, &mut self.disks)
    }

    /// Lifetime statistics: `(total busy seconds, total blocks served)`
    /// for a disk.
    #[must_use]
    pub fn lifetime_stats(&self, disk: DiskId) -> (Seconds, u64) {
        let d = &self.disks[disk.idx()];
        (d.busy_total, d.blocks_served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::units::{kib, mbps};
    use cms_core::{ClipId, ContinuityBudget};

    fn array(timing: TimingModel) -> DiskArray {
        DiskArray::new(4, DiskParams::sigmod96(), timing, kib(256)).unwrap()
    }

    fn reqs(disk: u32, blocks: &[u64]) -> Vec<BlockRequest> {
        blocks
            .iter()
            .map(|&b| BlockRequest::new(DiskId(disk), b, ClipId(0)))
            .collect()
    }

    #[test]
    fn construction_validates() {
        assert!(DiskArray::new(0, DiskParams::sigmod96(), TimingModel::worst_case(), 1024).is_err());
        assert!(DiskArray::new(
            4,
            DiskParams::sigmod96(),
            TimingModel::worst_case(),
            0
        )
        .is_err());
        let a = array(TimingModel::worst_case());
        assert_eq!(a.len(), 4);
        assert_eq!(a.blocks_per_disk(), (2u64 << 30) / kib(256));
    }

    #[test]
    fn q_admitted_load_meets_deadline_under_worst_case_model() {
        // The contract between Equation 1 and the execution engine: if we
        // send exactly q requests — even spread over the whole surface —
        // the round must finish in time under the worst-case model.
        let budget = ContinuityBudget::solve(&DiskParams::sigmod96(), kib(256), mbps(1.5)).unwrap();
        let mut a = array(TimingModel::worst_case());
        let span = a.blocks_per_disk();
        let spread = |n: u64| -> Vec<u64> { (0..n).map(|i| i * span / n).collect() };
        let out = a
            .service_round(DiskId(0), &reqs(0, &spread(u64::from(budget.q))), budget.round)
            .unwrap();
        assert_eq!(out.blocks, budget.q);
        assert!(
            out.met_deadline(),
            "q = {} admitted blocks must meet the deadline (busy {:.4}s vs {:.4}s)",
            budget.q,
            out.busy,
            out.deadline
        );
        // ... and q+1 full-surface requests miss it: Equation 1 is tight
        // (up to the ≤ 2-stroke seek slack).
        let mut a2 = array(TimingModel::worst_case());
        let out = a2
            .service_round(DiskId(0), &reqs(0, &spread(u64::from(budget.q) + 1)), budget.round)
            .unwrap();
        assert!(!out.met_deadline(), "q+1 must miss the deadline");
    }

    #[test]
    fn sampled_round_is_cheaper_for_spread_loads() {
        // For realistic spread loads the hashed-rotation savings dominate
        // the sqrt-seek overhead, so sampled rounds come in cheaper.
        let blocks: Vec<u64> = (0..20u64).map(|i| i * 409).collect();
        let mut worst = array(TimingModel::worst_case());
        let mut sampled = array(TimingModel::sampled());
        let ow = worst.service_round(DiskId(1), &reqs(1, &blocks), 1.4).unwrap();
        let os = sampled.service_round(DiskId(1), &reqs(1, &blocks), 1.4).unwrap();
        assert!(
            os.busy <= ow.busy + 1e-9,
            "sampled {:.4}s vs worst {:.4}s",
            os.busy,
            ow.busy
        );
    }

    #[test]
    fn failed_disk_rejects_service() {
        let mut a = array(TimingModel::worst_case());
        a.fail(DiskId(2)).unwrap();
        assert_eq!(a.status(DiskId(2)), DiskStatus::Failed);
        assert_eq!(a.failed_disk(), Some(DiskId(2)));
        assert_eq!(a.healthy_count(), 3);
        let err = a.service_round(DiskId(2), &reqs(2, &[1]), 1.0);
        assert!(err.is_err());
        a.repair(DiskId(2)).unwrap();
        assert_eq!(a.healthy_count(), 4);
        // Out-of-range ids surface as typed errors, never a panic.
        assert!(matches!(a.fail(DiskId(99)), Err(CmsError::OutOfBounds { .. })));
        assert!(matches!(a.repair(DiskId(99)), Err(CmsError::OutOfBounds { .. })));
        assert!(a.service_round(DiskId(2), &reqs(2, &[1]), 1.0).is_ok());
    }

    #[test]
    fn fail_and_repair_report_transitions_exactly_once() {
        let mut a = array(TimingModel::worst_case());
        assert!(!a.is_failed(DiskId(1)));
        assert!(a.fail(DiskId(1)).unwrap(), "first fail transitions");
        assert!(!a.fail(DiskId(1)).unwrap(), "second fail is idempotent");
        assert!(a.is_failed(DiskId(1)));
        assert!(a.repair(DiskId(1)).unwrap(), "first repair transitions");
        assert!(!a.repair(DiskId(1)).unwrap(), "second repair is idempotent");
        assert!(!a.is_failed(DiskId(1)));
    }

    #[test]
    #[should_panic(expected = "is_failed")]
    #[cfg(debug_assertions)]
    fn is_failed_out_of_range_is_a_caller_bug() {
        // Routing code must never manufacture a disk id the array lacks;
        // debug builds trip the assertion instead of reading "healthy".
        let a = array(TimingModel::worst_case());
        let _ = a.is_failed(DiskId(99));
    }

    #[test]
    fn transient_refuses_service_but_keeps_data() {
        let mut a = array(TimingModel::worst_case());
        assert!(a.set_transient(DiskId(1)).unwrap(), "first call transitions");
        assert!(!a.set_transient(DiskId(1)).unwrap(), "second call is idempotent");
        assert_eq!(a.status(DiskId(1)), DiskStatus::Transient);
        assert!(a.is_down(DiskId(1)));
        assert!(!a.is_failed(DiskId(1)), "transient is not a hard failure");
        assert_eq!(a.healthy_count(), 3);
        assert_eq!(a.failed_disk(), None, "no rebuild trigger for a blip");
        assert!(a.service_round(DiskId(1), &reqs(1, &[1]), 1.0).is_err());
        assert!(a.clear_transient(DiskId(1)).unwrap());
        assert!(!a.clear_transient(DiskId(1)).unwrap());
        assert!(a.service_round(DiskId(1), &reqs(1, &[1]), 1.0).is_ok());
        // A hard failure outranks a blip in both directions.
        a.fail(DiskId(2)).unwrap();
        assert!(!a.set_transient(DiskId(2)).unwrap());
        assert_eq!(a.status(DiskId(2)), DiskStatus::Failed);
        assert!(!a.clear_transient(DiskId(2)).unwrap());
        assert_eq!(a.status(DiskId(2)), DiskStatus::Failed);
        // ... and escalating a transient disk to failed is a transition.
        a.set_transient(DiskId(3)).unwrap();
        assert!(a.fail(DiskId(3)).unwrap(), "transient -> failed transitions");
        // Out-of-range ids surface as typed errors, never a panic.
        assert!(a.set_transient(DiskId(99)).is_err());
        assert!(a.clear_transient(DiskId(99)).is_err());
    }

    #[test]
    fn slow_factor_scales_busy_time() {
        let blocks: Vec<u64> = (0..8u64).map(|i| i * 1000).collect();
        let mut nominal = array(TimingModel::worst_case());
        let mut slow = array(TimingModel::worst_case());
        assert_eq!(slow.set_slow_factor(DiskId(0), 3).unwrap(), 1);
        assert_eq!(slow.slow_factor(DiskId(0)), 3);
        let on = nominal.service_round(DiskId(0), &reqs(0, &blocks), 10.0).unwrap();
        let os = slow.service_round(DiskId(0), &reqs(0, &blocks), 10.0).unwrap();
        assert!((os.busy - 3.0 * on.busy).abs() < 1e-9, "{} vs 3x{}", os.busy, on.busy);
        // Restoring the factor restores nominal service.
        assert_eq!(slow.set_slow_factor(DiskId(0), 1).unwrap(), 3);
        assert!(slow.set_slow_factor(DiskId(0), 0).is_err());
        assert!(slow.set_slow_factor(DiskId(99), 2).is_err());
        assert_eq!(slow.slow_factor(DiskId(1)), 1);
    }

    #[test]
    fn misrouted_and_oob_requests_are_rejected() {
        let mut a = array(TimingModel::worst_case());
        let err = a.service_round(DiskId(0), &reqs(1, &[0]), 1.0);
        assert!(matches!(err, Err(CmsError::OutOfBounds { .. })));
        let huge = a.blocks_per_disk();
        let err = a.service_round(DiskId(0), &reqs(0, &[huge]), 1.0);
        assert!(matches!(err, Err(CmsError::OutOfBounds { .. })));
    }

    #[test]
    fn head_position_persists_across_rounds() {
        let mut a = array(TimingModel::sampled());
        a.service_round(DiskId(0), &reqs(0, &[4000]), 10.0).unwrap();
        // Second round over a nearby block should be cheap: the head is
        // already deep into the surface.
        let near = a.service_round(DiskId(0), &reqs(0, &[4001]), 10.0).unwrap();
        let mut fresh = array(TimingModel::sampled());
        let far = fresh.service_round(DiskId(0), &reqs(0, &[4001]), 10.0).unwrap();
        assert!(near.busy < far.busy, "persisted head must shorten the seek");
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let mut a = array(TimingModel::worst_case());
        a.service_round(DiskId(3), &reqs(3, &[1, 2, 3]), 10.0).unwrap();
        a.service_round(DiskId(3), &reqs(3, &[4]), 10.0).unwrap();
        let (busy, blocks) = a.lifetime_stats(DiskId(3));
        assert_eq!(blocks, 4);
        assert!(busy > 0.0);
        let (b0, n0) = a.lifetime_stats(DiskId(0));
        assert_eq!((b0, n0), (0.0, 0));
    }

    #[test]
    fn empty_round_costs_nothing() {
        let mut a = array(TimingModel::worst_case());
        let out = a.service_round(DiskId(0), &[], 1.0).unwrap();
        assert_eq!(out.blocks, 0);
        assert_eq!(out.busy, 0.0);
        assert!(out.met_deadline());
    }
}
