//! Disk timing models.
//!
//! The admission-control math of the paper is deliberately *worst case*:
//! every block retrieval is charged a full rotational latency plus settle,
//! and each C-SCAN round pays two full-stroke seeks (Equation 1). The
//! simulator, however, also wants a *sampled* model to show how much slack
//! the worst-case accounting leaves on real hardware — that contrast is
//! one of the classic observations about deterministic CM admission
//! control.
//!
//! [`SeekModel`] implements the standard piecewise seek curve
//! `t(d) = t_min + c·√d` capped at the full-stroke time, which fits
//! measured 1990s drives well (Ruemmler & Wilkes, IEEE Computer 1994).

use cms_core::units::Seconds;
use cms_core::DiskParams;

/// Seek-time model as a function of cylinder distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeekModel {
    /// Linear in travel distance, calibrated so a full stroke costs
    /// `t_seek`. This is the model *consistent with Equation 1*: C-SCAN
    /// travels at most two strokes per round, so the summed per-block
    /// seeks never exceed the `2·t_seek` the admission math budgets.
    WorstCase,
    /// `t_min + c·√distance`, calibrated so distance 1 costs ≈ `t_min` and
    /// a full stroke costs `t_seek` — the measured shape of real drives
    /// (Ruemmler & Wilkes 1994). Note this can exceed the linear model for
    /// short hops (head settle dominates), so it is *not* bounded by
    /// Equation 1's per-round seek budget; it exists for utilization
    /// realism, not for guarantees.
    SqrtCurve {
        /// Cost of a single-track seek, seconds.
        min_seek: Seconds,
        /// Number of cylinders on the disk (full stroke = `cylinders − 1`).
        cylinders: u32,
    },
}

impl SeekModel {
    /// A sqrt curve with typical mid-90s parameters: 1 ms single-track
    /// seek over 2000 cylinders.
    #[must_use]
    pub fn typical_sqrt() -> Self {
        SeekModel::SqrtCurve { min_seek: 0.001, cylinders: 2000 }
    }

    /// Seek time for a move of `distance` cylinders on a disk with the
    /// given worst-case full-stroke seek.
    #[must_use]
    pub fn seek_time(&self, params: &DiskParams, distance: u32) -> Seconds {
        match *self {
            SeekModel::WorstCase => {
                // Linear: distance/full_stroke of the worst-case seek. Uses
                // a nominal 2000-cylinder geometry, matching
                // `TimingModel::worst_case`.
                params.seek_worst * f64::from(distance) / 1999.0
            }
            SeekModel::SqrtCurve { min_seek, cylinders } => {
                if distance == 0 {
                    return 0.0;
                }
                let full = f64::from(cylinders.saturating_sub(1).max(1));
                // Solve t(d) = min + c·√d with t(full) = seek_worst.
                let c = (params.seek_worst - min_seek) / full.sqrt();
                (min_seek + c * f64::from(distance).sqrt()).min(params.seek_worst)
            }
        }
    }
}

/// Rotational-latency model for positioning onto a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationModel {
    /// A full revolution per access (Equation 1's charge).
    WorstCase,
    /// Expected half revolution per access.
    Expected,
    /// Deterministic pseudo-random fraction of a revolution derived from
    /// the block number — reproducible "realistic" latencies.
    Hashed,
}

impl RotationModel {
    /// Rotational latency for accessing `block_no`.
    #[must_use]
    pub fn latency(&self, params: &DiskParams, block_no: u64) -> Seconds {
        match self {
            RotationModel::WorstCase => params.rot_worst,
            RotationModel::Expected => params.rot_worst / 2.0,
            RotationModel::Hashed => {
                let mut x = block_no.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5;
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 33;
                let frac = (x % 10_000) as f64 / 10_000.0;
                params.rot_worst * frac
            }
        }
    }
}

/// A complete per-disk timing model: seek + rotation policies over a disk
/// geometry, optionally with zoned-bit recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Seek policy.
    pub seek: SeekModel,
    /// Rotation policy.
    pub rotation: RotationModel,
    /// Number of cylinders used to map block numbers to head positions.
    pub cylinders: u32,
    /// Zoned-bit recording: outer-track/inner-track transfer-rate ratio
    /// (`None` = constant inner-track rate everywhere, the paper's
    /// conservative assumption; real mid-90s drives ran ≈ 1.5–1.7×
    /// faster on the outermost zone). Cylinder 0 is the outermost.
    pub zbr_ratio: Option<f64>,
}

impl TimingModel {
    /// The model the paper's Equation 1 assumes: worst-case everything.
    #[must_use]
    pub fn worst_case() -> Self {
        TimingModel {
            seek: SeekModel::WorstCase,
            rotation: RotationModel::WorstCase,
            cylinders: 2000,
            zbr_ratio: None,
        }
    }

    /// A sampled model for realistic simulation.
    #[must_use]
    pub fn sampled() -> Self {
        TimingModel {
            seek: SeekModel::typical_sqrt(),
            rotation: RotationModel::Hashed,
            cylinders: 2000,
            zbr_ratio: None,
        }
    }

    /// A sampled model with zoned-bit recording (outer tracks 1.6× the
    /// inner-track rate, linearly interpolated by cylinder).
    #[must_use]
    pub fn zoned() -> Self {
        TimingModel { zbr_ratio: Some(1.6), ..Self::sampled() }
    }

    /// Effective transfer rate at `cylinder` (bits/s). With zoning the
    /// rate interpolates from `ratio × r_d` at cylinder 0 (outer) down to
    /// the inner-track `r_d` at the last cylinder — so the paper's
    /// inner-track accounting is always a lower bound.
    #[must_use]
    pub fn transfer_rate_at(&self, params: &DiskParams, cylinder: u32) -> f64 {
        match self.zbr_ratio {
            None => params.transfer_rate,
            Some(ratio) => {
                let span = f64::from(self.cylinders.saturating_sub(1).max(1));
                let frac = f64::from(cylinder.min(self.cylinders - 1)) / span;
                params.transfer_rate * (ratio + (1.0 - ratio) * frac)
            }
        }
    }

    /// Maps a block number to a cylinder, assuming blocks are laid out
    /// linearly across the surface.
    #[must_use]
    pub fn cylinder_of(&self, block_no: u64, blocks_per_disk: u64) -> u32 {
        if blocks_per_disk == 0 {
            return 0;
        }
        let idx = block_no % blocks_per_disk;
        ((idx * u64::from(self.cylinders)) / blocks_per_disk) as u32
    }

    /// The per-block cost components that do not depend on *which* block
    /// is served — `(rotation, settle, transfer)` — when the model makes
    /// all three constant: a [`RotationModel::WorstCase`] or
    /// [`RotationModel::Expected`] rotation charge and no zoned-bit
    /// recording (`zbr_ratio == None`, so every cylinder transfers at the
    /// inner-track rate). Returns `None` when any component varies per
    /// block ([`RotationModel::Hashed`] or zoning), in which case callers
    /// must price each block with [`TimingModel::block_time`].
    ///
    /// Service loops use this to hoist the constant tail out of the
    /// per-block accounting: `seek + rot + settle + transfer` summed
    /// left-to-right is the *same expression* `block_time` evaluates, so
    /// the busy-time result is bit-identical — only the dead per-block
    /// work (zone lookup, transfer division, rotation match) disappears.
    #[must_use]
    // lint: hot
    pub fn constant_block_tail(
        &self,
        params: &DiskParams,
        block_bytes: u64,
    ) -> Option<(Seconds, Seconds, Seconds)> {
        if self.zbr_ratio.is_some() {
            return None;
        }
        let rot = match self.rotation {
            RotationModel::WorstCase => params.rot_worst,
            RotationModel::Expected => params.rot_worst / 2.0,
            RotationModel::Hashed => return None,
        };
        let transfer = cms_core::units::transfer_time(block_bytes, params.transfer_rate);
        Some((rot, params.settle, transfer))
    }

    /// Time to service one block at `block_no` after moving the head
    /// `distance` cylinders: seek + rotation + settle + transfer (at the
    /// destination cylinder's zone rate).
    #[must_use]
    pub fn block_time(
        &self,
        params: &DiskParams,
        distance: u32,
        block_no: u64,
        block_bytes: u64,
    ) -> Seconds {
        // The destination cylinder is unknown here for zoning purposes
        // only through block_no; callers map block → cylinder with
        // `cylinder_of`, which this reproduces for a nominal full-surface
        // layout.
        let cylinder = self.cylinder_of(block_no, u64::from(self.cylinders).max(1) * 4);
        self.seek.seek_time(params, distance)
            + self.rotation.latency(params, block_no)
            + params.settle
            + cms_core::units::transfer_time(block_bytes, self.transfer_rate_at(params, cylinder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DiskParams {
        DiskParams::sigmod96()
    }

    #[test]
    fn worst_case_seek_is_linear_in_travel() {
        let m = SeekModel::WorstCase;
        assert_eq!(m.seek_time(&params(), 0), 0.0);
        assert!((m.seek_time(&params(), 1999) - params().seek_worst).abs() < 1e-12);
        // Linearity means a C-SCAN round's summed seeks stay within the
        // 2·t_seek budget of Equation 1: two strokes in pieces cost the
        // same as two strokes whole.
        let half = m.seek_time(&params(), 1000) + m.seek_time(&params(), 999);
        assert!((half - params().seek_worst).abs() < 1e-9);
    }

    #[test]
    fn sqrt_seek_is_monotone_and_bounded() {
        let m = SeekModel::typical_sqrt();
        let p = params();
        let mut last = 0.0;
        for d in [0u32, 1, 10, 100, 500, 1000, 1999] {
            let t = m.seek_time(&p, d);
            assert!(t >= last, "seek must be monotone in distance");
            assert!(t <= p.seek_worst + 1e-12, "seek must not exceed full stroke");
            last = t;
        }
        // Full stroke hits exactly the worst case.
        assert!((m.seek_time(&p, 1999) - p.seek_worst).abs() < 1e-9);
    }

    #[test]
    fn rotation_models_bound_each_other() {
        let p = params();
        for blk in [0u64, 7, 12345] {
            let worst = RotationModel::WorstCase.latency(&p, blk);
            let expected = RotationModel::Expected.latency(&p, blk);
            let hashed = RotationModel::Hashed.latency(&p, blk);
            assert!(expected <= worst);
            assert!(hashed <= worst);
            assert!(hashed >= 0.0);
        }
    }

    #[test]
    fn hashed_rotation_is_deterministic() {
        let p = params();
        assert_eq!(
            RotationModel::Hashed.latency(&p, 99),
            RotationModel::Hashed.latency(&p, 99)
        );
        assert_ne!(
            RotationModel::Hashed.latency(&p, 99),
            RotationModel::Hashed.latency(&p, 100)
        );
    }

    #[test]
    fn cylinder_mapping_spans_surface() {
        let m = TimingModel::worst_case();
        let bpd = 8192u64;
        assert_eq!(m.cylinder_of(0, bpd), 0);
        let last = m.cylinder_of(bpd - 1, bpd);
        assert!(last >= m.cylinders - 2, "last block near last cylinder, got {last}");
        // Wraps for out-of-range block numbers rather than panicking.
        assert_eq!(m.cylinder_of(bpd, bpd), 0);
    }

    #[test]
    fn block_time_components_add_up() {
        let p = params();
        let m = TimingModel::worst_case();
        let t = m.block_time(&p, 1999, 0, 256 * 1024);
        let expect = p.seek_worst
            + p.rot_worst
            + p.settle
            + cms_core::units::transfer_time(256 * 1024, p.transfer_rate);
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn zoned_rate_interpolates_and_bounds() {
        let p = params();
        let m = TimingModel::zoned();
        // Outer cylinder: 1.6× inner rate; inner: exactly r_d.
        assert!((m.transfer_rate_at(&p, 0) - 1.6 * p.transfer_rate).abs() < 1.0);
        assert!((m.transfer_rate_at(&p, 1999) - p.transfer_rate).abs() < 1.0);
        // Monotone decreasing outer → inner.
        let mut last = f64::INFINITY;
        for cyl in [0u32, 500, 1000, 1500, 1999] {
            let r = m.transfer_rate_at(&p, cyl);
            assert!(r <= last);
            last = r;
        }
        // The paper's constant inner-track model is the lower bound.
        let flat = TimingModel::sampled();
        for cyl in [0u32, 777, 1999] {
            assert!(m.transfer_rate_at(&p, cyl) >= flat.transfer_rate_at(&p, cyl) - 1.0);
        }
    }

    #[test]
    fn zoned_blocks_never_slower_than_inner_track_model() {
        let p = params();
        let zoned = TimingModel::zoned();
        let flat = TimingModel::sampled();
        for blk in (0..8000u64).step_by(997) {
            let tz = zoned.block_time(&p, 100, blk, 256 * 1024);
            let tf = flat.block_time(&p, 100, blk, 256 * 1024);
            assert!(tz <= tf + 1e-12, "block {blk}: zoned {tz} vs flat {tf}");
        }
    }

    #[test]
    fn sampled_rotation_beats_worst_case_on_average() {
        let p = params();
        let n = 1000u64;
        let avg: f64 = (0..n)
            .map(|blk| RotationModel::Hashed.latency(&p, blk))
            .sum::<f64>()
            / n as f64;
        assert!(
            avg < 0.75 * p.rot_worst,
            "hashed rotation should average well below worst case, got {avg}"
        );
    }
}
