//! C-SCAN ordering of a round's block requests.
//!
//! Under C-SCAN the head services requests in ascending cylinder order; on
//! reaching the highest request it returns to the lowest outstanding one
//! and sweeps up again. Within a single round, requests are known up
//! front, so the order is: all requests at or above the head's starting
//! position (ascending), then a wrap, then the rest (ascending). The head
//! therefore "travels across the disk at most twice" — exactly the premise
//! of the paper's Equation 1, which charges `2·t_seek` per round.

use cms_core::{ClipId, DiskId};

/// One block retrieval request for a specific disk in the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// Disk the block lives on.
    pub disk: DiskId,
    /// Block number on that disk.
    pub block_no: u64,
    /// The clip the retrieval serves (parity reads use the clip they
    /// reconstruct for).
    pub clip: ClipId,
    /// `true` when this is an extra retrieval triggered by a disk failure
    /// (a surviving data/parity block of some group under reconstruction).
    pub reconstruction: bool,
}

impl BlockRequest {
    /// A normal (non-reconstruction) request.
    #[must_use]
    pub fn new(disk: DiskId, block_no: u64, clip: ClipId) -> Self {
        BlockRequest { disk, block_no, clip, reconstruction: false }
    }

    /// A reconstruction request.
    #[must_use]
    pub fn reconstruction(disk: DiskId, block_no: u64, clip: ClipId) -> Self {
        BlockRequest { disk, block_no, clip, reconstruction: true }
    }
}

/// Orders the indices of `cylinders` into C-SCAN service order starting
/// from `head`: ascending cylinders ≥ `head` first, then ascending
/// cylinders < `head`.
///
/// Returns indices into the input slice. Stable for equal cylinders (FIFO
/// among same-cylinder requests).
#[must_use]
pub fn sweep_order(cylinders: &[u32], head: u32) -> Vec<usize> {
    let mut out = Vec::with_capacity(cylinders.len());
    sweep_order_into(cylinders, head, &mut out);
    out
}

/// Allocation-free [`sweep_order`]: clears and fills `out` with the
/// C-SCAN service order, reusing its capacity. This is the per-disk
/// per-round hot path (DESIGN.md §7): in steady state the buffer reaches
/// the round budget `q` once and never reallocates again.
///
/// The sweep halves are sorted unstably on the composite key
/// `(cylinder, index)` — unique per element, so the result is fully
/// deterministic and identical to a stable sort on the cylinder alone,
/// without the merge-buffer allocation `slice::sort` performs.
// lint: hot
pub fn sweep_order_into(cylinders: &[u32], head: u32, out: &mut Vec<usize>) {
    out.clear();
    out.extend((0..cylinders.len()).filter(|&i| cylinders[i] >= head));
    let split = out.len();
    out.extend((0..cylinders.len()).filter(|&i| cylinders[i] < head));
    out[..split].sort_unstable_by_key(|&i| (cylinders[i], i));
    out[split..].sort_unstable_by_key(|&i| (cylinders[i], i));
}

/// Total head travel (in cylinders) of a C-SCAN pass over `cylinders`
/// starting at `head`, counting the wrap-around as a seek from the top of
/// the first sweep to the bottom of the second.
#[must_use]
pub fn sweep_travel(cylinders: &[u32], head: u32) -> u64 {
    let order = sweep_order(cylinders, head);
    let mut pos = head;
    let mut travel: u64 = 0;
    for &i in &order {
        let c = cylinders[i];
        travel += u64::from(pos.abs_diff(c));
        pos = c;
    }
    travel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_ascending_from_head() {
        let cyl = [50u32, 10, 90, 30, 70];
        let order = sweep_order(&cyl, 40);
        let served: Vec<u32> = order.iter().map(|&i| cyl[i]).collect();
        assert_eq!(served, vec![50, 70, 90, 10, 30]);
    }

    #[test]
    fn head_at_zero_is_one_sweep() {
        let cyl = [5u32, 3, 9, 1];
        let order = sweep_order(&cyl, 0);
        let served: Vec<u32> = order.iter().map(|&i| cyl[i]).collect();
        assert_eq!(served, vec![1, 3, 5, 9]);
    }

    #[test]
    fn empty_and_single_are_trivial() {
        assert!(sweep_order(&[], 100).is_empty());
        assert_eq!(sweep_order(&[42], 100), vec![0]);
    }

    #[test]
    fn equal_cylinders_keep_fifo_order() {
        let cyl = [7u32, 7, 7];
        assert_eq!(sweep_order(&cyl, 0), vec![0, 1, 2]);
        assert_eq!(sweep_order(&cyl, 8), vec![0, 1, 2]);
    }

    #[test]
    fn travel_at_most_two_strokes() {
        // The Equation-1 premise: C-SCAN travel never exceeds two full
        // strokes of the surface.
        let cyl: Vec<u32> = (0..100).map(|i| (i * 37) % 2000).collect();
        for head in [0u32, 500, 1999] {
            let travel = sweep_travel(&cyl, head);
            assert!(
                travel <= 2 * 1999,
                "travel {travel} exceeds two strokes from head {head}"
            );
        }
    }

    #[test]
    fn sweep_order_into_matches_allocating_form_and_reuses_capacity() {
        // Pseudo-random cylinder sets with deliberate duplicates, swept
        // from heads on both sides of the data.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32 % 512
        };
        let mut buf = Vec::new();
        for len in [0usize, 1, 2, 7, 31, 100] {
            let cyl: Vec<u32> = (0..len).map(|_| next()).collect();
            for head in [0u32, 128, 511, 600] {
                sweep_order_into(&cyl, head, &mut buf);
                assert_eq!(buf, sweep_order(&cyl, head), "len {len}, head {head}");
            }
        }
        // Steady state: a second fill of the same size must not grow the
        // buffer.
        let cyl: Vec<u32> = (0..64).map(|_| next()).collect();
        sweep_order_into(&cyl, 100, &mut buf);
        let cap = buf.capacity();
        sweep_order_into(&cyl, 300, &mut buf);
        assert_eq!(buf.capacity(), cap, "reused fill must not reallocate");
    }

    #[test]
    fn request_constructors() {
        let r = BlockRequest::new(DiskId(2), 77, ClipId(5));
        assert!(!r.reconstruction);
        let r = BlockRequest::reconstruction(DiskId(2), 77, ClipId(5));
        assert!(r.reconstruction);
    }
}
