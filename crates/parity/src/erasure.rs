//! The [`ErasureCodec`] trait: `k` data shards encode to `m` redundancy
//! shards; any `≤ m` erasures reconstruct from any `k` survivors.
//!
//! Two implementations:
//!
//! * [`XorCodec`] — the paper's single-parity XOR (`m = 1`), delegating
//!   to the original [`crate::codec`] kernels so its output is
//!   byte-identical to the pre-trait paths;
//! * [`RsCodec`] — a GF(256) Reed–Solomon code over a Cauchy encode
//!   matrix (every square submatrix of a Cauchy matrix is invertible, so
//!   the code is MDS by construction: any `k` of the `k + m` shards
//!   determine the rest). Decode solves the survivor system by Gaussian
//!   elimination over GF(256).
//!
//! Shard indices are `0..k` for data and `k..k + m` for redundancy,
//! matching the layout crate's group order (data members first, then the
//! group's parity locations).

use crate::block::Block;
use crate::codec;
use crate::gf256;
use std::fmt;

/// Errors from erasure-codec operations. Every misuse — including more
/// erasures than the code tolerates — surfaces here; codec methods never
/// panic on adversarial shard sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// More shards are missing than the code can tolerate (fewer than `k`
    /// distinct survivors were supplied).
    TooManyErasures {
        /// Distinct survivors supplied.
        survivors: usize,
        /// Data shards `k` required to decode.
        needed: usize,
    },
    /// Supplied blocks have differing lengths.
    LengthMismatch {
        /// Length of the first block.
        expected: usize,
        /// The offending length.
        got: usize,
    },
    /// A shard index is out of `0..k + m`, duplicated, or the missing
    /// shard also appears among the survivors.
    BadShardIndex {
        /// The offending index.
        index: usize,
        /// Total shards `k + m`.
        shards: usize,
    },
    /// The shard-count geometry is invalid (`k = 0`, `m = 0`, or
    /// `k + m > 256`, the GF(256) limit), or an output slice has the
    /// wrong length.
    BadGeometry {
        /// Human-readable description.
        reason: &'static str,
    },
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::TooManyErasures { survivors, needed } => {
                write!(f, "unrecoverable: {survivors} survivors, {needed} needed")
            }
            ErasureError::LengthMismatch { expected, got } => {
                write!(f, "shard length mismatch: expected {expected}, got {got}")
            }
            ErasureError::BadShardIndex { index, shards } => {
                write!(f, "bad shard index {index} (group has {shards} shards)")
            }
            ErasureError::BadGeometry { reason } => write!(f, "bad codec geometry: {reason}"),
        }
    }
}

impl std::error::Error for ErasureError {}

impl From<codec::ParityError> for ErasureError {
    fn from(e: codec::ParityError) -> Self {
        match e {
            codec::ParityError::GroupTooSmall { got } => ErasureError::TooManyErasures {
                survivors: got,
                needed: got + 1,
            },
            codec::ParityError::LengthMismatch { expected, got } => {
                ErasureError::LengthMismatch { expected, got }
            }
        }
    }
}

/// An erasure code over `k` data and `m` redundancy shards.
///
/// Methods take `&mut self` so implementations can reuse internal decode
/// scratch (matrix, coefficient vectors) across calls — the hot variants
/// are allocation-free after first use.
pub trait ErasureCodec {
    /// Data shards `k`.
    fn data_shards(&self) -> usize;

    /// Redundancy shards `m` (the erasure tolerance).
    fn parity_shards(&self) -> usize;

    /// Encodes `k` data shards into `m` redundancy shards, writing into
    /// `parity` (which must hold exactly `m` blocks; their buffers are
    /// reused).
    ///
    /// # Errors
    ///
    /// [`ErasureError`] on shard-count or length mismatch.
    fn encode_into(&mut self, data: &[&Block], parity: &mut [Block]) -> Result<(), ErasureError>;

    /// Reconstructs the shard at index `missing` (`0..k + m`) from any
    /// `≥ k` surviving `(shard index, block)` pairs, writing into `out`
    /// (buffer reused).
    ///
    /// # Errors
    ///
    /// [`ErasureError::TooManyErasures`] when fewer than `k` distinct
    /// survivors are supplied; other variants on index/length misuse.
    /// Never panics.
    fn reconstruct_into(
        &mut self,
        present: &[(usize, &Block)],
        missing: usize,
        out: &mut Block,
    ) -> Result<(), ErasureError>;

    /// Allocating convenience wrapper over [`ErasureCodec::encode_into`].
    ///
    /// # Errors
    ///
    /// As for [`ErasureCodec::encode_into`].
    fn encode(&mut self, data: &[&Block]) -> Result<Vec<Block>, ErasureError> {
        let mut parity = vec![Block::default(); self.parity_shards()];
        self.encode_into(data, &mut parity)?;
        Ok(parity)
    }

    /// Allocating convenience wrapper over
    /// [`ErasureCodec::reconstruct_into`].
    ///
    /// # Errors
    ///
    /// As for [`ErasureCodec::reconstruct_into`].
    fn reconstruct(
        &mut self,
        present: &[(usize, &Block)],
        missing: usize,
    ) -> Result<Block, ErasureError> {
        let mut out = Block::default();
        self.reconstruct_into(present, missing, &mut out)?;
        Ok(out)
    }
}

/// The paper's XOR parity behind the trait: `m = 1`, parity is the XOR of
/// the `k` data shards, and any single erasure is the XOR of the `k`
/// survivors. Delegates to the original [`crate::codec`] kernels, so the
/// byte stream it produces is identical to the pre-trait implementation.
#[derive(Debug, Clone)]
pub struct XorCodec {
    k: usize,
}

impl XorCodec {
    /// A single-parity XOR code over `k ≥ 1` data shards.
    ///
    /// # Errors
    ///
    /// [`ErasureError::BadGeometry`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self, ErasureError> {
        if k == 0 {
            return Err(ErasureError::BadGeometry { reason: "k must be >= 1" });
        }
        Ok(XorCodec { k })
    }
}

impl ErasureCodec for XorCodec {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        1
    }

    fn encode_into(&mut self, data: &[&Block], parity: &mut [Block]) -> Result<(), ErasureError> {
        if data.len() != self.k {
            return Err(ErasureError::BadGeometry { reason: "data shard count != k" });
        }
        if parity.len() != 1 {
            return Err(ErasureError::BadGeometry { reason: "parity shard count != m" });
        }
        codec::parity_into(&mut parity[0], data.iter().copied())?;
        Ok(())
    }

    fn reconstruct_into(
        &mut self,
        present: &[(usize, &Block)],
        missing: usize,
        out: &mut Block,
    ) -> Result<(), ErasureError> {
        let shards = self.k + 1;
        if missing >= shards {
            return Err(ErasureError::BadShardIndex { index: missing, shards });
        }
        // All k survivors (data or parity — XOR doesn't care) must be
        // present, distinct, and not claim the missing slot.
        let mut seen = [false; 257];
        let mut distinct = 0usize;
        for &(idx, _) in present {
            if idx >= shards || idx == missing {
                return Err(ErasureError::BadShardIndex { index: idx, shards });
            }
            if !seen[idx] {
                seen[idx] = true;
                distinct += 1;
            }
        }
        if distinct < self.k {
            return Err(ErasureError::TooManyErasures { survivors: distinct, needed: self.k });
        }
        codec::reconstruct_into(out, present.iter().map(|&(_, b)| b))?;
        Ok(())
    }
}

/// GF(256) Reed–Solomon over a Cauchy encode matrix: data shards are
/// indexed by field points `0..k`, redundancy shards by `k..k + m`, and
/// `cauchy[r][c] = (x_r + y_c)⁻¹` with `x_r = k + r`, `y_c = c`. Distinct
/// points keep every square submatrix invertible, so any `k` survivors
/// decode any shard.
#[derive(Debug, Clone)]
pub struct RsCodec {
    k: usize,
    m: usize,
    /// `m × k` encode matrix, row-major.
    cauchy: Vec<u8>,
    /// Decode scratch: `k × 2k` augmented matrix `[M | I]`.
    mat: Vec<u8>,
    /// Decode scratch: the `(position, shard index)` pairs of the
    /// survivors chosen for the solve, in enumeration order.
    sel: Vec<(usize, usize)>,
    /// Decode scratch: the coefficient of each chosen survivor in the
    /// reconstruction.
    coeff: Vec<u8>,
}

impl RsCodec {
    /// A Reed–Solomon code over `k ≥ 1` data and `m ≥ 1` redundancy
    /// shards with `k + m ≤ 256`.
    ///
    /// # Errors
    ///
    /// [`ErasureError::BadGeometry`] outside those bounds.
    pub fn new(k: usize, m: usize) -> Result<Self, ErasureError> {
        if k == 0 || m == 0 {
            return Err(ErasureError::BadGeometry { reason: "k and m must be >= 1" });
        }
        if k + m > 256 {
            return Err(ErasureError::BadGeometry { reason: "k + m must be <= 256" });
        }
        // lint: allow(P003) one-time codec construction; callers cache the codec across rounds
        let mut cauchy = vec![0u8; m * k];
        for r in 0..m {
            for c in 0..k {
                // x_r = k + r and y_c = c are distinct in GF(256) since
                // k + m ≤ 256, so the sum (XOR of distinct values) is
                // nonzero and invertible.
                cauchy[r * k + c] = gf256::inv((k + r) as u8 ^ c as u8);
            }
        }
        Ok(RsCodec {
            k,
            m,
            cauchy,
            // lint: allow(P003) one-time codec construction; callers cache the codec across rounds
            mat: vec![0u8; k * 2 * k],
            sel: Vec::with_capacity(k),
            // lint: allow(P003) one-time codec construction; callers cache the codec across rounds
            coeff: vec![0u8; k],
        })
    }

    /// Solves for the reconstruction coefficients of `missing` over the
    /// first `k` distinct survivor shard `indices`, leaving the chosen
    /// `(position, shard index)` order in `self.sel` and the per-survivor
    /// coefficients in `self.coeff`.
    fn solve_coefficients(
        &mut self,
        indices: impl Iterator<Item = usize>,
        missing: usize,
    ) -> Result<(), ErasureError> {
        let (k, shards) = (self.k, self.k + self.m);
        if missing >= shards {
            return Err(ErasureError::BadShardIndex { index: missing, shards });
        }
        self.sel.clear();
        let mut seen = [false; 257];
        for (pos, idx) in indices.enumerate() {
            if idx >= shards || idx == missing {
                return Err(ErasureError::BadShardIndex { index: idx, shards });
            }
            if !seen[idx] && self.sel.len() < k {
                seen[idx] = true;
                self.sel.push((pos, idx));
            }
        }
        if self.sel.len() < k {
            return Err(ErasureError::TooManyErasures { survivors: self.sel.len(), needed: k });
        }

        // Build the augmented system [M | I]: row j expresses survivor j
        // as a linear combination of the data shards.
        let width = 2 * k;
        self.mat.iter_mut().for_each(|x| *x = 0);
        for (j, &(_, idx)) in self.sel.iter().enumerate() {
            let row = &mut self.mat[j * width..(j + 1) * width];
            if idx < k {
                row[idx] = 1;
            } else {
                row[..k].copy_from_slice(&self.cauchy[(idx - k) * k..(idx - k + 1) * k]);
            }
            row[k + j] = 1;
        }

        // Gauss–Jordan over GF(256): reduce [M | I] to [I | M⁻¹].
        for col in 0..k {
            let Some(pivot) = (col..k).find(|&r| self.mat[r * width + col] != 0) else {
                // Unreachable for a Cauchy system with distinct indices,
                // but a typed error beats a panic on adversarial input.
                return Err(ErasureError::BadGeometry { reason: "singular survivor system" });
            };
            if pivot != col {
                for x in 0..width {
                    self.mat.swap(pivot * width + x, col * width + x);
                }
            }
            let inv_p = gf256::inv(self.mat[col * width + col]);
            for x in 0..width {
                self.mat[col * width + x] = gf256::mul(self.mat[col * width + x], inv_p);
            }
            for r in 0..k {
                if r == col {
                    continue;
                }
                let factor = self.mat[r * width + col];
                if factor == 0 {
                    continue;
                }
                for x in 0..width {
                    let v = gf256::mul(factor, self.mat[col * width + x]);
                    self.mat[r * width + x] ^= v;
                }
            }
        }

        // Coefficients of `missing` over the chosen survivors: row
        // `missing` of M⁻¹ for a data shard; for a redundancy shard,
        // its Cauchy row folded through M⁻¹.
        if missing < k {
            for j in 0..k {
                self.coeff[j] = self.mat[missing * width + k + j];
            }
        } else {
            let crow = &self.cauchy[(missing - k) * k..(missing - k + 1) * k];
            for j in 0..k {
                let mut acc = 0u8;
                for (c, &w) in crow.iter().enumerate() {
                    acc ^= gf256::mul(w, self.mat[c * width + k + j]);
                }
                self.coeff[j] = acc;
            }
        }
        Ok(())
    }
}

impl ErasureCodec for RsCodec {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        self.m
    }

    fn encode_into(&mut self, data: &[&Block], parity: &mut [Block]) -> Result<(), ErasureError> {
        if data.len() != self.k {
            return Err(ErasureError::BadGeometry { reason: "data shard count != k" });
        }
        if parity.len() != self.m {
            return Err(ErasureError::BadGeometry { reason: "parity shard count != m" });
        }
        let len = data[0].len();
        for d in data {
            if d.len() != len {
                return Err(ErasureError::LengthMismatch { expected: len, got: d.len() });
            }
        }
        for (r, p) in parity.iter_mut().enumerate() {
            p.fill_zero(len);
            for (c, d) in data.iter().enumerate() {
                // lint: hot
                gf256::mul_slice_xor(p.bytes_mut(), d.bytes(), self.cauchy[r * self.k + c]);
            }
        }
        Ok(())
    }

    fn reconstruct_into(
        &mut self,
        present: &[(usize, &Block)],
        missing: usize,
        out: &mut Block,
    ) -> Result<(), ErasureError> {
        self.solve_coefficients(present.iter().map(|&(idx, _)| idx), missing)?;
        let len = present[self.sel[0].0].1.len();
        for &(pos, _) in &self.sel {
            if present[pos].1.len() != len {
                return Err(ErasureError::LengthMismatch {
                    expected: len,
                    got: present[pos].1.len(),
                });
            }
        }
        out.fill_zero(len);
        for (j, &(pos, _)) in self.sel.iter().enumerate() {
            // lint: hot
            gf256::mul_slice_xor(out.bytes_mut(), present[pos].1.bytes(), self.coeff[j]);
        }
        Ok(())
    }
}

impl RsCodec {
    /// [`ErasureCodec::encode_into`] over one contiguous `k + m` shard
    /// slice (data first, then redundancy, buffers reused). Lets callers
    /// that pool all shards in a single `Vec<Block>` encode without
    /// building a `&[&Block]` table — fully allocation-free.
    ///
    /// # Errors
    ///
    /// [`ErasureError`] on slice-length or shard-length mismatch.
    pub fn encode_within(&mut self, shards: &mut [Block]) -> Result<(), ErasureError> {
        if shards.len() != self.k + self.m {
            return Err(ErasureError::BadGeometry { reason: "shard slice length != k + m" });
        }
        let (data, parity) = shards.split_at_mut(self.k);
        let len = data[0].len();
        for d in data.iter() {
            if d.len() != len {
                return Err(ErasureError::LengthMismatch { expected: len, got: d.len() });
            }
        }
        for (r, p) in parity.iter_mut().enumerate() {
            p.fill_zero(len);
            for (c, d) in data.iter().enumerate() {
                // lint: hot
                gf256::mul_slice_xor(p.bytes_mut(), d.bytes(), self.cauchy[r * self.k + c]);
            }
        }
        Ok(())
    }

    /// [`ErasureCodec::reconstruct_into`] over one contiguous `k + m`
    /// shard slice: rebuilds shard `missing` from the other entries (the
    /// content at `shards[missing]` is ignored). The allocation-free twin
    /// of the pair-based path for callers that pool all shards.
    ///
    /// # Errors
    ///
    /// As for [`ErasureCodec::reconstruct_into`], plus
    /// [`ErasureError::BadGeometry`] on a slice-length mismatch.
    pub fn reconstruct_within(
        &mut self,
        shards: &[Block],
        missing: usize,
        out: &mut Block,
    ) -> Result<(), ErasureError> {
        if shards.len() != self.k + self.m {
            return Err(ErasureError::BadGeometry { reason: "shard slice length != k + m" });
        }
        self.solve_coefficients((0..shards.len()).filter(|&i| i != missing), missing)?;
        let len = shards[self.sel[0].1].len();
        for &(_, idx) in &self.sel {
            if shards[idx].len() != len {
                return Err(ErasureError::LengthMismatch {
                    expected: len,
                    got: shards[idx].len(),
                });
            }
        }
        out.fill_zero(len);
        for (j, &(_, idx)) in self.sel.iter().enumerate() {
            // lint: hot
            gf256::mul_slice_xor(out.bytes_mut(), shards[idx].bytes(), self.coeff[j]);
        }
        Ok(())
    }
}

/// The codec a `(k, m)` group geometry calls for: the original XOR kernels
/// for `m = 1`, Reed–Solomon otherwise.
///
/// # Errors
///
/// [`ErasureError::BadGeometry`] for an unsupported `(k, m)`.
pub fn codec_for(k: usize, m: usize) -> Result<Box<dyn ErasureCodec + Send>, ErasureError> {
    if m == 1 {
        Ok(Box::new(XorCodec::new(k)?))
    } else {
        Ok(Box::new(RsCodec::new(k, m)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(k: usize, len: usize) -> Vec<Block> {
        (0..k).map(|i| Block::synthetic(77, i as u64, len)).collect()
    }

    #[test]
    fn xor_codec_matches_legacy_parity() {
        for k in [1usize, 2, 3, 7] {
            let data = shards(k, 513);
            let refs: Vec<&Block> = data.iter().collect();
            let legacy = codec::parity_of(&refs).unwrap();
            let mut codec = XorCodec::new(k).unwrap();
            let encoded = codec.encode(&refs).unwrap();
            assert_eq!(encoded.len(), 1);
            assert_eq!(encoded[0], legacy, "k = {k}");
        }
    }

    #[test]
    fn rs_roundtrips_every_single_erasure() {
        for (k, m) in [(1usize, 1usize), (2, 2), (3, 2), (5, 3), (8, 1)] {
            let data = shards(k, 256);
            let refs: Vec<&Block> = data.iter().collect();
            let mut codec = RsCodec::new(k, m).unwrap();
            let parity = codec.encode(&refs).unwrap();
            let all: Vec<&Block> = data.iter().chain(parity.iter()).collect();
            for missing in 0..k + m {
                let present: Vec<(usize, &Block)> = all
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != missing)
                    .map(|(i, &b)| (i, b))
                    .collect();
                let got = codec.reconstruct(&present, missing).unwrap();
                assert_eq!(&got, all[missing], "(k={k}, m={m}) missing {missing}");
            }
        }
    }

    #[test]
    fn rs_m1_equals_xor() {
        // With one redundancy shard the Cauchy row is all-ones (inverse of
        // k ^ c ... not literally, but the code must still agree with XOR
        // parity on reconstruction of data shards from the other data
        // shards plus its own parity). This pins RS(k, 1) as a drop-in
        // functional replacement: erase a data shard, both codecs return
        // the same bytes.
        let k = 4;
        let data = shards(k, 128);
        let refs: Vec<&Block> = data.iter().collect();
        let mut rs = RsCodec::new(k, 1).unwrap();
        let rs_parity = rs.encode(&refs).unwrap();
        let all: Vec<&Block> = data.iter().chain(rs_parity.iter()).collect();
        for missing in 0..k {
            let present: Vec<(usize, &Block)> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != missing)
                .map(|(i, &b)| (i, b))
                .collect();
            let got = rs.reconstruct(&present, missing).unwrap();
            assert_eq!(&got, all[missing], "missing {missing}");
        }
    }

    #[test]
    fn too_many_erasures_is_a_typed_error() {
        let (k, m) = (4usize, 2usize);
        let data = shards(k, 64);
        let refs: Vec<&Block> = data.iter().collect();
        let mut codec = RsCodec::new(k, m).unwrap();
        let parity = codec.encode(&refs).unwrap();
        let all: Vec<&Block> = data.iter().chain(parity.iter()).collect();
        // Erase m + 1 = 3 shards: only k − 1 survivors remain.
        let present: Vec<(usize, &Block)> =
            all.iter().enumerate().skip(3).map(|(i, &b)| (i, b)).collect();
        assert!(matches!(
            codec.reconstruct(&present, 0),
            Err(ErasureError::TooManyErasures { survivors: 3, needed: 4 })
        ));
    }

    #[test]
    fn bad_indices_are_typed_errors() {
        let mut codec = RsCodec::new(2, 2).unwrap();
        let b = Block::zeroed(16);
        // Out-of-range survivor index.
        assert!(matches!(
            codec.reconstruct(&[(9, &b), (1, &b)], 0),
            Err(ErasureError::BadShardIndex { index: 9, shards: 4 })
        ));
        // Survivor claiming the missing slot.
        assert!(matches!(
            codec.reconstruct(&[(0, &b), (1, &b)], 0),
            Err(ErasureError::BadShardIndex { index: 0, shards: 4 })
        ));
        // Out-of-range missing index.
        assert!(matches!(
            codec.reconstruct(&[(0, &b), (1, &b)], 7),
            Err(ErasureError::BadShardIndex { index: 7, shards: 4 })
        ));
    }

    #[test]
    fn geometry_limits() {
        assert!(RsCodec::new(0, 1).is_err());
        assert!(RsCodec::new(1, 0).is_err());
        assert!(RsCodec::new(200, 57).is_err());
        assert!(RsCodec::new(200, 56).is_ok());
        assert!(XorCodec::new(0).is_err());
        assert!(codec_for(3, 1).is_ok());
        assert!(codec_for(3, 3).is_ok());
        assert!(codec_for(0, 2).is_err());
    }

    #[test]
    fn within_variants_match_the_ref_based_paths() {
        for (k, m) in [(2usize, 2usize), (3, 2), (5, 3), (6, 1)] {
            let data = shards(k, 384);
            let refs: Vec<&Block> = data.iter().collect();
            let mut codec = RsCodec::new(k, m).unwrap();
            let parity = codec.encode(&refs).unwrap();
            // Contiguous encode agrees with the ref-based encode.
            let mut pool: Vec<Block> = data.iter().cloned().chain(parity.iter().cloned()).collect();
            pool[k..].iter_mut().for_each(|b| b.fill_zero(384));
            codec.encode_within(&mut pool).unwrap();
            assert_eq!(&pool[k..], &parity[..], "(k={k}, m={m}) encode");
            // Contiguous reconstruct rebuilds every shard, ignoring the
            // garbage left at the missing slot.
            for missing in 0..k + m {
                let mut scratched = pool.clone();
                scratched[missing].fill_synthetic(999, 999, 384);
                let mut out = Block::default();
                codec.reconstruct_within(&scratched, missing, &mut out).unwrap();
                assert_eq!(out, pool[missing], "(k={k}, m={m}) missing {missing}");
            }
            // Slice-length misuse is a typed error, not a panic.
            assert!(matches!(
                codec.reconstruct_within(&pool[..k], 0, &mut Block::default()),
                Err(ErasureError::BadGeometry { .. })
            ));
        }
    }

    #[test]
    fn encode_into_reuses_buffers() {
        let (k, m) = (3usize, 2usize);
        let data = shards(k, 512);
        let refs: Vec<&Block> = data.iter().collect();
        let mut codec = RsCodec::new(k, m).unwrap();
        let mut parity = vec![Block::zeroed(512); m];
        codec.encode_into(&refs, &mut parity).unwrap();
        let expect = codec.encode(&refs).unwrap();
        assert_eq!(parity, expect);
    }
}
