//! GF(256) arithmetic for the Reed–Solomon codec.
//!
//! Grown from the table-driven `cms-bibd` field (`crates/bibd/src/gf.rs`),
//! which materializes full q×q operation tables — fine for plane orders
//! ≤ 64, wasteful at q = 256 where the codec multiplies whole stripe
//! units. Here the field is the standard AES-adjacent representation:
//! polynomials over GF(2) modulo `x⁸ + x⁴ + x³ + x² + 1` (0x11d), with
//! log/antilog tables over the generator `x` built at compile time.
//! Addition is XOR; multiplication is two table reads and one add of
//! logs; the antilog table is doubled so the log sum never needs a
//! `mod 255`.

/// The reduction polynomial `x⁸ + x⁴ + x³ + x² + 1`.
pub const POLY: u16 = 0x11d;

/// `(log, exp)` tables over the generator `x` (which is primitive for
/// 0x11d): `exp[i] = x^i` for `i in 0..255`, duplicated to `510` so
/// `exp[log a + log b]` needs no reduction; `log[exp[i]] = i`.
const fn build_tables() -> ([u8; 256], [u8; 512]) {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (log, exp)
}

const TABLES: ([u8; 256], [u8; 512]) = build_tables();
/// Discrete log of each nonzero element (`LOG[0]` is unused).
pub const LOG: [u8; 256] = TABLES.0;
/// Antilog (powers of the generator), doubled for reduction-free lookup.
pub const EXP: [u8; 512] = TABLES.1;

/// Field addition (= subtraction): carry-less, so plain XOR.
#[inline]
#[must_use]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/antilog tables.
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
}

/// Multiplicative inverse of a nonzero element.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no multiplicative inverse");
    EXP[255 - LOG[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
#[must_use]
pub fn div(a: u8, b: u8) -> u8 {
    assert_ne!(b, 0, "division by zero");
    if a == 0 {
        return 0;
    }
    EXP[255 + LOG[a as usize] as usize - LOG[b as usize] as usize]
}

/// `dst[i] ^= coeff · src[i]` over GF(256) — the codec's per-stripe-unit
/// kernel. `coeff == 0` is a no-op and `coeff == 1` degenerates to the
/// XOR fold, so the m = 1 code path pays no table lookups.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn mul_slice_xor(dst: &mut [u8], src: &[u8], coeff: u8) {
    assert_eq!(dst.len(), src.len(), "GF fold of slices of unequal length");
    match coeff {
        0 => {}
        1 => {
            // lint: hot
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d ^= s;
            }
        }
        _ => {
            let log_c = LOG[coeff as usize] as usize;
            // lint: hot
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                if s != 0 {
                    *d ^= EXP[log_c + LOG[s as usize] as usize];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // x is primitive: exp visits every nonzero element exactly once.
        let mut seen = [false; 256];
        for i in 0..255 {
            let e = EXP[i] as usize;
            assert_ne!(e, 0);
            assert!(!seen[e], "exp[{i}] = {e} repeats");
            seen[e] = true;
        }
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
        for i in 255..510 {
            assert_eq!(EXP[i], EXP[i - 255]);
        }
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Shift-and-add reference multiplication modulo POLY.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            let mut a = u16::from(a);
            let mut b = u16::from(b);
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a = {a}, b = {b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_inverts() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(1, a), inv(a));
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn mul_slice_xor_special_cases_match_general() {
        let src: Vec<u8> = (0..=255u8).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0xff] {
            let mut fast = vec![0xA5u8; 256];
            let mut slow = vec![0xA5u8; 256];
            mul_slice_xor(&mut fast, &src, coeff);
            for (d, &s) in slow.iter_mut().zip(src.iter()) {
                *d ^= mul(coeff, s);
            }
            assert_eq!(fast, slow, "coeff = {coeff}");
        }
    }
}
