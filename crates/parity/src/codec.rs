//! Parity computation and single-erasure reconstruction.
//!
//! A parity group of `p` blocks consists of `p − 1` data blocks and one
//! parity block equal to their XOR. Any single missing block — data or
//! parity — is the XOR of the surviving `p − 1`. This is exactly the
//! RAID-5-style redundancy all six schemes in the paper build on; they
//! differ only in *where* group members live and *when* they are fetched.

use crate::block::Block;
use std::fmt;

/// Errors from parity operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParityError {
    /// Fewer than two blocks were supplied; parity over a single block is
    /// a degenerate copy and almost certainly a caller bug.
    GroupTooSmall {
        /// Number of blocks supplied.
        got: usize,
    },
    /// Supplied blocks have differing lengths.
    LengthMismatch {
        /// Length of the first block.
        expected: usize,
        /// The offending length.
        got: usize,
    },
}

impl fmt::Display for ParityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParityError::GroupTooSmall { got } => {
                write!(f, "parity group needs at least 2 blocks, got {got}")
            }
            ParityError::LengthMismatch { expected, got } => {
                write!(f, "block length mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ParityError {}

/// Computes the parity block (XOR) of the given data blocks.
///
/// # Errors
///
/// Returns [`ParityError`] if fewer than one block is given or lengths
/// differ. A single data block is allowed (its parity is a copy — the
/// `p = 2` mirroring case).
pub fn parity_of(data: &[&Block]) -> Result<Block, ParityError> {
    let mut parity = Block::default();
    parity_into(&mut parity, data.iter().copied())?;
    Ok(parity)
}

/// Allocation-free [`parity_of`]: XOR-folds `blocks` into `out`, reusing
/// `out`'s buffer capacity (DESIGN.md §7). The first block is copied in
/// rather than XORed against a fresh zero block, so steady-state
/// reconstruction touches no allocator and makes one fewer pass over the
/// stripe unit.
///
/// # Errors
///
/// Returns [`ParityError`] if the iterator is empty or lengths differ.
/// `out` is left in an unspecified (but valid) state on error.
pub fn parity_into<'a, I>(out: &mut Block, blocks: I) -> Result<(), ParityError>
where
    I: IntoIterator<Item = &'a Block>,
{
    let mut blocks = blocks.into_iter();
    let first = blocks.next().ok_or(ParityError::GroupTooSmall { got: 0 })?;
    out.copy_from(first);
    for block in blocks {
        if block.len() != first.len() {
            return Err(ParityError::LengthMismatch {
                expected: first.len(),
                got: block.len(),
            });
        }
        *out ^= block;
    }
    Ok(())
}

/// Reconstructs a missing block from the `p − 1` survivors of its parity
/// group (the survivors may include the parity block; XOR doesn't care).
///
/// # Errors
///
/// Returns [`ParityError`] on an empty survivor list or length mismatch.
pub fn reconstruct(survivors: &[&Block]) -> Result<Block, ParityError> {
    parity_of(survivors)
}

/// Allocation-free [`reconstruct`]: see [`parity_into`].
///
/// # Errors
///
/// Returns [`ParityError`] on an empty survivor list or length mismatch.
pub fn reconstruct_into<'a, I>(out: &mut Block, survivors: I) -> Result<(), ParityError>
where
    I: IntoIterator<Item = &'a Block>,
{
    parity_into(out, survivors)
}

/// Verifies that a full parity group (data blocks plus parity block) XORs
/// to zero.
///
/// # Errors
///
/// Returns [`ParityError`] when the group is smaller than two blocks or
/// lengths differ.
pub fn verify_group(group: &[&Block]) -> Result<bool, ParityError> {
    if group.len() < 2 {
        return Err(ParityError::GroupTooSmall { got: group.len() });
    }
    let folded = parity_of(group)?;
    Ok(folded.bytes().iter().all(|&b| b == 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(p: usize, len: usize) -> Vec<Block> {
        (0..p - 1)
            .map(|i| Block::synthetic(100, i as u64, len))
            .collect()
    }

    #[test]
    fn parity_completes_the_group() {
        for p in [2usize, 3, 4, 8, 16] {
            let data = group(p, 1024);
            let refs: Vec<&Block> = data.iter().collect();
            let parity = parity_of(&refs).unwrap();
            let mut full: Vec<&Block> = data.iter().collect();
            full.push(&parity);
            assert!(verify_group(&full).unwrap(), "p = {p}");
        }
    }

    #[test]
    fn any_single_erasure_is_recoverable() {
        let p = 5;
        let data = group(p, 512);
        let refs: Vec<&Block> = data.iter().collect();
        let parity = parity_of(&refs).unwrap();
        let mut full: Vec<Block> = data.clone();
        full.push(parity);
        for missing in 0..full.len() {
            let survivors: Vec<&Block> = full
                .iter()
                .enumerate()
                .filter_map(|(i, b)| (i != missing).then_some(b))
                .collect();
            let rebuilt = reconstruct(&survivors).unwrap();
            assert_eq!(rebuilt, full[missing], "erasure at position {missing}");
        }
    }

    #[test]
    fn mirroring_case_p2() {
        // p = 2: parity of a single data block is the block itself.
        let d = Block::synthetic(1, 2, 64);
        let parity = parity_of(&[&d]).unwrap();
        assert_eq!(parity, d);
    }

    #[test]
    fn corruption_is_detected() {
        let data = group(4, 256);
        let refs: Vec<&Block> = data.iter().collect();
        let parity = parity_of(&refs).unwrap();
        let mut corrupted = data[1].bytes().to_vec();
        corrupted[17] ^= 0xFF;
        let bad = Block::from_bytes(corrupted);
        let full = [&data[0], &bad, &data[2], &parity];
        assert!(!verify_group(&full).unwrap());
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parity_of(&[]),
            Err(ParityError::GroupTooSmall { got: 0 })
        ));
        let a = Block::zeroed(8);
        let b = Block::zeroed(16);
        assert!(matches!(
            parity_of(&[&a, &b]),
            Err(ParityError::LengthMismatch { expected: 8, got: 16 })
        ));
        assert!(verify_group(&[&a]).is_err());
    }

    #[test]
    fn parity_into_matches_parity_of_and_reuses_capacity() {
        let data = group(6, 768);
        let refs: Vec<&Block> = data.iter().collect();
        let expect = parity_of(&refs).unwrap();
        let mut out = Block::synthetic(0, 0, 768);
        parity_into(&mut out, data.iter()).unwrap();
        assert_eq!(out, expect);
        // Refill with a same-length group: no growth of the reused block.
        let other = group(3, 768);
        let cap_probe = out.len();
        reconstruct_into(&mut out, other.iter()).unwrap();
        assert_eq!(out.len(), cap_probe);
        let other_refs: Vec<&Block> = other.iter().collect();
        assert_eq!(out, reconstruct(&other_refs).unwrap());
    }

    #[test]
    fn parity_into_error_cases() {
        let mut out = Block::default();
        assert!(matches!(
            parity_into(&mut out, std::iter::empty()),
            Err(ParityError::GroupTooSmall { got: 0 })
        ));
        let a = Block::zeroed(8);
        let b = Block::zeroed(16);
        assert!(matches!(
            parity_into(&mut out, [&a, &b].into_iter()),
            Err(ParityError::LengthMismatch { expected: 8, got: 16 })
        ));
    }

    #[test]
    fn error_display() {
        let e = ParityError::GroupTooSmall { got: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = ParityError::LengthMismatch { expected: 4, got: 8 };
        assert!(e.to_string().contains("expected 4"));
    }
}
