//! # cms-parity — XOR parity encoding over real block data
//!
//! The paper treats parity as a given ("we assume that the cost of
//! reconstructing the data block by xor'ing the blocks in its parity group
//! is negligible", Section 3, footnote 1). To make the reproduction
//! end-to-end verifiable, this crate implements the actual codec: parity
//! block computation, single-erasure reconstruction, and group
//! verification, over real byte buffers.
//!
//! The simulator fills clip blocks with seeded pseudo-random content and
//! uses this codec to check — byte for byte — that the data handed to a
//! client after a disk failure is identical to what the failed disk would
//! have delivered.
//!
//! ```
//! use cms_parity::{parity_of, reconstruct, Block};
//!
//! let a = Block::synthetic(1, 0, 4096);
//! let b = Block::synthetic(1, 1, 4096);
//! let parity = parity_of(&[&a, &b]).unwrap();
//!
//! // Disk holding `a` fails: rebuild it from the survivors.
//! let rebuilt = reconstruct(&[&b, &parity]).unwrap();
//! assert_eq!(rebuilt, a);
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod block;
pub mod codec;
pub mod erasure;
pub mod gf256;

pub use block::Block;
pub use codec::{parity_into, parity_of, reconstruct, reconstruct_into, verify_group, ParityError};
pub use erasure::{codec_for, ErasureCodec, ErasureError, RsCodec, XorCodec};
