//! Fixed-size data blocks with deterministic synthetic content.
//!
//! A [`Block`] is the unit the striping layer places on disks — the
//! paper's stripe unit `b`. For the simulator, block content is generated
//! from `(clip id, block index)` by a splitmix-style hash, so any block can
//! be re-derived for verification without storing the whole clip library
//! in memory.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

/// A fixed-size byte block.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Block {
    data: Vec<u8>,
}

impl Block {
    /// An all-zero block of `len` bytes — the XOR identity.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        Block { data: vec![0; len] }
    }

    /// Wraps raw bytes.
    #[must_use]
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Block { data }
    }

    /// Deterministic synthetic content for block `index` of clip `clip`:
    /// every byte is derived from a splitmix64 stream seeded by
    /// `(clip, index)`. Two calls with equal arguments always produce
    /// identical blocks.
    #[must_use]
    pub fn synthetic(clip: u64, index: u64, len: usize) -> Self {
        let mut block = Block::default();
        block.fill_synthetic(clip, index, len);
        block
    }

    /// Allocation-free [`Self::synthetic`]: regenerates the deterministic
    /// content in place, reusing the existing buffer's capacity
    /// (DESIGN.md §7). The buffer is reserved to the next multiple of 8 so
    /// the whole-word generator loop never reallocates mid-fill.
    pub fn fill_synthetic(&mut self, clip: u64, index: u64, len: usize) {
        let mut state = clip
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ 0x94D0_49BB_1331_11EB;
        self.data.clear();
        self.data.reserve(len.next_multiple_of(8));
        while self.data.len() < len {
            state = splitmix64(&mut state);
            self.data.extend_from_slice(&state.to_le_bytes());
        }
        self.data.truncate(len);
    }

    /// Replaces this block's content with a copy of `src`, reusing the
    /// existing buffer's capacity.
    pub fn copy_from(&mut self, src: &Block) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Allocation-free [`Self::zeroed`]: resets the block to `len` zero
    /// bytes in place, reusing the existing buffer's capacity.
    pub fn fill_zero(&mut self, len: usize) {
        self.data.clear();
        self.data.resize(len, 0);
    }

    /// Mutable access to the bytes — for the in-crate GF(256) kernels.
    pub(crate) fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Block length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the block empty (zero-length)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access to the bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// A short checksum for logging/assertions (FNV-1a).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &self.data {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block[{} B, fnv {:016x}]", self.len(), self.checksum())
    }
}

impl Block {
    /// Byte-at-a-time XOR fold — the obviously-correct reference
    /// implementation. The fast word-wise path in [`BitXorAssign`] is
    /// property-tested for equivalence against this on arbitrary lengths.
    ///
    /// # Panics
    ///
    /// Panics when the blocks differ in length.
    pub fn xor_bytewise_reference(&mut self, rhs: &Block) {
        assert_eq!(self.len(), rhs.len(), "XOR of blocks of unequal length");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a ^= *b;
        }
    }
}

impl BitXorAssign<&Block> for Block {
    /// XOR folds `rhs` into `self`, eight bytes at a time with a byte
    /// tail. On a `b`-byte stripe unit this is the hot loop of every
    /// on-the-fly reconstruction, so it works in `u64` words; the unrolled
    /// remainder keeps arbitrary (odd, even empty) lengths correct.
    fn bitxor_assign(&mut self, rhs: &Block) {
        assert_eq!(self.len(), rhs.len(), "XOR of blocks of unequal length");
        let mut lhs_words = self.data.chunks_exact_mut(8);
        let mut rhs_words = rhs.data.chunks_exact(8);
        for (a, b) in lhs_words.by_ref().zip(rhs_words.by_ref()) {
            // chunks_exact yields 8-byte windows; the fallible conversion
            // keeps this arm panic-free without trusting that invariant.
            if let (Ok(wa), Ok(wb)) = (<[u8; 8]>::try_from(&*a), <[u8; 8]>::try_from(b)) {
                let word = u64::from_ne_bytes(wa) ^ u64::from_ne_bytes(wb);
                a.copy_from_slice(&word.to_ne_bytes());
            }
        }
        for (a, b) in lhs_words.into_remainder().iter_mut().zip(rhs_words.remainder()) {
            *a ^= *b;
        }
    }
}

impl BitXor<&Block> for Block {
    type Output = Block;

    fn bitxor(mut self, rhs: &Block) -> Block {
        self ^= rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = Block::synthetic(7, 42, 4096);
        let b = Block::synthetic(7, 42, 4096);
        assert_eq!(a, b);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn synthetic_differs_across_clips_and_indices() {
        let a = Block::synthetic(7, 42, 512);
        let b = Block::synthetic(7, 43, 512);
        let c = Block::synthetic(8, 42, 512);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn synthetic_handles_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 1023] {
            let b = Block::synthetic(1, 2, len);
            assert_eq!(b.len(), len);
        }
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = Block::synthetic(1, 0, 256);
        let b = Block::synthetic(2, 0, 256);
        let x = a.clone() ^ &b;
        let back = x ^ &b;
        assert_eq!(back, a);
    }

    #[test]
    fn zero_is_xor_identity() {
        let a = Block::synthetic(5, 5, 128);
        let z = Block::zeroed(128);
        assert_eq!(a.clone() ^ &z, a);
    }

    #[test]
    #[should_panic(expected = "unequal length")]
    fn xor_length_mismatch_panics() {
        let mut a = Block::zeroed(16);
        let b = Block::zeroed(8);
        a ^= &b;
    }

    #[test]
    fn wordwise_xor_matches_bytewise_reference() {
        // Lengths straddling the 8-byte word boundary, including empty.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let a = Block::synthetic(3, 9, len);
            let b = Block::synthetic(4, 11, len);
            let mut fast = a.clone();
            fast ^= &b;
            let mut slow = a.clone();
            slow.xor_bytewise_reference(&b);
            assert_eq!(fast, slow, "len = {len}");
        }
    }

    #[test]
    fn fill_synthetic_matches_synthetic_and_reuses_capacity() {
        let mut b = Block::default();
        for len in [0usize, 1, 7, 8, 9, 1023] {
            b.fill_synthetic(9, 3, len);
            assert_eq!(b, Block::synthetic(9, 3, len), "len = {len}");
        }
        b.fill_synthetic(9, 3, 1024);
        let cap = b.data.capacity();
        b.fill_synthetic(10, 4, 1024);
        assert_eq!(b.data.capacity(), cap, "refill must not reallocate");
        assert_eq!(b, Block::synthetic(10, 4, 1024));
    }

    #[test]
    fn copy_from_replaces_content_in_place() {
        let src = Block::synthetic(1, 2, 64);
        let mut dst = Block::synthetic(3, 4, 128);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let cap = dst.data.capacity();
        dst.copy_from(&Block::zeroed(32));
        assert_eq!(dst.data.capacity(), cap, "shrinking copy must not reallocate");
    }

    #[test]
    fn debug_shows_length_and_checksum() {
        let s = format!("{:?}", Block::zeroed(32));
        assert!(s.contains("32 B"), "{s}");
    }
}
