//! The erasure-codec property battery: GF(256) field axioms, agreement
//! with the independently constructed `cms-bibd` table field, XOR-codec
//! equivalence with the legacy parity kernels, and Reed–Solomon
//! round-trips under adversarial erasure sets.

use cms_parity::erasure::{ErasureCodec, ErasureError, RsCodec, XorCodec};
use cms_parity::{gf256, parity_of, reconstruct, Block};
use proptest::prelude::*;

#[test]
fn log_antilog_round_trips_all_255_nonzero_elements() {
    for a in 1..=255u8 {
        let l = gf256::LOG[a as usize] as usize;
        assert_eq!(gf256::EXP[l], a, "exp(log({a})) != {a}");
    }
    // ... and log is a bijection onto 0..255.
    let mut seen = [false; 255];
    for a in 1..=255u8 {
        let l = gf256::LOG[a as usize] as usize;
        assert!(!seen[l], "log({a}) = {l} repeats");
        seen[l] = true;
    }
}

#[test]
fn agrees_with_bibd_table_field_on_add_mul_inv() {
    // The cms-bibd field materializes GF(256) from an exhaustively found
    // irreducible polynomial — possibly a different one than 0x11d, so
    // the two fields agree up to isomorphism, not element-wise. The
    // prime subfield and the polynomial-basis addition, however, are
    // representation-independent: addition is coefficient-wise XOR in
    // both. Verify add element-wise, and verify mul/inv through an
    // explicit isomorphism built by matching generators.
    let f = cms_bibd::Gf::new(256).expect("GF(256) exists");
    assert_eq!(f.characteristic(), 2);
    assert_eq!(f.degree(), 8);
    for a in 0..256u32 {
        for b in 0..256u32 {
            assert_eq!(
                f.add(a, b),
                u32::from(gf256::add(a as u8, b as u8)),
                "add({a}, {b})"
            );
        }
    }

    // Isomorphism: our field is GF(2)[x]/(0x11d), so mapping x to any
    // root g of 0x11d *in the bibd field* and extending by powers is a
    // field isomorphism. Find g by evaluating x⁸+x⁴+x³+x²+1 with their
    // arithmetic, build the map from our antilog table, then verify it
    // transports add (the non-trivial part — their irreducible
    // polynomial differs), mul and inv.
    let is_root = |g: u32| {
        let pow = |e: u32| {
            let mut acc = 1u32;
            for _ in 0..e {
                acc = f.mul(acc, g);
            }
            acc
        };
        f.add(f.add(pow(8), pow(4)), f.add(pow(3), f.add(pow(2), 1))) == 0
    };
    let g = (2..256u32).find(|&g| is_root(g)).expect("0x11d splits in GF(256)");
    let mut iso = [0u32; 256]; // ours -> theirs
    iso[1] = 1;
    let mut theirs = 1u32;
    for i in 0..255usize {
        let ours = gf256::EXP[i] as usize;
        iso[ours] = theirs;
        theirs = f.mul(theirs, g);
    }
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!(
                iso[gf256::add(a, b) as usize],
                f.add(iso[a as usize], iso[b as usize]),
                "add({a}, {b}) does not transport"
            );
            assert_eq!(
                iso[gf256::mul(a, b) as usize],
                f.mul(iso[a as usize], iso[b as usize]),
                "mul({a}, {b}) does not transport"
            );
        }
        if a != 0 {
            assert_eq!(
                iso[gf256::inv(a) as usize],
                f.invert(iso[a as usize]),
                "inv({a}) does not transport"
            );
        }
    }
}

proptest! {
    #[test]
    fn field_axioms_hold_over_random_triples(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        // Commutativity.
        prop_assert_eq!(gf256::add(a, b), gf256::add(b, a));
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        // Associativity.
        prop_assert_eq!(gf256::add(gf256::add(a, b), c), gf256::add(a, gf256::add(b, c)));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        // Distributivity.
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        // Identities and inverses.
        prop_assert_eq!(gf256::add(a, 0), a);
        prop_assert_eq!(gf256::mul(a, 1), a);
        prop_assert_eq!(gf256::add(a, a), 0); // characteristic 2
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            if b != 0 {
                prop_assert_eq!(gf256::mul(gf256::div(a, b), b), a);
            }
        }
    }

    #[test]
    fn xor_codec_is_byte_identical_to_legacy_paths(
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..9),
        len in 0usize..200,
        missing_sel in any::<prop::sample::Index>(),
    ) {
        let data: Vec<Block> = blocks
            .into_iter()
            .map(|mut v| {
                v.resize(len, 0x6E);
                Block::from_bytes(v)
            })
            .collect();
        let k = data.len();
        let refs: Vec<&Block> = data.iter().collect();

        // Encode: trait output must equal the legacy parity bytes.
        let legacy_parity = parity_of(&refs).unwrap();
        let mut codec = XorCodec::new(k).unwrap();
        let encoded = codec.encode(&refs).unwrap();
        prop_assert_eq!(encoded[0].bytes(), legacy_parity.bytes());

        // Reconstruct: trait output must equal the legacy survivor fold.
        let mut full: Vec<Block> = data;
        full.push(legacy_parity);
        let missing = missing_sel.index(full.len());
        let survivors: Vec<(usize, &Block)> = full
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != missing)
            .collect();
        let legacy_refs: Vec<&Block> = survivors.iter().map(|&(_, b)| b).collect();
        let legacy = reconstruct(&legacy_refs).unwrap();
        let traited = codec.reconstruct(&survivors, missing).unwrap();
        prop_assert_eq!(traited.bytes(), legacy.bytes());
    }

    #[test]
    fn rs_round_trips_any_erasure_set_up_to_m(
        seed in any::<u64>(),
        k in 1usize..9,
        m in 1usize..4,
        len in 0usize..300,
        erasure_seed in any::<u64>(),
    ) {
        let data: Vec<Block> = (0..k).map(|i| Block::synthetic(seed, i as u64, len)).collect();
        let refs: Vec<&Block> = data.iter().collect();
        let mut codec = RsCodec::new(k, m).unwrap();
        let parity = codec.encode(&refs).unwrap();
        let all: Vec<&Block> = data.iter().chain(parity.iter()).collect();

        // A pseudo-random erasure set of size 1..=m out of k + m shards.
        let mut rng = erasure_seed | 1;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let erasures = 1 + (next() as usize) % m;
        let mut erased: Vec<usize> = Vec::new();
        while erased.len() < erasures {
            let e = (next() as usize) % (k + m);
            if !erased.contains(&e) {
                erased.push(e);
            }
        }
        let present: Vec<(usize, &Block)> = all
            .iter()
            .enumerate()
            .filter(|&(i, _)| !erased.contains(&i))
            .map(|(i, &b)| (i, b))
            .collect();
        for &missing in &erased {
            let got = codec.reconstruct(&present, missing).unwrap();
            prop_assert_eq!(
                got.bytes(),
                all[missing].bytes(),
                "(k={}, m={}) erased {:?}, reconstructing {}", k, m, erased, missing
            );
        }
    }

    #[test]
    fn more_than_m_erasures_is_an_error_never_a_panic(
        seed in any::<u64>(),
        k in 2usize..9,
        m in 1usize..4,
        len in 1usize..128,
        extra in 1usize..4,
    ) {
        let data: Vec<Block> = (0..k).map(|i| Block::synthetic(seed, i as u64, len)).collect();
        let refs: Vec<&Block> = data.iter().collect();
        let mut codec = RsCodec::new(k, m).unwrap();
        let parity = codec.encode(&refs).unwrap();
        let all: Vec<&Block> = data.iter().chain(parity.iter()).collect();
        // Erase the first m + extra shards (capped so at least one
        // survivor remains to hand to the decoder).
        let erasures = (m + extra).min(k + m - 1);
        let present: Vec<(usize, &Block)> = all
            .iter()
            .enumerate()
            .skip(erasures)
            .map(|(i, &b)| (i, b))
            .collect();
        if present.len() >= k {
            return Ok(()); // erasures within tolerance after the cap
        }
        let got = codec.reconstruct(&present, 0);
        prop_assert!(
            matches!(got, Err(ErasureError::TooManyErasures { .. })),
            "expected TooManyErasures, got {:?}", got
        );
    }
}
