//! Property-based tests for the parity codec: for arbitrary group sizes,
//! block lengths and contents, parity completes the group and any single
//! erasure is recoverable.

use cms_parity::{parity_of, reconstruct, verify_group, Block};
use proptest::prelude::*;

proptest! {
    #[test]
    fn parity_group_always_verifies(
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..12),
        len in 0usize..256,
    ) {
        // Normalize all blocks to one length.
        let data: Vec<Block> = blocks
            .into_iter()
            .map(|mut v| {
                v.resize(len, 0xAB);
                Block::from_bytes(v)
            })
            .collect();
        let refs: Vec<&Block> = data.iter().collect();
        let parity = parity_of(&refs).unwrap();
        let mut full: Vec<&Block> = data.iter().collect();
        full.push(&parity);
        prop_assert!(verify_group(&full).unwrap());
    }

    #[test]
    fn any_erasure_reconstructs(
        seed in any::<u64>(),
        p in 2usize..10,
        len in 1usize..512,
        missing_sel in any::<prop::sample::Index>(),
    ) {
        let data: Vec<Block> = (0..p - 1)
            .map(|i| Block::synthetic(seed, i as u64, len))
            .collect();
        let refs: Vec<&Block> = data.iter().collect();
        let parity = parity_of(&refs).unwrap();
        let mut full: Vec<Block> = data;
        full.push(parity);
        let missing = missing_sel.index(full.len());
        let survivors: Vec<&Block> = full
            .iter()
            .enumerate()
            .filter_map(|(i, b)| (i != missing).then_some(b))
            .collect();
        let rebuilt = reconstruct(&survivors).unwrap();
        prop_assert_eq!(&rebuilt, &full[missing]);
    }

    #[test]
    fn wordwise_xor_equals_bytewise_reference(
        a in prop::collection::vec(any::<u8>(), 0..1024),
        b in prop::collection::vec(any::<u8>(), 0..1024),
        len in 0usize..1024,
    ) {
        // Same arbitrary length for both sides — including 0 and lengths
        // with odd tails that exercise the word loop's remainder path.
        let mut a = a;
        let mut b = b;
        a.resize(len, 0x5C);
        b.resize(len, 0xC5);
        let (a, b) = (Block::from_bytes(a), Block::from_bytes(b));
        let mut fast = a.clone();
        fast ^= &b;
        let mut slow = a;
        slow.xor_bytewise_reference(&b);
        prop_assert_eq!(fast.bytes(), slow.bytes());
    }

    #[test]
    fn encode_fail_reconstruct_roundtrips_real_bytes(
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..9),
        len in 0usize..300,
        missing_sel in any::<prop::sample::Index>(),
    ) {
        // Arbitrary real contents (not synthetic blocks): encode parity,
        // drop any one group member, reconstruct, compare byte-for-byte.
        let data: Vec<Block> = blocks
            .into_iter()
            .map(|mut v| {
                v.resize(len, 0x3A);
                Block::from_bytes(v)
            })
            .collect();
        let refs: Vec<&Block> = data.iter().collect();
        let parity = parity_of(&refs).unwrap();
        let mut full: Vec<Block> = data;
        full.push(parity);
        let missing = missing_sel.index(full.len());
        let survivors: Vec<&Block> = full
            .iter()
            .enumerate()
            .filter_map(|(i, b)| (i != missing).then_some(b))
            .collect();
        let rebuilt = reconstruct(&survivors).unwrap();
        prop_assert_eq!(rebuilt.bytes(), full[missing].bytes());
    }

    #[test]
    fn xor_algebra_commutative_associative(
        a in prop::collection::vec(any::<u8>(), 64..65),
        b in prop::collection::vec(any::<u8>(), 64..65),
        c in prop::collection::vec(any::<u8>(), 64..65),
    ) {
        let (a, b, c) = (Block::from_bytes(a), Block::from_bytes(b), Block::from_bytes(c));
        let ab_c = (a.clone() ^ &b) ^ &c;
        let a_bc = a.clone() ^ &(b.clone() ^ &c);
        prop_assert_eq!(ab_c.bytes(), a_bc.bytes());
        let ab = a.clone() ^ &b;
        let ba = b ^ &a;
        prop_assert_eq!(ab.bytes(), ba.bytes());
    }
}
