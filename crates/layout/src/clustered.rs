//! Clustered placement with dedicated parity disks (Section 6.1).
//!
//! The `d` disks are grouped into `d/p` clusters of `p` disks; the last
//! disk of each cluster is its parity disk, the other `p−1` hold data.
//! CM data blocks are striped round-robin over the `d·(p−1)/p` data disks
//! globally; every aligned run of `p−1` consecutive data blocks lies
//! within one cluster and forms a parity group together with one block on
//! the cluster's parity disk.
//!
//! This placement is shared by three schemes that differ only in
//! retrieval policy: pre-fetching with parity disks (§6.1), streaming
//! RAID (§7.3) and the non-clustered baseline (§7.4). The builder takes
//! the target [`Scheme`] so the layout is labeled correctly.

use crate::materialized::MaterializedLayout;
use crate::types::{BlockLocation, ParityGroupInfo, Slot, StreamAddr};
use cms_core::{CmsError, Scheme};

/// Builds the clustered layout with `num_data_blocks` placed and a single
/// XOR parity disk per cluster (the paper's `m = 1`).
///
/// # Errors
///
/// Returns [`CmsError::InvalidParams`] unless `2 <= p <= d`, `p | d`, and
/// `scheme` is one of the three parity-disk schemes.
pub fn build(
    scheme: Scheme,
    d: u32,
    p: u32,
    num_data_blocks: u64,
) -> Result<MaterializedLayout, CmsError> {
    build_with_redundancy(scheme, d, p, 1, num_data_blocks)
}

/// Builds the clustered layout with `m` redundancy disks per cluster: the
/// last `m` disks of each `p`-disk cluster hold Reed–Solomon shards
/// (plain XOR parity when `m = 1`), the first `k = p − m` hold data.
/// Groups are aligned runs of `k` consecutive data blocks plus one block
/// on each of the cluster's redundancy disks.
///
/// # Errors
///
/// Returns [`CmsError::InvalidParams`] unless `2 <= p <= d`, `p | d`,
/// `1 <= m < p`, and `scheme` is one of the three parity-disk schemes.
pub fn build_with_redundancy(
    scheme: Scheme,
    d: u32,
    p: u32,
    m: u32,
    num_data_blocks: u64,
) -> Result<MaterializedLayout, CmsError> {
    if !scheme.uses_parity_disks() {
        return Err(CmsError::invalid_params(format!(
            "{scheme} does not use dedicated parity disks"
        )));
    }
    if p < 2 || p > d {
        return Err(CmsError::invalid_params("need 2 <= p <= d"));
    }
    if !d.is_multiple_of(p) {
        return Err(CmsError::invalid_params(format!(
            "clustered layout needs p | d (got d = {d}, p = {p})"
        )));
    }
    if m == 0 || m >= p {
        return Err(CmsError::invalid_params(format!(
            "clustered layout needs 1 <= m < p (got p = {p}, m = {m})"
        )));
    }
    let k = p - m;
    let clusters = d / p;
    let data_disks = clusters * k; // d·(p−m)/p
    let span = u64::from(data_disks);

    let mut slots: Vec<Vec<Slot>> = vec![Vec::new(); d as usize];
    let mut stream = Vec::with_capacity(num_data_blocks as usize);
    let mut groups: Vec<ParityGroupInfo> = Vec::new();
    let mut group_of = vec![usize::MAX; num_data_blocks as usize];

    let physical_disk = |data_disk: u32| -> u32 {
        let cluster = data_disk / k;
        let offset = data_disk % k;
        cluster * p + offset
    };

    for i in 0..num_data_blocks {
        let data_disk = (i % span) as u32;
        let disk = physical_disk(data_disk);
        let block_no = i / span;
        push_slot(&mut slots[disk as usize], block_no, Slot::Data(StreamAddr::new(0, i)));
        stream.push(BlockLocation::new(disk, block_no));
    }

    // Groups: run g covers data indices g·k .. g·k+k−1.
    let group_span = u64::from(k);
    let num_groups = num_data_blocks.div_ceil(group_span);
    for g in 0..num_groups {
        let start = g * group_span;
        let end = ((g + 1) * group_span).min(num_data_blocks);
        let data: Vec<StreamAddr> = (start..end).map(|i| StreamAddr::new(0, i)).collect();
        // All members lie in cluster g mod clusters at row g / clusters.
        let cluster = (g % u64::from(clusters)) as u32;
        let block_no = g / u64::from(clusters);
        let gid = groups.len();
        // Redundancy shards occupy the cluster's last `m` disks, in
        // shard-index order `k .. k + m` (`m >= 1` validated above).
        for r in 0..m {
            let disk = cluster * p + k + r;
            push_slot(&mut slots[disk as usize], block_no, Slot::Parity(gid));
        }
        let parity = BlockLocation::new(cluster * p + k, block_no);
        let extra: Vec<BlockLocation> =
            (1..m).map(|r| BlockLocation::new(cluster * p + k + r, block_no)).collect();
        for a in &data {
            group_of[a.index as usize] = gid;
        }
        groups.push(ParityGroupInfo { data, parity, extra });
    }

    MaterializedLayout::assemble(scheme, d, p, vec![stream], slots, groups, vec![group_of], None)
}

fn push_slot(slots: &mut Vec<Slot>, block_no: u64, slot: Slot) {
    if slots.len() <= block_no as usize {
        slots.resize(block_no as usize + 1, Slot::Free);
    }
    debug_assert_eq!(slots[block_no as usize], Slot::Free, "slot collision");
    slots[block_no as usize] = slot;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::DiskId;

    #[test]
    fn parity_disks_hold_only_parity() {
        let layout = build(Scheme::PrefetchParityDisks, 8, 4, 120).unwrap();
        // Clusters {0..3} and {4..7}; parity disks 3 and 7.
        for disk in [3u32, 7] {
            for b in 0..layout.blocks_used(DiskId(disk)) {
                assert!(
                    matches!(layout.slot(DiskId(disk), b), Slot::Parity(_) | Slot::Free),
                    "disk {disk} block {b} must be parity"
                );
            }
        }
        for disk in [0u32, 1, 2, 4, 5, 6] {
            for b in 0..layout.blocks_used(DiskId(disk)) {
                assert!(
                    matches!(layout.slot(DiskId(disk), b), Slot::Data(_) | Slot::Free),
                    "disk {disk} block {b} must be data"
                );
            }
        }
    }

    #[test]
    fn round_robin_over_data_disks() {
        let layout = build(Scheme::PrefetchParityDisks, 8, 4, 24).unwrap();
        // Data disks in order: 0,1,2 (cluster 0), 4,5,6 (cluster 1).
        let expect_disks = [0u32, 1, 2, 4, 5, 6];
        for i in 0..24u64 {
            let loc = layout.locate(StreamAddr::new(0, i));
            assert_eq!(loc.disk.raw(), expect_disks[(i % 6) as usize], "block {i}");
            assert_eq!(loc.block_no, i / 6, "block {i}");
        }
    }

    #[test]
    fn groups_stay_within_one_cluster() {
        let layout = build(Scheme::StreamingRaid, 12, 4, 360).unwrap();
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            let clusters: Vec<u32> = g
                .data
                .iter()
                .map(|&a| layout.locate(a).disk.raw() / 4)
                .collect();
            assert!(
                clusters.iter().all(|&c| c == g.parity.disk.raw() / 4),
                "group {gid} spans clusters"
            );
            assert_eq!(g.data.len(), 3, "full groups have p−1 data blocks");
        }
    }

    #[test]
    fn first_block_of_aligned_clip_starts_a_cluster() {
        // Section 6.1: "the first data block of each CM clip is stored on
        // the first data disk within a cluster" — clip starts are aligned
        // to multiples of p−1.
        let layout = build(Scheme::PrefetchParityDisks, 8, 4, 60).unwrap();
        for clip_start in (0..60u64).step_by(3) {
            let loc = layout.locate(StreamAddr::new(0, clip_start));
            assert_eq!(loc.disk.raw() % 4, 0, "aligned start {clip_start}");
        }
    }

    #[test]
    fn mirroring_case_p2() {
        let layout = build(Scheme::NonClustered, 6, 2, 30).unwrap();
        // Each group: one data block, parity on its cluster's twin.
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            assert_eq!(g.data.len(), 1);
            let dloc = layout.locate(g.data[0]);
            assert_eq!(g.parity.disk.raw(), dloc.disk.raw() + 1);
            assert_eq!(g.parity.block_no, dloc.block_no);
        }
    }

    #[test]
    fn trailing_partial_group_is_allowed() {
        let layout = build(Scheme::PrefetchParityDisks, 8, 4, 20).unwrap();
        // 20 blocks → 6 full groups of 3 + 1 group of 2.
        assert_eq!(layout.num_groups(), 7);
        let last = layout.group(6);
        assert_eq!(last.data.len(), 2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(build(Scheme::PrefetchParityDisks, 9, 4, 10).is_err()); // 4 ∤ 9
        assert!(build(Scheme::PrefetchParityDisks, 8, 1, 10).is_err());
        assert!(build(Scheme::PrefetchParityDisks, 8, 16, 10).is_err());
        assert!(build(Scheme::DeclusteredParity, 8, 4, 10).is_err()); // wrong scheme
        assert!(build_with_redundancy(Scheme::PrefetchParityDisks, 8, 4, 0, 10).is_err());
        assert!(build_with_redundancy(Scheme::PrefetchParityDisks, 8, 4, 4, 10).is_err());
    }

    #[test]
    fn redundancy_two_reserves_the_last_two_disks_per_cluster() {
        let layout =
            build_with_redundancy(Scheme::PrefetchParityDisks, 8, 4, 2, 120).unwrap();
        assert_eq!(layout.redundancy(), 2);
        // Clusters {0..3} and {4..7}; k = 2 → data on {0,1,4,5}, shards
        // on {2,3,6,7}.
        for disk in [2u32, 3, 6, 7] {
            for b in 0..layout.blocks_used(DiskId(disk)) {
                assert!(
                    matches!(layout.slot(DiskId(disk), b), Slot::Parity(_) | Slot::Free),
                    "disk {disk} block {b} must be redundancy"
                );
            }
        }
        for disk in [0u32, 1, 4, 5] {
            for b in 0..layout.blocks_used(DiskId(disk)) {
                assert!(
                    matches!(layout.slot(DiskId(disk), b), Slot::Data(_) | Slot::Free),
                    "disk {disk} block {b} must be data"
                );
            }
        }
    }

    #[test]
    fn redundancy_two_groups_have_k_data_and_m_shards() {
        let layout = build_with_redundancy(Scheme::StreamingRaid, 8, 4, 2, 64).unwrap();
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            assert_eq!(g.data.len(), 2, "full groups have k = p−m data blocks");
            assert_eq!(g.redundancy(), 2);
            let cluster = g.parity.disk.raw() / 4;
            assert!(
                g.extra.iter().all(|loc| loc.disk.raw() / 4 == cluster),
                "group {gid}: shards span clusters"
            );
            assert_eq!(g.parity.disk.raw() % 4, 2);
            assert_eq!(g.extra[0].disk.raw() % 4, 3);
        }
        // Reconstruction reads report the sibling data block plus both
        // shards: any k = 2 of the 3 survivors suffice for the decoder.
        let reads = layout.reconstruction_reads(StreamAddr::new(0, 0));
        assert_eq!(reads.len(), 3);
    }

    #[test]
    fn redundancy_one_is_byte_identical_to_build() {
        let a = build(Scheme::PrefetchParityDisks, 8, 4, 120).unwrap();
        let b = build_with_redundancy(Scheme::PrefetchParityDisks, 8, 4, 1, 120).unwrap();
        assert_eq!(b.redundancy(), 1);
        for i in 0..120u64 {
            let addr = StreamAddr::new(0, i);
            assert_eq!(a.locate(addr), b.locate(addr), "block {i}");
            assert_eq!(a.group_id_of(addr), b.group_id_of(addr), "block {i}");
        }
        for gid in 0..a.num_groups() {
            assert_eq!(a.group(gid), b.group(gid), "group {gid}");
        }
    }

    #[test]
    fn storage_overhead_is_one_parity_disk_per_cluster() {
        let layout = build(Scheme::PrefetchParityDisks, 32, 4, 32 * 3 * 100).unwrap();
        // Data disks carry 100 blocks each; parity disks carry 100 each:
        // overhead = 1/(p−1) = 1/3.
        let overhead = layout.parity_overhead();
        assert!((overhead - 1.0 / 3.0).abs() < 0.01, "overhead {overhead}");
    }

    #[test]
    fn reconstruction_reads_for_prefetch_need_only_parity() {
        // The §6 insight: with the whole group prefetched, only the parity
        // block needs reading — reconstruction_reads still reports the
        // full group; the prefetch policy filters to what is not buffered.
        let layout = build(Scheme::PrefetchParityDisks, 8, 4, 24).unwrap();
        let reads = layout.reconstruction_reads(StreamAddr::new(0, 0));
        assert_eq!(reads.len(), 3); // two sibling data blocks + parity
        assert_eq!(reads[2].disk.raw(), 3); // cluster 0's parity disk
    }
}
