//! Uniform, flat parity placement (Section 6.2, Figure 3).
//!
//! All `d` disks hold data; blocks are striped round-robin over the whole
//! array. Groups are runs of `p−1` consecutive data blocks (clusters of
//! `p−1` disks). The parity block for a group whose last member is the
//! `j`-th data block of its disk is stored on the
//! `(j mod (d−(p−1)))`-th disk *following* the cluster's last disk — so
//! parity rotates uniformly over the disks outside the cluster, which is
//! what lets every disk absorb an equal share of the post-failure parity
//! reads.
//!
//! Physically, data blocks fill the top of every disk and parity blocks
//! are appended below the data region, exactly as Figure 3 draws it.

use crate::materialized::MaterializedLayout;
use crate::types::{BlockLocation, ParityGroupInfo, Slot, StreamAddr};
use cms_core::{CmsError, Scheme};

/// Builds the flat layout with `num_data_blocks` placed.
///
/// # Errors
///
/// Returns [`CmsError::InvalidParams`] unless `2 <= p <= d` and
/// `p − 1 < d` (there must be at least one disk outside each cluster to
/// hold its parity).
pub fn build(d: u32, p: u32, num_data_blocks: u64) -> Result<MaterializedLayout, CmsError> {
    if p < 2 || p > d {
        return Err(CmsError::invalid_params(
            "need 2 <= p <= d (the parity disk lives outside the p−1-disk cluster)",
        ));
    }
    let span = u64::from(d);
    let group_span = u64::from(p - 1);

    let mut slots: Vec<Vec<Slot>> = vec![Vec::new(); d as usize];
    let mut stream = Vec::with_capacity(num_data_blocks as usize);
    for i in 0..num_data_blocks {
        let disk = (i % span) as u32;
        let block_no = i / span;
        push_slot(&mut slots[disk as usize], block_no, Slot::Data(StreamAddr::new(0, i)));
        stream.push(BlockLocation::new(disk, block_no));
    }

    // Parity region starts below the data region on every disk.
    let data_rows = num_data_blocks.div_ceil(span);
    let mut parity_cursor = vec![data_rows; d as usize];

    let mut groups: Vec<ParityGroupInfo> = Vec::new();
    let mut group_of = vec![usize::MAX; num_data_blocks as usize];
    let num_groups = num_data_blocks.div_ceil(group_span);
    for g in 0..num_groups {
        let start = g * group_span;
        let end = ((g + 1) * group_span).min(num_data_blocks);
        let data: Vec<StreamAddr> = (start..end).map(|i| StreamAddr::new(0, i)).collect();
        // Figure 3 rule: last member's disk and its per-disk data row pick
        // the parity disk. A terminal partial group (stream length not a
        // multiple of p−1) uses its *nominal* last index — where the group
        // would end if the stripe continued — so the parity-disk rotation
        // stays on the §6.2 period d−(p−1) and admission's closed-form
        // geometry agrees with the layout for every group, including the
        // clipped one. (Keying it to the actual last member instead would
        // silently shift the tail group's parity class; admission would
        // then under-count shared-parity pairs and a disk could exceed q
        // after a failure.)
        let last_idx = start + group_span - 1;
        let last_disk = (last_idx % span) as u32;
        let j = last_idx / span; // row of the last member on its disk
        let offset = (j % u64::from(d - (p - 1))) as u32;
        let parity_disk = (last_disk + 1 + offset) % d;
        let parity_block = parity_cursor[parity_disk as usize];
        parity_cursor[parity_disk as usize] += 1;

        let gid = groups.len();
        push_slot(&mut slots[parity_disk as usize], parity_block, Slot::Parity(gid));
        for a in &data {
            group_of[a.index as usize] = gid;
        }
        groups.push(ParityGroupInfo {
            data,
            parity: BlockLocation::new(parity_disk, parity_block),
            extra: Vec::new(),
        });
    }

    MaterializedLayout::assemble(
        Scheme::PrefetchFlat,
        d,
        p,
        vec![stream],
        slots,
        groups,
        vec![group_of],
        None,
    )
}

fn push_slot(slots: &mut Vec<Slot>, block_no: u64, slot: Slot) {
    if slots.len() <= block_no as usize {
        slots.resize(block_no as usize + 1, Slot::Free);
    }
    debug_assert_eq!(slots[block_no as usize], Slot::Free, "slot collision");
    slots[block_no as usize] = slot;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::DiskId;

    /// The paper's Figure 3: d = 9, p = 4 (clusters of 3), 54 data blocks.
    fn figure3() -> MaterializedLayout {
        build(9, 4, 54).unwrap()
    }

    #[test]
    fn figure3_data_fills_six_rows_round_robin() {
        let layout = figure3();
        for i in 0..54u64 {
            let loc = layout.locate(StreamAddr::new(0, i));
            assert_eq!(loc.disk.raw() as u64, i % 9);
            assert_eq!(loc.block_no, i / 9);
        }
    }

    #[test]
    fn figure3_parity_disks_match_the_paper() {
        // From Figure 3 (parity of D_{3i}, D_{3i+1}, D_{3i+2}):
        //   P0→disk3, P1→disk6, P2→disk0, P3→disk4, P4→disk7, P5→disk1,
        //   P6→disk5, P7→disk8, P8→disk2, P9→disk6, P10→disk0, P11→disk3,
        //   P12→disk4, P13→disk5(!), P14→disk4?, ...
        // The figure's columns list, top parity row then bottom:
        //   disk0: P10 P2 | disk1: P13 P5 | disk2: P16 P8 | disk3: P0 P11
        //   disk4: P3 P14 | disk5: P6 P17 | disk6: P9 P1 | disk7: P12 P4
        //   disk8: P15 P7
        let expected = [
            (0u64, 3u32),
            (1, 6),
            (2, 0),
            (3, 4),
            (4, 7),
            (5, 1),
            (6, 5),
            (7, 8),
            (8, 2),
            (9, 6),
            (10, 0),
            (11, 3),
            (12, 7),
            (13, 1),
            (14, 4),
            (15, 8),
            (16, 2),
            (17, 5),
        ];
        let layout = figure3();
        for &(g, disk) in &expected {
            assert_eq!(
                layout.group(g as usize).parity.disk.raw(),
                disk,
                "P{g} must sit on disk {disk}"
            );
        }
    }

    #[test]
    fn figure3_parity_region_below_data() {
        let layout = figure3();
        for gid in 0..layout.num_groups() {
            assert!(
                layout.group(gid).parity.block_no >= 6,
                "parity of group {gid} must be below the 6 data rows"
            );
        }
        // Two parity blocks per disk (18 groups / 9 disks).
        for disk in 0..9 {
            assert_eq!(layout.blocks_used(DiskId(disk)), 8);
        }
    }

    #[test]
    fn parity_never_lands_in_its_own_cluster() {
        let layout = figure3();
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            let member_disks: Vec<u32> =
                g.data.iter().map(|&a| layout.locate(a).disk.raw()).collect();
            assert!(
                !member_disks.contains(&g.parity.disk.raw()),
                "group {gid}: parity on a member disk"
            );
        }
    }

    #[test]
    fn groups_whose_parity_shares_a_disk_repeat_every_d_minus_cluster() {
        // Section 6.2: "parity blocks for the i-th and (i + j·(d−(p−1)))-th
        // data block on a disk are stored on the same disk". With d = 9,
        // p = 4: period 6 data rows.
        let layout = build(9, 4, 9 * 12).unwrap();
        // Group containing the block at disk 2, rows 0 and 6 (i = 2 and
        // i = 2 + 9·6 = 56 → same column, 6 rows apart).
        let g_a = layout.group_id_of(StreamAddr::new(0, 2));
        let g_b = layout.group_id_of(StreamAddr::new(0, 2 + 9 * 6));
        assert_eq!(
            layout.group(g_a).parity.disk,
            layout.group(g_b).parity.disk,
            "parity disks must coincide at period d−(p−1)"
        );
    }

    #[test]
    fn wraparound_clusters_for_indivisible_d() {
        // d = 32, p = 4: clusters of 3 do not divide 32; groups wrap the
        // ring but members stay distinct and parity stays outside.
        let layout = build(32, 4, 3200).unwrap();
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            let mut disks: Vec<u32> =
                g.data.iter().map(|&a| layout.locate(a).disk.raw()).collect();
            disks.push(g.parity.disk.raw());
            disks.sort_unstable();
            let n = disks.len();
            disks.dedup();
            assert_eq!(disks.len(), n, "group {gid} repeats a disk");
        }
    }

    #[test]
    fn parity_load_is_roughly_uniform() {
        let layout = build(32, 8, 32 * 7 * 20).unwrap();
        let counts: Vec<u64> = (0..32)
            .map(|disk| {
                (0..layout.blocks_used(DiskId(disk)))
                    .filter(|&b| matches!(layout.slot(DiskId(disk), b), Slot::Parity(_)))
                    .count() as u64
            })
            .collect();
        let (min, max) = (
            *counts.iter().min().unwrap(),
            *counts.iter().max().unwrap(),
        );
        assert!(
            max - min <= 3,
            "parity blocks should spread evenly, got {counts:?}"
        );
    }

    #[test]
    fn terminal_partial_group_keeps_nominal_parity_rotation() {
        // 736 blocks, span 3: the last group holds only block 735 (disk 3).
        // Its parity disk must come from the nominal window [735, 738) —
        // last index 737 on disk 5, row 122, offset 122 mod 3 = 2 → disk 2
        // — not from the actual last member (disk 3, row 122 → disk 0).
        // The closed-form admission geometry assumes the former; keying the
        // clipped group to its real last member shifts its parity class and
        // lets shared-parity pairs exceed the contingency reserve.
        let layout = build(6, 4, 736).unwrap();
        let gid = layout.group_id_of(StreamAddr::new(0, 735));
        let g = layout.group(gid);
        assert_eq!(g.data.len(), 1, "terminal group holds the single leftover block");
        assert_eq!(g.parity.disk.raw(), 2, "parity keyed to the nominal window");
        // And the §6.2 period still holds against the full group one
        // parity-sharing period earlier: nominal last 737 vs 737 − 6·3.
        let earlier = layout.group_id_of(StreamAddr::new(0, 735 - 6 * 3));
        assert_eq!(
            layout.group(earlier).parity.disk,
            g.parity.disk,
            "clipped group stays in its d−(p−1) parity class"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(build(4, 5, 10).is_err()); // p > d
        assert!(build(4, 1, 10).is_err());
        assert!(build(3, 4, 10).is_err());
    }

    #[test]
    fn mirroring_p2_rotates_partners() {
        let layout = build(8, 2, 64).unwrap();
        // Groups of one block; mirror disk rotates with the row.
        let p0 = layout.group(layout.group_id_of(StreamAddr::new(0, 0))).parity.disk;
        let p8 = layout.group(layout.group_id_of(StreamAddr::new(0, 8))).parity.disk;
        assert_ne!(p0, p8, "mirror partner must rotate across rows");
    }
}
