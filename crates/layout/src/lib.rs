//! # cms-layout — data and parity placement for all six schemes
//!
//! The schemes of the paper differ in *where* data and parity blocks live
//! and *which* blocks form a parity group:
//!
//! | builder | paper | placement |
//! |---|---|---|
//! | [`declustered::build`] | §4.1, Figure 2 | BIBD/PGT declustering, single concatenated stream |
//! | [`declustered::build_super_clips`] | §5.1 | same PGT, `r` super-clips pinned to PGT rows |
//! | [`clustered::build`] | §6.1 (also §7.3, §7.4) | clusters of `p` disks with a dedicated parity disk |
//! | [`flat::build`] | §6.2, Figure 3 | clusters of `p−1` data disks, parity rotated over the following disks |
//!
//! Streaming RAID and the non-clustered baseline share the clustered
//! placement — they differ from pre-fetching only in *retrieval* policy,
//! which lives in `cms-admission`/`cms-sim`.
//!
//! All builders produce a [`MaterializedLayout`]: a fully resolved map
//! from stream addresses to physical block locations, from physical slots
//! back to their contents, and from every data block to its parity group.
//! Materializing makes the subtle placement rules (the Figure 2 `n`-search,
//! parity rotation, the Figure 3 parity offsets) directly testable against
//! the paper's worked examples, and gives the simulator O(1) lookups.

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod clustered;
pub mod declustered;
pub mod flat;
pub mod materialized;
pub mod types;

pub use materialized::MaterializedLayout;
pub use types::{BlockLocation, GroupId, ParityGroupInfo, Slot, StreamAddr};
