//! Shared layout types: physical locations, stream addresses, slot
//! contents and parity-group records.

use cms_core::DiskId;
use std::fmt;

/// A physical disk block: which disk, which block number on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockLocation {
    /// The disk.
    pub disk: DiskId,
    /// Block number on that disk (0-based).
    pub block_no: u64,
}

impl BlockLocation {
    /// Convenience constructor.
    #[must_use]
    pub fn new(disk: u32, block_no: u64) -> Self {
        BlockLocation { disk: DiskId(disk), block_no }
    }
}

impl fmt::Display for BlockLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.disk, self.block_no)
    }
}

/// Logical address of a data block: which stream (super-clip), which index
/// within it. Single-stream layouts use stream 0 for everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamAddr {
    /// Stream (super-clip) id; `0..r` for the dynamic scheme, `0`
    /// otherwise.
    pub stream: u32,
    /// Index of the data block within the stream.
    pub index: u64,
}

impl StreamAddr {
    /// Convenience constructor.
    #[must_use]
    pub fn new(stream: u32, index: u64) -> Self {
        StreamAddr { stream, index }
    }

    /// The next block of the same stream.
    #[must_use]
    pub fn next(self) -> Self {
        StreamAddr { stream: self.stream, index: self.index + 1 }
    }
}

impl fmt::Display for StreamAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}#{}", self.stream, self.index)
    }
}

/// Identifier of a parity group within a layout.
pub type GroupId = usize;

/// What a physical disk block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Unallocated.
    Free,
    /// A data block of some stream.
    Data(StreamAddr),
    /// The parity block of a group.
    Parity(GroupId),
}

/// A fully resolved parity group: the stream addresses of its data blocks
/// and the physical locations of its redundancy blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityGroupInfo {
    /// Data members, in stream order.
    pub data: Vec<StreamAddr>,
    /// Where the (first) parity block lives.
    pub parity: BlockLocation,
    /// Redundancy blocks beyond the first — empty for the paper's
    /// single-parity groups (`m = 1`); a Reed–Solomon group with `m`
    /// redundancy shards lists its remaining `m − 1` here.
    pub extra: Vec<BlockLocation>,
}

impl ParityGroupInfo {
    /// Redundancy shard count `m` (1 for plain XOR parity).
    #[must_use]
    pub fn redundancy(&self) -> usize {
        1 + self.extra.len()
    }

    /// All redundancy block locations: the parity block, then the extras,
    /// in shard-index order (`k .. k + m`).
    pub fn redundancy_blocks(&self) -> impl Iterator<Item = BlockLocation> + '_ {
        std::iter::once(self.parity).chain(self.extra.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(BlockLocation::new(3, 7).to_string(), "disk3:7");
        assert_eq!(StreamAddr::new(2, 9).to_string(), "s2#9");
    }

    #[test]
    fn stream_addr_next_stays_in_stream() {
        let a = StreamAddr::new(1, 5);
        assert_eq!(a.next(), StreamAddr::new(1, 6));
    }

    #[test]
    fn slot_equality() {
        assert_eq!(Slot::Free, Slot::Free);
        assert_ne!(Slot::Data(StreamAddr::new(0, 0)), Slot::Parity(0));
    }
}
