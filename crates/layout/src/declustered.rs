//! Declustered-parity placement (Section 4.1, Figure 2) and its
//! super-clip variant for the dynamic reservation scheme (Section 5.1).
//!
//! The single-stream builder implements Procedure `placement()` verbatim:
//! the `i`-th data block goes on disk `i mod d`, in the lowest-numbered
//! disk block of row `j = ⌊i/d⌋ mod r` (i.e. block number `j + n·r` for
//! minimal `n`) that is not a parity block and not yet allocated.
//!
//! The super-clip builder differs only in pinning stream `k` to row `k`:
//! its `i`-th block goes on disk `i mod d` at block number `k + n·r`.
//!
//! Parity groups: within each *window* of `r` consecutive disk blocks, the
//! blocks mapped to the same PGT set form a group; the parity member
//! rotates through the set's disks across windows (see
//! [`Pgt::parity_disk`]).

use crate::materialized::MaterializedLayout;
use crate::types::{BlockLocation, ParityGroupInfo, Slot, StreamAddr};
use cms_bibd::Pgt;
use cms_core::{CmsError, Scheme};

/// Builds the single-stream declustered layout with `num_data_blocks`
/// blocks placed (Scheme: [`Scheme::DeclusteredParity`]).
///
/// # Errors
///
/// Returns [`CmsError::InvalidParams`] if assembly invariants fail (which
/// would indicate a construction bug, not bad input).
pub fn build(pgt: &Pgt, num_data_blocks: u64) -> Result<MaterializedLayout, CmsError> {
    let d = pgt.disks();
    let r = pgt.rows();
    let mut alloc = Allocator::new(pgt);
    let mut stream = Vec::with_capacity(num_data_blocks as usize);
    for i in 0..num_data_blocks {
        let disk = (i % u64::from(d)) as u32;
        let row = ((i / u64::from(d)) % u64::from(r)) as u32;
        let loc = alloc.place(disk, row, StreamAddr::new(0, i));
        stream.push(loc);
    }
    alloc.finish(Scheme::DeclusteredParity, vec![stream])
}

/// Builds the `r`-super-clip layout of the dynamic reservation scheme:
/// stream `k` holds `blocks_per_stream` data blocks, all mapped to PGT
/// row `k` (Scheme: [`Scheme::DynamicReservation`]).
///
/// # Errors
///
/// As for [`build`].
pub fn build_super_clips(
    pgt: &Pgt,
    blocks_per_stream: u64,
) -> Result<MaterializedLayout, CmsError> {
    let d = pgt.disks();
    let r = pgt.rows();
    let mut alloc = Allocator::new(pgt);
    let mut streams = Vec::with_capacity(r as usize);
    for k in 0..r {
        let mut stream = Vec::with_capacity(blocks_per_stream as usize);
        for i in 0..blocks_per_stream {
            let disk = (i % u64::from(d)) as u32;
            let loc = alloc.place(disk, k, StreamAddr::new(k, i));
            stream.push(loc);
        }
        streams.push(stream);
    }
    alloc.finish(Scheme::DynamicReservation, streams)
}

/// Shared allocation machinery for both declustered builders.
struct Allocator<'a> {
    pgt: &'a Pgt,
    /// Per-disk slot contents (grown on demand).
    slots: Vec<Vec<Slot>>,
    /// `cursor[disk][row]` = next window to try for data placement.
    cursor: Vec<Vec<u64>>,
    /// Precomputed `rowOf[set][member_pos]` → the row in which `set`
    /// appears in each member's column.
    row_of_set_in_col: Vec<Vec<u32>>,
}

impl<'a> Allocator<'a> {
    fn new(pgt: &'a Pgt) -> Self {
        let d = pgt.disks() as usize;
        let r = pgt.rows() as usize;
        let mut row_of_set_in_col = vec![Vec::new(); pgt.num_sets()];
        for (set, rows) in row_of_set_in_col.iter_mut().enumerate() {
            // occurrences are (row, col) pairs; align them with the sorted
            // member list.
            let mut occ: Vec<(u32, u32)> = pgt.occurrences(set).to_vec();
            occ.sort_by_key(|&(_, col)| col);
            *rows = occ.iter().map(|&(row, _)| row).collect();
        }
        Allocator {
            pgt,
            slots: vec![Vec::new(); d],
            cursor: vec![vec![0; r]; d],
            row_of_set_in_col,
        }
    }

    /// Is `(disk, row, window)` the parity position of its set?
    fn is_parity_position(&self, disk: u32, row: u32, window: u64) -> bool {
        let set = self.pgt.set_at(row, disk);
        self.pgt.parity_disk(set, window) == disk
    }

    /// Places a data block for `addr` on `disk` in the first non-parity,
    /// unallocated block of `row` (Figure 2's `n`-search).
    fn place(&mut self, disk: u32, row: u32, addr: StreamAddr) -> BlockLocation {
        let r = u64::from(self.pgt.rows());
        let n = loop {
            let n = self.cursor[disk as usize][row as usize];
            self.cursor[disk as usize][row as usize] += 1;
            if !self.is_parity_position(disk, row, n) {
                break n;
            }
        };
        let block_no = u64::from(row) + n * r;
        let slots = &mut self.slots[disk as usize];
        if slots.len() <= block_no as usize {
            slots.resize(block_no as usize + 1, Slot::Free);
        }
        debug_assert_eq!(slots[block_no as usize], Slot::Free, "double allocation");
        slots[block_no as usize] = Slot::Data(addr);
        BlockLocation::new(disk, block_no)
    }

    /// Enumerates parity groups over the placed data, marks parity slots,
    /// and assembles the layout.
    fn finish(
        mut self,
        scheme: Scheme,
        streams: Vec<Vec<BlockLocation>>,
    ) -> Result<MaterializedLayout, CmsError> {
        let d = self.pgt.disks();
        let r = u64::from(self.pgt.rows());
        let max_block = self.slots.iter().map(Vec::len).max().unwrap_or(0) as u64;
        let windows = max_block.div_ceil(r);

        let mut groups: Vec<ParityGroupInfo> = Vec::new();
        let mut group_of: Vec<Vec<usize>> =
            streams.iter().map(|s| vec![usize::MAX; s.len()]).collect();

        for set in 0..self.pgt.num_sets() {
            for window in 0..windows {
                let mut data = Vec::new();
                let parity_disk = self.pgt.parity_disk(set, window);
                for (pos, &member) in self.pgt.members(set).iter().enumerate() {
                    if member == parity_disk {
                        continue;
                    }
                    let row = self.row_of_set_in_col[set][pos];
                    let block_no = u64::from(row) + window * r;
                    if let Slot::Data(addr) = self
                        .slots
                        .get(member as usize)
                        .and_then(|s| s.get(block_no as usize))
                        .copied()
                        .unwrap_or(Slot::Free)
                    {
                        data.push(addr);
                    }
                }
                if data.is_empty() {
                    continue;
                }
                data.sort_unstable();
                // Locate and mark the parity slot.
                let ppos = self
                    .pgt
                    .members(set)
                    .iter()
                    .position(|&m| m == parity_disk)
                    .expect("parity disk is a member");
                let prow = self.row_of_set_in_col[set][ppos];
                let pblock = u64::from(prow) + window * r;
                let pslots = &mut self.slots[parity_disk as usize];
                if pslots.len() <= pblock as usize {
                    pslots.resize(pblock as usize + 1, Slot::Free);
                }
                debug_assert_eq!(pslots[pblock as usize], Slot::Free, "parity slot collision");
                let gid = groups.len();
                pslots[pblock as usize] = Slot::Parity(gid);
                for &addr in &data {
                    group_of[addr.stream as usize][addr.index as usize] = gid;
                }
                groups.push(ParityGroupInfo {
                    data,
                    parity: BlockLocation::new(parity_disk, pblock),
                    extra: Vec::new(),
                });
            }
        }

        MaterializedLayout::assemble(
            scheme,
            d,
            self.pgt.group_size(),
            streams,
            std::mem::take(&mut self.slots),
            groups,
            group_of,
            Some(self.pgt.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_bibd::{Design, DesignSource, Pgt};
    use cms_core::DiskId;

    /// The paper's Example 1 PGT (d = 7, p = 3).
    fn paper_pgt() -> Pgt {
        Pgt::new(&Design::new(
            7,
            3,
            vec![
                vec![0, 1, 3],
                vec![1, 2, 4],
                vec![2, 3, 5],
                vec![3, 4, 6],
                vec![4, 5, 0],
                vec![5, 6, 1],
                vec![6, 0, 2],
            ],
            DesignSource::ProjectivePlane,
        ))
    }

    /// Expected placement of the paper's worked example: the first 42 data
    /// blocks on the (7 disk × 9 block) table printed in Section 4.1.
    /// `expected[i] = (disk, block_no)` for data block `D_i`.
    fn paper_placement() -> Vec<(u32, u64)> {
        vec![
            (0, 0), // D0
            (1, 0), // D1
            (2, 0), // D2
            (3, 3), // D3  — the example the paper spells out
            (4, 3), // D4
            (5, 3), // D5
            (6, 3), // D6
            (0, 1), // D7
            (1, 1), // D8
            (2, 1), // D9
            (3, 1), // D10
            (4, 1), // D11
            (5, 4), // D12
            (6, 4), // D13
            (0, 2), // D14
            (1, 2), // D15
            (2, 2), // D16
            (3, 2), // D17
            (4, 2), // D18
            (5, 2), // D19
            (6, 5), // D20
            (0, 3), // D21
            (1, 6), // D22
            (2, 6), // D23
            (3, 6), // D24
            (4, 6), // D25
            (5, 6), // D26
            (6, 6), // D27
            (0, 4), // D28
            (1, 4), // D29
            (2, 4), // D30
            (3, 7), // D31
            (4, 7), // D32
            (5, 7), // D33
            (6, 7), // D34
            (0, 5), // D35
            (1, 5), // D36
            (2, 8), // D37
            (3, 5), // D38
            (4, 8), // D39
            (5, 8), // D40
            (6, 8), // D41
        ]
    }

    #[test]
    fn reproduces_paper_placement_table() {
        let layout = build(&paper_pgt(), 42).unwrap();
        for (i, &(disk, block)) in paper_placement().iter().enumerate() {
            let loc = layout.locate(StreamAddr::new(0, i as u64));
            assert_eq!(
                (loc.disk.raw(), loc.block_no),
                (disk, block),
                "data block D{i} must be at disk{disk}:{block}, got {loc}"
            );
        }
    }

    #[test]
    fn paper_parity_examples_hold() {
        // "P0 is the parity block for data blocks D0 and D1" (on disk 3,
        // block 0); "P1 is the parity block for data blocks D8 and D2"
        // (on disk 4, block 0).
        let layout = build(&paper_pgt(), 42).unwrap();
        let g0 = layout.group(layout.group_id_of(StreamAddr::new(0, 0)));
        assert_eq!(g0.data, vec![StreamAddr::new(0, 0), StreamAddr::new(0, 1)]);
        assert_eq!(g0.parity, BlockLocation::new(3, 0));

        let g1 = layout.group(layout.group_id_of(StreamAddr::new(0, 2)));
        assert_eq!(g1.data, vec![StreamAddr::new(0, 2), StreamAddr::new(0, 8)]);
        assert_eq!(g1.parity, BlockLocation::new(4, 0));
    }

    #[test]
    fn group_members_live_on_member_disks() {
        let layout = build(&paper_pgt(), 42).unwrap();
        let pgt = layout.pgt().unwrap();
        for i in 0..42u64 {
            let addr = StreamAddr::new(0, i);
            let loc = layout.locate(addr);
            let set = pgt.set_of_block(loc.disk.raw(), loc.block_no);
            let g = layout.group(layout.group_id_of(addr));
            // Parity disk must be the rotated member for this window.
            let window = pgt.window_of_block(loc.block_no);
            assert_eq!(g.parity.disk.raw(), pgt.parity_disk(set, window));
            // All data members map to the same set and window.
            for &other in &g.data {
                let oloc = layout.locate(other);
                assert_eq!(pgt.set_of_block(oloc.disk.raw(), oloc.block_no), set);
                assert_eq!(pgt.window_of_block(oloc.block_no), window);
            }
        }
    }

    #[test]
    fn consecutive_blocks_on_consecutive_disks() {
        let layout = build(&paper_pgt(), 42).unwrap();
        for i in 0..41u64 {
            let a = layout.locate(StreamAddr::new(0, i));
            let b = layout.locate(StreamAddr::new(0, i + 1));
            assert_eq!(b.disk, a.disk.successor(7), "block {i} → {}", i + 1);
        }
    }

    #[test]
    fn property2_row_follows_to_next_disk() {
        // Section 4.2 Property 2: if two data blocks on a disk map to the
        // same row, their successors (next block of each clip) map to the
        // same row too.
        let layout = build(&paper_pgt(), 280).unwrap();
        for i in 0..279u64 {
            let row_a = layout.row_of(StreamAddr::new(0, i)).unwrap();
            let row_b = layout.row_of(StreamAddr::new(0, i + 1)).unwrap();
            // Following the paper's round-robin: the successor keeps the
            // row unless the disk wraps (then the row advances by one).
            if (i + 1) % 7 == 0 {
                assert_eq!(row_b, (row_a + 1) % 3, "wrap at block {i}");
            } else {
                assert_eq!(row_b, row_a, "no wrap at block {i}");
            }
        }
    }

    #[test]
    fn super_clip_streams_pin_rows() {
        let pgt = paper_pgt();
        let layout = build_super_clips(&pgt, 70).unwrap();
        assert_eq!(layout.num_streams(), 3);
        for k in 0..3u32 {
            for i in 0..70u64 {
                let addr = StreamAddr::new(k, i);
                assert_eq!(
                    layout.row_of(addr),
                    Some(k),
                    "stream {k} block {i} must map to row {k}"
                );
                let loc = layout.locate(addr);
                assert_eq!(loc.disk.raw(), (i % 7) as u32);
            }
        }
    }

    #[test]
    fn super_clip_group_partners_lie_on_set_disks() {
        // A stream-k block on disk j belongs to set PGT[k][j]; its group
        // partners (possibly blocks of *other* super-clips — groups mix
        // streams by design) must lie exactly on that set's other disks.
        let pgt = paper_pgt();
        let layout = build_super_clips(&pgt, 70).unwrap();
        for k in 0..3u32 {
            for i in 0..70u64 {
                let addr = StreamAddr::new(k, i);
                let loc = layout.locate(addr);
                let set = pgt.set_at(k, loc.disk.raw());
                let g = layout.group(layout.group_id_of(addr));
                for &other in &g.data {
                    let od = layout.locate(other).disk.raw();
                    assert!(
                        pgt.members(set).contains(&od),
                        "partner of {addr} on disk {od} outside set {set}"
                    );
                }
                assert!(pgt.members(set).contains(&g.parity.disk.raw()));
            }
        }
    }

    #[test]
    fn reconstruction_reads_exclude_self_and_end_with_parity() {
        let layout = build(&paper_pgt(), 42).unwrap();
        let addr = StreamAddr::new(0, 0);
        let reads = layout.reconstruction_reads(addr);
        // Group of D0: data D0, D1, parity on disk 3 → reads = [D1, P0].
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0], layout.locate(StreamAddr::new(0, 1)));
        assert_eq!(reads[1], BlockLocation::new(3, 0));
        let self_loc = layout.locate(addr);
        assert!(!reads.contains(&self_loc));
    }

    #[test]
    fn storage_overhead_near_one_over_p_minus_one() {
        // For p = 3, parity overhead ≈ 1/(p−1) = 50% once windows fill.
        let layout = build(&paper_pgt(), 4200).unwrap();
        let overhead = layout.parity_overhead();
        assert!(
            (overhead - 0.5).abs() < 0.05,
            "overhead {overhead} should be near 0.5"
        );
    }

    #[test]
    fn balanced_use_of_disks() {
        let layout = build(&paper_pgt(), 700).unwrap();
        let used: Vec<u64> = (0..7).map(|d| layout.blocks_used(DiskId(d))).collect();
        let (min, max) = (
            *used.iter().min().unwrap(),
            *used.iter().max().unwrap(),
        );
        assert!(max - min <= 3, "disk usage spread too wide: {used:?}");
    }

    #[test]
    fn works_with_fallback_designs_for_paper_dimensions() {
        use cms_bibd::{best_design, DesignRequest};
        for p in [4u32, 8, 16] {
            let design = best_design(DesignRequest::new(32, p)).unwrap();
            let pgt = Pgt::new(&design);
            let layout = build(&pgt, 3200).unwrap();
            assert_eq!(layout.total_data_blocks(), 3200);
            // Every data block is in a group whose parity is elsewhere.
            for i in 0..3200u64 {
                let addr = StreamAddr::new(0, i);
                let g = layout.group(layout.group_id_of(addr));
                assert_ne!(g.parity.disk, layout.locate(addr).disk);
            }
        }
    }
}
