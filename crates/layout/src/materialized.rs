//! [`MaterializedLayout`]: the fully resolved placement all builders
//! produce and everything downstream consumes.

use crate::types::{BlockLocation, GroupId, ParityGroupInfo, Slot, StreamAddr};
use cms_bibd::Pgt;
use cms_core::{CmsError, DiskId, Scheme};

/// A complete, immutable placement of data and parity blocks on a disk
/// array.
#[derive(Debug, Clone)]
pub struct MaterializedLayout {
    scheme: Scheme,
    d: u32,
    p: u32,
    /// `streams[s][i]` = physical location of data block `i` of stream `s`.
    streams: Vec<Vec<BlockLocation>>,
    /// `slots[disk]` = contents of each disk block (dense prefix; blocks
    /// beyond the vector are `Free`).
    slots: Vec<Vec<Slot>>,
    /// Parity groups.
    groups: Vec<ParityGroupInfo>,
    /// `group_of[s][i]` = group of data block `i` of stream `s`.
    group_of: Vec<Vec<GroupId>>,
    /// The PGT, for the declustered family (None otherwise).
    pgt: Option<Pgt>,
}

impl MaterializedLayout {
    /// Assembles a layout from builder output and validates its
    /// invariants. Intended for use by the builder modules; external
    /// callers use `declustered::build` etc.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] when an invariant is violated:
    /// a stream address and slot table disagree, a group has members on
    /// duplicate disks, or a parity block collides with data.
    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    pub(crate) fn assemble(
        scheme: Scheme,
        d: u32,
        p: u32,
        streams: Vec<Vec<BlockLocation>>,
        slots: Vec<Vec<Slot>>,
        groups: Vec<ParityGroupInfo>,
        group_of: Vec<Vec<GroupId>>,
        pgt: Option<Pgt>,
    ) -> Result<Self, CmsError> {
        let layout = MaterializedLayout { scheme, d, p, streams, slots, groups, group_of, pgt };
        layout.check_invariants()?;
        Ok(layout)
    }

    fn check_invariants(&self) -> Result<(), CmsError> {
        // Redundancy is a layout-wide constant: every group carries the
        // same shard count `m` (trailing groups may be short on data, but
        // never on redundancy).
        if let Some(first) = self.groups.first() {
            let m = first.redundancy();
            if self.groups.iter().any(|g| g.redundancy() != m) {
                return Err(CmsError::invalid_params("groups disagree on redundancy m"));
            }
        }
        if self.slots.len() != self.d as usize {
            return Err(CmsError::invalid_params("slot table width != d"));
        }
        if self.streams.len() != self.group_of.len() {
            return Err(CmsError::invalid_params("streams and group_of disagree"));
        }
        // Every stream block's slot must point back at it.
        for (s, stream) in self.streams.iter().enumerate() {
            for (i, loc) in stream.iter().enumerate() {
                let slot = self.slot(loc.disk, loc.block_no);
                let expect = Slot::Data(StreamAddr::new(s as u32, i as u64));
                if slot != expect {
                    return Err(CmsError::invalid_params(format!(
                        "slot {loc} holds {slot:?}, expected {expect:?}"
                    )));
                }
            }
            if self.group_of[s].len() != stream.len() {
                return Err(CmsError::invalid_params("group_of length mismatch"));
            }
        }
        // Groups: members on pairwise distinct disks, every redundancy
        // slot marked.
        for (gid, g) in self.groups.iter().enumerate() {
            let mut disks: Vec<DiskId> = g
                .data
                .iter()
                .map(|&a| self.locate(a).disk)
                .chain(g.redundancy_blocks().map(|loc| loc.disk))
                .collect();
            disks.sort_unstable();
            let before = disks.len();
            disks.dedup();
            if disks.len() != before {
                return Err(CmsError::invalid_params(format!(
                    "group {gid} has two members on one disk"
                )));
            }
            for loc in g.redundancy_blocks() {
                match self.slot(loc.disk, loc.block_no) {
                    Slot::Parity(owner) if owner == gid => {}
                    other => {
                        return Err(CmsError::invalid_params(format!(
                            "parity slot of group {gid} holds {other:?}"
                        )));
                    }
                }
            }
            for &a in &g.data {
                if self.group_of[a.stream as usize][a.index as usize] != gid {
                    return Err(CmsError::invalid_params(format!(
                        "group_of({a}) does not point at group {gid}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The scheme this layout implements.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of disks `d`.
    #[must_use]
    pub fn disks(&self) -> u32 {
        self.d
    }

    /// Parity group size `p`.
    #[must_use]
    pub fn parity_group_size(&self) -> u32 {
        self.p
    }

    /// Number of streams (`r` for the dynamic scheme, 1 otherwise).
    #[must_use]
    pub fn num_streams(&self) -> u32 {
        self.streams.len() as u32
    }

    /// Number of data blocks placed in `stream`.
    #[must_use]
    pub fn stream_len(&self, stream: u32) -> u64 {
        self.streams[stream as usize].len() as u64
    }

    /// Physical location of a data block.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    #[must_use]
    pub fn locate(&self, addr: StreamAddr) -> BlockLocation {
        self.streams[addr.stream as usize][addr.index as usize]
    }

    /// Contents of a physical disk block (Free beyond the placed region).
    #[must_use]
    pub fn slot(&self, disk: DiskId, block_no: u64) -> Slot {
        self.slots[disk.idx()]
            .get(block_no as usize)
            .copied()
            .unwrap_or(Slot::Free)
    }

    /// The parity group containing a data block.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    #[must_use]
    pub fn group_id_of(&self, addr: StreamAddr) -> GroupId {
        self.group_of[addr.stream as usize][addr.index as usize]
    }

    /// Group record by id.
    #[must_use]
    pub fn group(&self, gid: GroupId) -> &ParityGroupInfo {
        &self.groups[gid]
    }

    /// Number of parity groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Physical locations of the *other* members of `addr`'s parity group
    /// (data blocks first, then the redundancy blocks) — exactly the
    /// blocks a declustered-scheme server must fetch to reconstruct
    /// `addr` after its disk fails. With `m > 1` redundancy shards the
    /// list has more entries than a decode strictly needs (any `k`
    /// suffice); the caller filters to the survivors it can reach.
    #[must_use]
    pub fn reconstruction_reads(&self, addr: StreamAddr) -> Vec<BlockLocation> {
        let mut out = Vec::new();
        self.reconstruction_reads_into(addr, &mut out);
        out
    }

    /// Allocation-free [`Self::reconstruction_reads`]: clears and fills
    /// `out`, reusing its capacity (DESIGN.md §7).
    pub fn reconstruction_reads_into(&self, addr: StreamAddr, out: &mut Vec<BlockLocation>) {
        let g = self.group(self.group_id_of(addr));
        out.clear();
        out.extend(
            g.data
                .iter()
                .filter(|&&a| a != addr)
                .map(|&a| self.locate(a)),
        );
        out.extend(g.redundancy_blocks());
    }

    /// Redundancy shards per group `m` (1 for every single-parity
    /// layout; the clustered family can be built with more).
    #[must_use]
    pub fn redundancy(&self) -> u32 {
        self.groups.first().map_or(1, |g| g.redundancy() as u32)
    }

    /// The PGT, for the declustered family.
    #[must_use]
    pub fn pgt(&self) -> Option<&Pgt> {
        self.pgt.as_ref()
    }

    /// For the declustered family: the PGT row a data block maps to
    /// (`block_no mod r`). `None` for layouts without a PGT.
    #[must_use]
    pub fn row_of(&self, addr: StreamAddr) -> Option<u32> {
        let pgt = self.pgt.as_ref()?;
        let loc = self.locate(addr);
        Some((loc.block_no % u64::from(pgt.rows())) as u32)
    }

    /// Disk holding the parity block of `addr`'s group — the disk a
    /// flat-placement server must charge a contingency read to.
    #[must_use]
    pub fn parity_disk_of(&self, addr: StreamAddr) -> DiskId {
        self.group(self.group_id_of(addr)).parity.disk
    }

    /// Highest used block number per disk (capacity accounting).
    #[must_use]
    pub fn blocks_used(&self, disk: DiskId) -> u64 {
        self.slots[disk.idx()].len() as u64
    }

    /// Total data blocks across all streams.
    #[must_use]
    pub fn total_data_blocks(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Storage overhead: parity blocks / data blocks.
    #[must_use]
    pub fn parity_overhead(&self) -> f64 {
        let data = self.total_data_blocks();
        if data == 0 {
            return 0.0;
        }
        self.groups.iter().map(|g| g.redundancy() as u64).sum::<u64>() as f64 / data as f64
    }
}
