//! Property-based tests for the placement engines: for arbitrary array
//! dimensions, group sizes and store sizes, every layout must keep its
//! structural invariants — these are what the fault-tolerance guarantees
//! physically rest on.

use cms_bibd::{best_design, DesignRequest, Pgt};
use cms_core::{DiskId, Scheme};
use cms_layout::{clustered, declustered, flat, Slot, StreamAddr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Declustered: consecutive stream blocks land on consecutive disks
    /// (the paper's round-robin invariant that makes rounds rotate), and
    /// parity load is near-uniform across disks.
    #[test]
    fn declustered_round_robin_and_parity_balance(
        d in 5u32..14,
        k in 3u32..6,
        windows in 3u64..12,
        seed in 0u64..50,
    ) {
        prop_assume!(k <= d);
        let design = best_design(DesignRequest { v: d, k, allow_fallback: true, seed }).unwrap();
        let pgt = Pgt::new(&design);
        let blocks = u64::from(d) * u64::from(pgt.rows()) * windows;
        let layout = declustered::build(&pgt, blocks).unwrap();

        for i in 0..blocks - 1 {
            let a = layout.locate(StreamAddr::new(0, i));
            let b = layout.locate(StreamAddr::new(0, i + 1));
            prop_assert_eq!(b.disk, a.disk.successor(d), "round-robin at {}", i);
        }

        // Parity blocks spread across disks: no disk holds more than ~3×
        // its fair share once several windows are filled.
        let counts: Vec<u64> = (0..d)
            .map(|disk| {
                (0..layout.blocks_used(DiskId(disk)))
                    .filter(|&b| matches!(layout.slot(DiskId(disk), b), Slot::Parity(_)))
                    .count() as u64
            })
            .collect();
        let total: u64 = counts.iter().sum();
        prop_assert!(total > 0);
        let fair = total / u64::from(d);
        for (disk, &c) in counts.iter().enumerate() {
            prop_assert!(
                c <= 3 * fair + 3,
                "disk {disk} holds {c} parity blocks, fair share {fair}"
            );
        }
    }

    /// Every scheme's layout: each data block's group has its parity on a
    /// different disk than every data member, and group data members are
    /// consecutive stream indices (the sequentiality prefetching relies
    /// on) for the clustered/flat schemes.
    #[test]
    fn groups_are_consecutive_and_disjoint_from_parity(
        clusters in 2u32..5,
        p in 2u32..6,
        rows in 2u64..10,
    ) {
        let d = clusters * p;
        let n = u64::from(d) * rows;
        for layout in [
            clustered::build(Scheme::PrefetchParityDisks, d, p, n * (u64::from(p) - 1) / u64::from(p)).unwrap(),
            flat::build(d, p, n).unwrap(),
        ] {
            for gid in 0..layout.num_groups() {
                let g = layout.group(gid);
                // Consecutive stream indices.
                for w in g.data.windows(2) {
                    prop_assert_eq!(w[1].index, w[0].index + 1, "group {} not consecutive", gid);
                }
                for &a in &g.data {
                    prop_assert_ne!(layout.locate(a).disk, g.parity.disk);
                }
            }
        }
    }

    /// Super-clip layout: stream k's blocks sit only on disk blocks
    /// congruent to k modulo r — the §5.1 rule that pins super-clips to
    /// PGT rows.
    #[test]
    fn super_clips_pin_to_rows(
        d in 5u32..12,
        k in 3u32..5,
        len in 10u64..60,
        seed in 0u64..50,
    ) {
        prop_assume!(k <= d);
        let design = best_design(DesignRequest { v: d, k, allow_fallback: true, seed }).unwrap();
        let pgt = Pgt::new(&design);
        let r = u64::from(pgt.rows());
        let layout = declustered::build_super_clips(&pgt, len).unwrap();
        for stream in 0..pgt.rows() {
            for i in 0..len {
                let loc = layout.locate(StreamAddr::new(stream, i));
                prop_assert_eq!(
                    loc.block_no % r,
                    u64::from(stream),
                    "stream {} block {} at {:?}",
                    stream,
                    i,
                    loc
                );
            }
        }
    }

    /// Storage overhead converges to the theoretical ratio: declustered
    /// and flat pay ~1/(p−1) parity per data block; clustered dedicates
    /// 1/p of the disks.
    #[test]
    fn parity_overhead_matches_theory(p in 3u32..6, rows in 20u64..40) {
        let d = 4 * p;
        let n = u64::from(d) * rows;
        let layout = flat::build(d, p, n).unwrap();
        let expect = 1.0 / f64::from(p - 1);
        let got = layout.parity_overhead();
        prop_assert!(
            (got - expect).abs() < 0.15 * expect + 0.02,
            "flat overhead {got} vs {expect}"
        );
    }
}
