//! # cms-sim — the round-driven CM-server simulator
//!
//! Executes the full server of the paper, one round at a time:
//!
//! 1. client requests arrive (Poisson) and queue in the FIFO pending
//!    list;
//! 2. the head of the queue is offered to the scheme's admission
//!    controller until it rejects;
//! 3. every active client schedules its next block fetch(es) according to
//!    the scheme's retrieval policy (double-buffered single blocks for
//!    the declustered family and the non-clustered baseline;
//!    staggered whole-group fetches for the pre-fetching schemes;
//!    lock-step long-round group fetches for streaming RAID);
//! 4. a failed disk's fetches are replaced by the scheme's recovery
//!    reads (whole parity group for declustered, the parity block alone
//!    for the pre-fetching schemes, nothing extra for streaming RAID,
//!    a scramble of re-reads for the non-clustered baseline);
//! 5. each disk serves its queue earliest-deadline-first within the
//!    per-round budget `q`, with service time accounted by `cms-disk`;
//! 6. clients consume one block per round; a block that is not in the
//!    buffer when its round comes is a **hiccup** — the paper's
//!    guarantee is that schemes 1–5 never hiccup through a single disk
//!    failure, and the simulator's whole purpose is to check exactly
//!    that, byte-for-byte: reconstructed blocks are XOR-verified against
//!    the synthetic ground truth.
//!
//! The simulator is deterministic under a fixed seed, which makes the
//! Figure 6 reproduction and the failure-drill tests exact.
//!
//! ```
//! use cms_core::{DiskId, Scheme};
//! use cms_model::{tuned_point, ModelInput};
//! use cms_sim::{SimConfig, Simulator};
//!
//! let input = ModelInput::sigmod96(64 << 20).with_storage_blocks(2_000);
//! let mut inp = input;
//! inp.d = 8;
//! let point = tuned_point(Scheme::DeclusteredParity, &inp, 4, 1).unwrap();
//! let mut cfg = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, 8);
//! cfg.catalog_clips = 30;
//! cfg.clip_len = 20;
//! cfg.arrival_rate = 2.0;
//! cfg.rounds = 100;
//! let cfg = cfg.with_failure(40, DiskId(1)).with_verification();
//!
//! let metrics = Simulator::new(cfg).unwrap().run();
//! assert_eq!(metrics.hiccups, 0);          // rate guarantees held
//! assert_eq!(metrics.parity_mismatches, 0); // rebuilt bytes identical
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod engine;
#[cfg(feature = "bench-alloc")]
pub mod hotgauge;
pub mod metrics;
pub mod oneshot;
mod table;

pub use config::{FailureScenario, SimConfig};
pub use engine::{SessionExport, Simulator};
pub use metrics::{Metrics, RoundReport};
pub use oneshot::{run_case, CaseRun};
// Re-exported so simulator users can script multi-event fault
// campaigns without depending on cms-fault directly.
pub use cms_fault::{FaultEvent, FaultSchedule, ScheduledEvent};
// Re-exported so simulator users can configure and consume tracing
// without depending on cms-trace directly.
pub use cms_trace::{
    EventKind, Histogram, TraceEvent, TraceOutput, TraceSink, TraceSpec, TraceSummary,
};
