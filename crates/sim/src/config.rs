//! Simulation configuration.

use cms_core::{CmsError, DiskId, Scheme};
use cms_fault::FaultSchedule;
use cms_model::CapacityPoint;
use cms_trace::TraceSpec;

/// A single-disk failure (and optional repair) to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureScenario {
    /// Round at which the disk fails.
    pub fail_round: u64,
    /// The failing disk.
    pub disk: DiskId,
    /// Optional round at which the disk returns to service.
    pub repair_round: Option<u64>,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The fault-tolerance scheme under test.
    pub scheme: Scheme,
    /// Number of disks `d`.
    pub d: u32,
    /// Parity group size `p`.
    pub p: u32,
    /// Redundancy shards per parity group `m`: 1 is the paper's XOR
    /// parity; `m >= 2` uses the GF(256) Reed–Solomon codec and tolerates
    /// up to `m` concurrent disk losses per group. Only the clustered
    /// parity-disk schemes (pre-fetching with parity disks, streaming
    /// RAID) support `m >= 2`.
    pub m: u32,
    /// Per-disk (per-cluster for streaming RAID) round budget `q`.
    pub q: u32,
    /// Contingency reservation `f` (ignored by schemes without one).
    pub f: u32,
    /// Stripe-unit size `b` in bytes (drives round timing).
    pub block_bytes: u64,
    /// Number of clips in the catalog.
    pub catalog_clips: u64,
    /// Clip length in blocks (= rounds of playback).
    pub clip_len: u64,
    /// Heterogeneous lengths: each clip is `clip_len + h` blocks for a
    /// seeded `h ∈ 0..=clip_len_spread`. 0 (the paper) = uniform lengths.
    pub clip_len_spread: u64,
    /// Mean Poisson arrivals per round.
    pub arrival_rate: f64,
    /// Zipf exponent for clip choice; 0 = uniform (the paper).
    pub zipf_theta: f64,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Failure to inject, if any. The single-event predecessor of
    /// [`SimConfig::faults`]; both may be set and both are applied.
    pub failure: Option<FailureScenario>,
    /// Declarative multi-event fault schedule (hard failures, repairs,
    /// transient outages, slow-disk windows), drained at the start of each
    /// round before admission. See [`cms_fault::FaultSchedule`].
    pub faults: Option<FaultSchedule>,
    /// Enforce degraded-mode admission: while any disk is down, cap the
    /// active stream count at `healthy_disks × (q − f)` (zero for
    /// NonClustered or a second concurrent outage) and refuse admissions
    /// beyond it, counting each refusal instead of risking hiccups.
    pub degraded_admission: bool,
    /// Verify reconstructed blocks byte-for-byte against synthetic
    /// content (slower; used by the failure drills).
    pub verify_parity: bool,
    /// Bytes of synthetic content per block used for verification
    /// (decoupled from the modeled block size `b` so drills stay fast).
    pub content_bytes: usize,
    /// RNG seed (arrivals + clip choice + design construction).
    pub seed: u64,
    /// How many queued requests the admission pass may inspect per round
    /// (FIFO order). 1 = strict head-of-line; larger values let requests
    /// whose resources are free bypass a blocked head (cf. ORS96).
    pub admission_scan: usize,
    /// Once the head has waited this many rounds, bypass is suspended
    /// until it is admitted — the bound that keeps bypass starvation-free.
    pub aging_limit: u64,
    /// Rebuild the failed disk's contents onto a hot spare in the
    /// background, using only slack bandwidth (per-disk budget left after
    /// client and recovery reads). When the last block is rebuilt the
    /// array returns to normal operation.
    pub auto_rebuild: bool,
    /// Worker threads for the per-round disk service loop. `0` (the
    /// default) uses the machine's available parallelism; `1` services
    /// disks sequentially on the calling thread. Results are
    /// bit-identical at any thread count — per-disk accounting is
    /// computed locally and merged in disk-ID order (see DESIGN.md's
    /// determinism contract).
    pub threads: usize,
    /// Event tracing: off by default; see [`TraceSpec`] for summary-only,
    /// JSONL and CSV modes. Traces obey the same determinism contract as
    /// the metrics — byte-identical at any thread count.
    pub trace: TraceSpec,
}

impl SimConfig {
    /// The paper's Section 8.2 experiment for a given scheme and a solved
    /// capacity point: 1000 clips × 50 rounds, Poisson λ = 20, uniform
    /// choice, 600 rounds.
    #[must_use]
    pub fn sigmod96(scheme: Scheme, point: &CapacityPoint, d: u32) -> Self {
        SimConfig {
            scheme,
            d,
            p: point.p,
            m: point.m,
            q: point.q,
            f: point.f,
            block_bytes: point.block_bytes,
            catalog_clips: 1000,
            clip_len: 50,
            clip_len_spread: 0,
            arrival_rate: 20.0,
            zipf_theta: 0.0,
            rounds: 600,
            failure: None,
            faults: None,
            degraded_admission: false,
            verify_parity: false,
            content_bytes: 512,
            seed: 0x51_6D0D,
            admission_scan: 64,
            aging_limit: 200,
            auto_rebuild: false,
            threads: 0,
            trace: TraceSpec::off(),
        }
    }

    /// Sets the disk-service worker thread count (`0` = available
    /// parallelism, `1` = sequential). Purely a wall-clock knob: metrics
    /// are identical at every setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables background rebuild onto a hot spare.
    #[must_use]
    pub fn with_rebuild(mut self) -> Self {
        self.auto_rebuild = true;
        self
    }

    /// Sets the redundancy shard count `m` (1 = XOR parity, `m >= 2` =
    /// Reed–Solomon; clustered parity-disk schemes only).
    #[must_use]
    pub fn with_redundancy(mut self, m: u32) -> Self {
        self.m = m;
        self
    }

    /// Adds a failure scenario.
    #[must_use]
    pub fn with_failure(mut self, fail_round: u64, disk: DiskId) -> Self {
        self.failure = Some(FailureScenario { fail_round, disk, repair_round: None });
        self
    }

    /// Attaches a declarative multi-event fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enforces the degraded-mode admission cap while any disk is down.
    #[must_use]
    pub fn with_degraded_admission(mut self) -> Self {
        self.degraded_admission = true;
        self
    }

    /// Enables byte-level verification of every reconstruction.
    #[must_use]
    pub fn with_verification(mut self) -> Self {
        self.verify_parity = true;
        self
    }

    /// Sets the event-tracing mode (see [`TraceSpec`]).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }

    /// Validates structural requirements.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for empty catalogs, zero-length
    /// clips, zero budgets or out-of-range failure disks.
    pub fn validate(&self) -> Result<(), CmsError> {
        if self.d < 2 || self.p < 2 || self.p > self.d {
            return Err(CmsError::invalid_params("need d >= 2 and 2 <= p <= d"));
        }
        if self.m == 0 || self.m >= self.p {
            return Err(CmsError::invalid_params("need 1 <= m < p"));
        }
        if self.m > 1
            && !matches!(self.scheme, Scheme::PrefetchParityDisks | Scheme::StreamingRaid)
        {
            return Err(CmsError::invalid_params(format!(
                "{} supports only single-parity groups (m = 1)",
                self.scheme
            )));
        }
        if self.q == 0 || self.catalog_clips == 0 || self.clip_len == 0 || self.rounds == 0 {
            return Err(CmsError::invalid_params(
                "q, catalog size, clip length and duration must be >= 1",
            ));
        }
        if self.block_bytes == 0 {
            return Err(CmsError::invalid_params("block size must be >= 1"));
        }
        if let Some(fs) = &self.failure {
            if fs.disk.raw() >= self.d {
                return Err(CmsError::invalid_params("failure disk out of range"));
            }
        }
        if let Some(faults) = &self.faults {
            faults.validate(self.d)?;
        }
        if self.arrival_rate < 0.0 || !self.arrival_rate.is_finite() {
            return Err(CmsError::invalid_params("arrival rate must be finite and >= 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> CapacityPoint {
        CapacityPoint {
            scheme: Scheme::DeclusteredParity,
            p: 4,
            m: 1,
            block_bytes: 256 * 1024,
            q: 20,
            f: 2,
            r: 11,
            total_clips: 576,
        }
    }

    #[test]
    fn paper_defaults() {
        let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32);
        assert_eq!(c.catalog_clips, 1000);
        assert_eq!(c.clip_len, 50);
        assert_eq!(c.arrival_rate, 20.0);
        assert_eq!(c.rounds, 600);
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32)
            .with_failure(100, DiskId(3))
            .with_verification()
            .with_threads(4);
        assert!(c.verify_parity);
        assert_eq!(c.failure.unwrap().fail_round, 100);
        assert_eq!(c.threads, 4);
        c.validate().unwrap();
    }

    #[test]
    fn any_thread_count_validates() {
        // threads is a wall-clock knob, not a semantic one: auto (0),
        // sequential (1) and oversubscribed counts are all legal.
        for threads in [0usize, 1, 2, 64, 1000] {
            let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32)
                .with_threads(threads);
            c.validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32);
        c.p = 64;
        assert!(c.validate().is_err());

        let mut c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32);
        c.q = 0;
        assert!(c.validate().is_err());

        let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32)
            .with_failure(1, DiskId(99));
        assert!(c.validate().is_err());

        let mut c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32);
        c.arrival_rate = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn redundancy_is_validated_per_scheme() {
        // m >= 2 only for the clustered parity-disk schemes, and within
        // 1 <= m < p.
        let mut c = SimConfig::sigmod96(Scheme::PrefetchParityDisks, &point(), 32)
            .with_redundancy(2);
        c.validate().unwrap();
        c.m = 0;
        assert!(c.validate().is_err());
        c.m = c.p;
        assert!(c.validate().is_err());

        let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32)
            .with_redundancy(2);
        assert!(c.validate().is_err());
        let c = SimConfig::sigmod96(Scheme::PrefetchFlat, &point(), 32).with_redundancy(3);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_schedules_are_validated_against_d() {
        use cms_fault::FaultSchedule;
        let sched = FaultSchedule::parse("@10 fail 3\n@40 repair 3\n").unwrap();
        let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32)
            .with_faults(sched.clone())
            .with_degraded_admission();
        assert!(c.degraded_admission);
        c.validate().unwrap();

        // A disk id beyond the array is rejected at validate() time.
        let bad = FaultSchedule::parse("@10 fail 40\n").unwrap();
        let c = SimConfig::sigmod96(Scheme::DeclusteredParity, &point(), 32).with_faults(bad);
        assert!(c.validate().is_err());
    }
}
