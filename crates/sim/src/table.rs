//! Struct-of-arrays stream table — the engine's hot client store
//! (DESIGN.md §7).
//!
//! The per-round pipeline touches every active stream several times a
//! round (issue, deliver, consume). A `BTreeMap<RequestId, Client>`
//! pays a pointer-chasing tree walk per touch; at thousands of streams
//! that dominates the round. The table instead keeps one contiguous
//! column per field, indexed by a dense **slot** id, so the round loops
//! are linear scans and every per-stream access is one bounds-checked
//! index.
//!
//! Identity and ordering are reconciled by three small side structures,
//! touched only at admission/completion rate (not per block):
//!
//! - `free` — slot free-list; completed slots are reused, columns never
//!   shrink, so steady-state rounds allocate nothing.
//! - `order` — `(RequestId, slot)` pairs sorted by id. Iterating it
//!   reproduces exactly the ascending-id iteration order of the old
//!   `BTreeMap`, which the determinism contract (trace byte equality)
//!   depends on. Removal does **not** edit `order`: the entry goes
//!   stale (its slot no longer carries its id) and is skipped by the
//!   [`StreamTable::live`] check, then swept out by
//!   [`StreamTable::maybe_compact`]. Request ids are never reused, so
//!   staleness needs no generation counters.
//! - `staged` — admissions made during a round's admission scan, in
//!   ascending-id order. [`StreamTable::flush_staged`] merges them into
//!   `order` in one pass (bulk `O(n + k)` instead of `k` mid-vector
//!   inserts).
//!
//! The buffer map (`avail`) and reconstruction counters
//! (`recon_pending`) that were per-client `BTreeMap`s become small
//! sorted vectors whose capacity is retained across slot reuse — see
//! the `sv_*` helpers.

use cms_core::{RequestId, Scheme};
use cms_workload::ClipPlacement;

/// Sentinel stored in [`StreamTable::request`] for a free slot. Real
/// request ids count up from zero and never reach it.
pub(crate) const FREE: RequestId = RequestId(u64::MAX);

/// The dense stream store. Columns are indexed by slot; all slots with
/// `request[slot] != FREE` are live.
#[derive(Default)]
pub(crate) struct StreamTable {
    /// Owning request per slot (`FREE` when the slot is on the free
    /// list). The staleness oracle for `order` entries and in-flight
    /// fetches alike.
    pub(crate) request: Vec<RequestId>,
    /// Clip placement being played.
    pub(crate) placement: Vec<ClipPlacement>,
    /// Round the stream was admitted.
    pub(crate) admitted_at: Vec<u64>,
    /// For streaming RAID: first long-round fetch boundary.
    pub(crate) first_boundary: Vec<u64>,
    /// Blocks whose fetches have been issued (count, in order).
    pub(crate) issued: Vec<u64>,
    /// Consumption progress (blocks, in order; skipped blocks count).
    pub(crate) consumed: Vec<u64>,
    /// Sorted `(idx, round available)` buffer map per slot.
    pub(crate) avail: Vec<Vec<(u64, u64)>>,
    /// Sorted `(idx, outstanding reads)` reconstruction counters.
    pub(crate) recon_pending: Vec<Vec<(u64, u32)>>,
    /// Reusable slots of completed/lost streams.
    free: Vec<u32>,
    /// Live iteration order: `(id, slot)` ascending by id, with lazy
    /// tombstones (entries whose slot no longer carries their id).
    pub(crate) order: Vec<(RequestId, u32)>,
    /// This round's admissions, ascending by id, awaiting the merge
    /// into `order`.
    staged: Vec<(RequestId, u32)>,
    /// Live stream count (`order` minus tombstones plus `staged`).
    live: usize,
    /// Tombstones currently in `order`.
    stale: usize,
}

impl StreamTable {
    /// Number of live streams.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Is `slot` still owned by `id`? `false` for out-of-range slots
    /// (e.g. the `u32::MAX` carried by rebuild fetches), freed slots,
    /// and slots reused by a later stream.
    #[inline]
    pub(crate) fn live(&self, id: RequestId, slot: u32) -> bool {
        self.request.get(slot as usize) == Some(&id)
    }

    /// Admits a stream: reuses a free slot or grows every column, and
    /// stages the `(id, slot)` pair for [`StreamTable::flush_staged`].
    /// Ids must arrive in ascending order within one staging window
    /// (the admission scan walks the id-sorted pending queue, so they
    /// do).
    pub(crate) fn admit(
        &mut self,
        id: RequestId,
        placement: ClipPlacement,
        admitted_at: u64,
        first_boundary: u64,
    ) -> u32 {
        debug_assert!(id != FREE, "sentinel id admitted");
        debug_assert!(
            self.staged.last().is_none_or(|&(prev, _)| prev < id),
            "staged admissions must arrive in ascending id order"
        );
        let slot = if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.request[i] = id;
            self.placement[i] = placement;
            self.admitted_at[i] = admitted_at;
            self.first_boundary[i] = first_boundary;
            self.issued[i] = 0;
            self.consumed[i] = 0;
            self.avail[i].clear();
            self.recon_pending[i].clear();
            slot
        } else {
            let slot = self.request.len() as u32;
            self.request.push(id);
            self.placement.push(placement);
            self.admitted_at.push(admitted_at);
            self.first_boundary.push(first_boundary);
            self.issued.push(0);
            self.consumed.push(0);
            self.avail.push(Vec::new());
            self.recon_pending.push(Vec::new());
            slot
        };
        self.staged.push((id, slot));
        self.live += 1;
        slot
    }

    /// Merges this round's staged admissions into `order`, keeping it
    /// sorted by id. Bypass admission means a staged id may be *lower*
    /// than ids admitted in earlier rounds, so the general path is a
    /// true backward two-pointer merge (in-place, no scratch vector).
    // lint: hot
    pub(crate) fn flush_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        if self.order.last().is_none_or(|&(last, _)| last < self.staged[0].0) {
            // Common case: everything staged is newer than everything
            // ordered.
            self.order.extend_from_slice(&self.staged);
        } else {
            let old_len = self.order.len();
            self.order.extend_from_slice(&self.staged);
            // Backward merge: `i` walks the old run, `j` the staged run,
            // `k` the write cursor. `k` stays strictly ahead of `i`
            // while `j ≥ 0`, so the overwrites never clobber unread
            // entries.
            let mut i = old_len as isize - 1;
            let mut j = self.staged.len() as isize - 1;
            let mut k = self.order.len() as isize - 1;
            while j >= 0 {
                if i >= 0 && self.order[i as usize].0 > self.staged[j as usize].0 {
                    self.order[k as usize] = self.order[i as usize];
                    i -= 1;
                } else {
                    self.order[k as usize] = self.staged[j as usize];
                    j -= 1;
                }
                k -= 1;
            }
        }
        self.staged.clear();
        debug_assert!(
            self.order.windows(2).all(|w| w[0].0 < w[1].0),
            "order must stay strictly ascending by id"
        );
    }

    /// Releases a live stream's slot. `order`'s entry for `id` goes
    /// stale and is swept later by [`StreamTable::maybe_compact`].
    // lint: hot
    pub(crate) fn remove(&mut self, id: RequestId, slot: u32) {
        debug_assert!(self.live(id, slot), "removing a slot the id no longer owns");
        self.request[slot as usize] = FREE;
        self.free.push(slot);
        self.live -= 1;
        self.stale += 1;
    }

    /// Slot lookup by id for the cold external paths (pause, resume).
    /// Binary search over `order` — valid because `order` is sorted by
    /// id and ids are unique even across tombstones.
    // lint: hot
    pub(crate) fn slot_of(&self, id: RequestId) -> Option<u32> {
        debug_assert!(self.staged.is_empty(), "lookup during an admission scan");
        let at = self.order.binary_search_by_key(&id, |&(oid, _)| oid).ok()?;
        let slot = self.order[at].1;
        self.live(id, slot).then_some(slot)
    }

    /// Sweeps tombstones out of `order` once they outnumber live
    /// entries (amortized O(1) per removal; in-place, allocation-free,
    /// preserves the ascending-id order of survivors).
    // lint: hot
    pub(crate) fn maybe_compact(&mut self) {
        debug_assert!(self.staged.is_empty(), "compaction during an admission scan");
        if self.stale >= 32 && self.stale * 2 >= self.order.len() {
            let request = &self.request;
            self.order.retain(|&(id, slot)| request.get(slot as usize) == Some(&id));
            self.stale = 0;
        }
    }

    /// Drops every stream and all retained capacity (the evacuation
    /// cold path).
    pub(crate) fn clear(&mut self) {
        self.request.clear();
        self.placement.clear();
        self.admitted_at.clear();
        self.first_boundary.clear();
        self.issued.clear();
        self.consumed.clear();
        self.avail.clear();
        self.recon_pending.clear();
        self.free.clear();
        self.order.clear();
        self.staged.clear();
        self.live = 0;
        self.stale = 0;
    }

    /// The round at which clip-block `idx` of the stream in `slot` is
    /// due for transmission. `span` is the group span `k = p − m` (the
    /// streaming-RAID long-round length).
    #[inline]
    // lint: hot
    pub(crate) fn consume_round(&self, slot: u32, idx: u64, scheme: Scheme, span: u64) -> u64 {
        match scheme {
            Scheme::StreamingRaid => self.first_boundary[slot as usize] + span + idx,
            _ => self.admitted_at[slot as usize] + idx + 1,
        }
    }
}

/// `BTreeMap::get` over a sorted `(key, value)` vector.
#[inline]
// lint: hot
pub(crate) fn sv_get<V: Copy>(map: &[(u64, V)], key: u64) -> Option<V> {
    map.binary_search_by_key(&key, |&(k, _)| k).ok().map(|at| map[at].1)
}

/// `BTreeMap::get_mut` over a sorted `(key, value)` vector.
#[inline]
// lint: hot
pub(crate) fn sv_get_mut<V>(map: &mut [(u64, V)], key: u64) -> Option<&mut V> {
    let at = map.binary_search_by_key(&key, |&(k, _)| k).ok()?;
    Some(&mut map[at].1)
}

/// `BTreeMap::insert` (upsert) over a sorted `(key, value)` vector.
#[inline]
// lint: hot
pub(crate) fn sv_insert<V>(map: &mut Vec<(u64, V)>, key: u64, value: V) {
    match map.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(at) => map[at].1 = value,
        Err(at) => map.insert(at, (key, value)),
    }
}

/// `BTreeMap::entry(..).or_insert` over a sorted `(key, value)` vector.
#[inline]
// lint: hot
pub(crate) fn sv_or_insert<V>(map: &mut Vec<(u64, V)>, key: u64, value: V) {
    if let Err(at) = map.binary_search_by_key(&key, |&(k, _)| k) {
        map.insert(at, (key, value));
    }
}

/// `BTreeMap::remove` over a sorted `(key, value)` vector.
#[inline]
// lint: hot
pub(crate) fn sv_remove<V>(map: &mut Vec<(u64, V)>, key: u64) -> Option<V> {
    let at = map.binary_search_by_key(&key, |&(k, _)| k).ok()?;
    Some(map.remove(at).1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::ClipId;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn placement(seed: u64) -> ClipPlacement {
        ClipPlacement { id: ClipId(seed % 11), stream: (seed % 5) as u32, start_index: seed, len: seed % 40 + 1 }
    }

    /// One scripted mutation against both the table and the reference
    /// `BTreeMap` model.
    #[derive(Debug, Clone)]
    enum Op {
        /// Admit `count` fresh streams in one staging window.
        Admit { count: u8 },
        /// Remove the `nth` live stream (mod live count).
        Remove { nth: u8 },
        /// Mutate the `nth` live stream's per-block maps.
        Touch { nth: u8, idx: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u8..6).prop_map(|count| Op::Admit { count }),
            any::<u8>().prop_map(|nth| Op::Remove { nth }),
            (any::<u8>(), 0u64..50).prop_map(|(nth, idx)| Op::Touch { nth, idx }),
        ]
    }

    /// Per-stream reference state: placement, admission round, and the
    /// avail / recon-pending maps the per-slot sorted vectors replace.
    type ModelClient = (ClipPlacement, u64, BTreeMap<u64, u64>, BTreeMap<u64, u32>);

    /// The model the table must be observationally equal to: the old
    /// engine's `BTreeMap<RequestId, Client>` with the fields the round
    /// pipeline reads.
    #[derive(Debug, Default)]
    struct Model {
        clients: BTreeMap<RequestId, ModelClient>,
    }

    proptest! {
        /// Replays random admission/removal/touch scripts and checks
        /// that iteration order, membership, lookup and the per-slot
        /// sorted-vector maps all match the `BTreeMap` reference the
        /// engine used before the SoA refactor.
        #[test]
        fn table_matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
            let mut table = StreamTable::default();
            let mut model = Model::default();
            let mut next_id = 0u64;
            let mut round = 0u64;
            for op in ops {
                match op {
                    Op::Admit { count } => {
                        for _ in 0..count {
                            let id = RequestId(next_id);
                            next_id += 1;
                            let pl = placement(next_id);
                            table.admit(id, pl, round, round + 3);
                            model.clients.insert(id, (pl, round, BTreeMap::new(), BTreeMap::new()));
                        }
                        table.flush_staged();
                    }
                    Op::Remove { nth } => {
                        if model.clients.is_empty() {
                            continue;
                        }
                        let nth = nth as usize % model.clients.len();
                        let id = *model.clients.keys().nth(nth).unwrap();
                        model.clients.remove(&id);
                        let slot = table.slot_of(id).expect("model says live");
                        table.remove(id, slot);
                        table.maybe_compact();
                    }
                    Op::Touch { nth, idx } => {
                        if model.clients.is_empty() {
                            continue;
                        }
                        let nth = nth as usize % model.clients.len();
                        let id = *model.clients.keys().nth(nth).unwrap();
                        let (_, _, avail, recon) = model.clients.get_mut(&id).unwrap();
                        let slot = table.slot_of(id).expect("model says live") as usize;
                        // Exercise every sv_* flavour the engine uses.
                        sv_or_insert(&mut table.avail[slot], idx, round);
                        avail.entry(idx).or_insert(round);
                        sv_insert(&mut table.avail[slot], idx + 1, round);
                        avail.insert(idx + 1, round);
                        if idx % 3 == 0 {
                            prop_assert_eq!(
                                sv_remove(&mut table.avail[slot], idx),
                                avail.remove(&idx)
                            );
                        }
                        sv_insert(&mut table.recon_pending[slot], idx, 2u32);
                        recon.insert(idx, 2u32);
                        if let Some(n) = sv_get_mut(&mut table.recon_pending[slot], idx) {
                            *n -= 1;
                        }
                        if let Some(n) = recon.get_mut(&idx) {
                            *n -= 1;
                        }
                    }
                }
                round += 1;
                // Observational equality after every op.
                prop_assert_eq!(table.len(), model.clients.len());
                let table_iter: Vec<RequestId> = table
                    .order
                    .iter()
                    .filter(|&&(id, slot)| table.live(id, slot))
                    .map(|&(id, _)| id)
                    .collect();
                let model_iter: Vec<RequestId> = model.clients.keys().copied().collect();
                prop_assert_eq!(&table_iter, &model_iter, "iteration order diverged");
                for (&id, (pl, at, avail, recon)) in &model.clients {
                    let slot = table.slot_of(id).expect("live in model") as usize;
                    prop_assert_eq!(table.placement[slot], *pl);
                    prop_assert_eq!(table.admitted_at[slot], *at);
                    let t_avail: Vec<(u64, u64)> =
                        avail.iter().map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(&table.avail[slot], &t_avail, "avail map diverged");
                    let t_recon: Vec<(u64, u32)> =
                        recon.iter().map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(&table.recon_pending[slot], &t_recon);
                    for (&k, &v) in avail {
                        prop_assert_eq!(sv_get(&table.avail[slot], k), Some(v));
                    }
                }
                prop_assert_eq!(table.slot_of(RequestId(next_id)), None, "future id resolved");
            }
        }
    }

    #[test]
    fn bypass_admissions_merge_below_existing_ids() {
        // Ids 0..10 arrive; 5 and 7 are "bypassed" (admitted later than
        // 8 and 9) — the flush must re-sort them into place.
        let mut table = StreamTable::default();
        for id in [0u64, 1, 2, 8, 9] {
            table.admit(RequestId(id), placement(id), 0, 0);
        }
        table.flush_staged();
        for id in [5u64, 7] {
            table.admit(RequestId(id), placement(id), 1, 2);
        }
        table.flush_staged();
        let ids: Vec<u64> = table.order.iter().map(|&(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 5, 7, 8, 9]);
        assert_eq!(table.len(), 7);
    }

    #[test]
    fn slots_are_reused_and_stale_entries_skipped() {
        let mut table = StreamTable::default();
        for id in 0..4u64 {
            table.admit(RequestId(id), placement(id), 0, 0);
        }
        table.flush_staged();
        let slot1 = table.slot_of(RequestId(1)).unwrap();
        table.remove(RequestId(1), slot1);
        assert_eq!(table.len(), 3);
        assert_eq!(table.slot_of(RequestId(1)), None);
        // The freed slot is handed to the next admission; the stale
        // order entry for id 1 must not resolve to the newcomer.
        let slot4 = table.admit(RequestId(4), placement(4), 1, 1);
        table.flush_staged();
        assert_eq!(slot4, slot1);
        assert_eq!(table.slot_of(RequestId(1)), None);
        assert_eq!(table.slot_of(RequestId(4)), Some(slot4));
        assert!(!table.live(RequestId(1), slot1));
        assert!(table.live(RequestId(4), slot4));
    }
}
