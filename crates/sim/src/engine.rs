//! The simulation engine: see the crate docs for the per-round pipeline.

use crate::config::SimConfig;
use crate::metrics::Metrics;
use crate::table::{sv_get, sv_get_mut, sv_insert, sv_or_insert, sv_remove, StreamTable};
use cms_admission::{
    Admission, AdmitRequest, DeclusteredAdmission, DynamicAdmission, FlatAdmission,
    NonClusteredAdmission, PendingList, PrefetchParityDiskAdmission, StreamingRaidAdmission,
};
use cms_bibd::{best_design, DesignRequest, Pgt};
use cms_core::units::transfer_time;
use cms_core::{ClipId, CmsError, DiskId, DiskParams, RequestId, Round, Scheme};
use cms_disk::{BlockRequest, Disk, DiskArray, RoundOutcome, ServiceContext, TimingModel};
use cms_fault::FaultEvent;
use cms_layout::{clustered, declustered, flat, BlockLocation, MaterializedLayout, StreamAddr};
use cms_parity::{parity_into, reconstruct_into, Block, ErasureCodec, RsCodec};
use cms_trace::{EventKind, TraceSink, TraceSummary, Tracer};
use cms_workload::{Catalog, ClipChoice, ClipPlacement, PoissonArrivals};
use std::collections::{BTreeMap, BTreeSet};

/// One scheduled disk read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fetch {
    client: RequestId,
    clip: ClipId,
    loc: BlockLocation,
    /// Round the block this read contributes to will be consumed.
    needed: u64,
    /// Globally increasing issue stamp. Each disk queue is kept ordered
    /// by `(needed, seq)`, which reproduces exactly the order the old
    /// per-round *stable* sort on `needed` produced: among equal
    /// deadlines, earlier-issued fetches serve first (DESIGN.md §7).
    seq: u64,
    /// Clip-block index this read delivers directly, if any.
    serves: Option<u64>,
    /// Clip-block index whose reconstruction this read contributes to,
    /// if any.
    recon_for: Option<u64>,
    /// Failed-disk block number this read helps rebuild onto the spare,
    /// if this is a background-rebuild read.
    rebuild_for: Option<u64>,
    /// The issuing stream's [`StreamTable`] slot at issue time
    /// (`u32::MAX` for rebuild reads, which have no stream). Delivery
    /// revalidates it against `client` — a completed stream's slot may
    /// have been reused by the time a stale recovery read lands.
    slot: u32,
}

/// The locally-computed summary of draining one disk's queue for one
/// round. The variable-size payloads (served fetches, trace events) live
/// in the disk's [`RoundScratch`]; this struct carries only the `Copy`
/// accounting, so phase one can write results into a pre-sized slot
/// without touching the allocator.
#[derive(Clone, Copy, Default)]
struct DiskRound {
    /// Queue depth before the EDF drain (for `peak_disk_queue`).
    queue_len: u32,
    /// Service-time accounting; `None` when the queue was empty or the
    /// disk refused service.
    outcome: Option<RoundOutcome>,
    /// Fetches dropped because the disk refused service (failed disk or
    /// out-of-range block) — merged into `Metrics::service_errors`.
    dropped: u32,
}

/// Per-disk reusable buffers for the round hot path (DESIGN.md §7). One
/// arena per disk lives on the simulator; `execute_disks` hands each
/// worker the arenas of its disk slice, and the sequential merge drains
/// them in disk-ID order. Buffers are cleared, never shrunk: after
/// warm-up every round runs allocation-free.
#[derive(Default)]
struct RoundScratch {
    /// The fetches taken this round, in EDF order, awaiting delivery.
    served: Vec<Fetch>,
    /// Block requests handed to `Disk::service_round_with`.
    requests: Vec<BlockRequest>,
    /// Trace events produced while servicing this disk (empty when
    /// tracing is off). Buffered per disk and drained by the merge
    /// phase in disk-ID order — the trace-determinism contract.
    events: Vec<EventKind>,
    /// C-SCAN cylinder/order buffers reused inside the disk crate.
    disk: cms_disk::ServiceScratch,
}

impl RoundScratch {
    /// An arena pre-grown for rounds serving up to `budget` fetches, so
    /// even the first serviced round (and rebuild's deeper queues — the
    /// drain is still capped at the round budget) stays allocation-free
    /// inside the serve bracket.
    fn with_budget(budget: usize) -> Self {
        RoundScratch {
            served: Vec::with_capacity(budget),
            requests: Vec::with_capacity(budget),
            events: Vec::with_capacity(4),
            disk: cms_disk::ServiceScratch::with_budget(budget),
        }
    }
}

/// Drains up to `budget` fetches from one disk's queue
/// (earliest-deadline-first) and services them in C-SCAN order against
/// that disk's own head/busy state. Pure per-disk work: callable
/// concurrently for distinct disks.
///
/// The queue arrives already in EDF order — `push_fetch` maintains each
/// queue sorted by `(needed, seq)` — so the drain is a plain prefix
/// split, not a per-round sort.
// lint: hot
fn serve_disk(
    queue: &mut Vec<Fetch>,
    disk: &mut Disk,
    ctx: &ServiceContext,
    budget: usize,
    deadline: f64,
    collect_events: bool,
    scratch: &mut RoundScratch,
) -> DiskRound {
    scratch.served.clear();
    scratch.requests.clear();
    scratch.events.clear();
    if queue.is_empty() {
        return DiskRound::default();
    }
    // A slowed disk serves a proportionally smaller slice of its round
    // budget; its per-block busy time is scaled up by the same factor
    // inside the disk model. Pure per-disk state: thread-invariant.
    let budget = (budget / disk.slow_factor.max(1) as usize).max(1);
    debug_assert!(
        queue.windows(2).all(|w| (w[0].needed, w[0].seq) <= (w[1].needed, w[1].seq)),
        "disk queue must stay ordered by (needed, seq)"
    );
    let queue_len = queue.len() as u32;
    let take = queue.len().min(budget);
    if take == queue.len() {
        // Whole queue served (the common healthy-round case): swap the
        // buffers instead of copying every fetch. `served` was cleared
        // above, so the queue comes back empty with `served`'s capacity.
        std::mem::swap(&mut scratch.served, queue);
    } else {
        scratch.served.extend(queue.drain(..take));
    }
    scratch.requests.extend(scratch.served.iter().map(|f| BlockRequest {
        disk: disk.id,
        block_no: f.loc.block_no,
        clip: f.clip,
        reconstruction: f.recon_for.is_some(),
    }));
    match disk.service_round_with(ctx, &scratch.requests, deadline, &mut scratch.disk) {
        Ok(outcome) => {
            if collect_events {
                scratch.events.push(EventKind::DiskServe {
                    disk: disk.id.raw(),
                    blocks: outcome.blocks,
                    // Microseconds losslessly represent the worst-case
                    // timing model at round scale; the f64 is computed
                    // locally per disk, so the value is thread-invariant.
                    // Round to nearest: truncation would under-report
                    // every round's busy time by up to 1µs.
                    busy_us: (outcome.busy * 1e6).round() as u64,
                    queue: queue_len,
                });
            }
            DiskRound { queue_len, outcome: Some(outcome), dropped: 0 }
        }
        // The engine never routes fetches to a failed disk, so this arm
        // is unreachable for valid layouts — but a refused round must
        // drop its fetches and be counted, never panic the server loop.
        Err(_) => {
            let dropped = scratch.served.len() as u32;
            scratch.served.clear();
            if collect_events {
                scratch.events.push(EventKind::ServiceError { disk: disk.id.raw(), dropped });
            }
            DiskRound { queue_len, outcome: None, dropped }
        }
    }
}

/// A queued unit of playback: a clip, possibly resumed from an offset
/// (VCR resume re-queues the remainder of the clip for admission).
#[derive(Debug, Clone, Copy)]
struct PendingPlay {
    clip: ClipId,
    /// Blocks already consumed before the (re-)queueing.
    offset: u64,
    /// Disk holding the first block to play. The catalog and layout are
    /// immutable, so the admission probe's placement-derived fields are
    /// the same on every scan — computed once at enqueue time instead of
    /// per candidate per round. Meaningless (zero) when the remainder is
    /// empty; admission completes those without probing.
    start_disk: DiskId,
    /// PGT row of the first block to play (same precomputation).
    row: u32,
}

/// A paused session, parked outside admission (its bandwidth slot is
/// released; its buffer is dropped).
#[derive(Debug, Clone, Copy)]
struct PausedClient {
    clip: ClipId,
    consumed: u64,
}

/// One live session as exported by [`Simulator::export_sessions`] — the
/// unit the cluster gateway migrates when a whole node fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionExport {
    /// The node-local request id.
    pub request: RequestId,
    /// The clip being played (or queued).
    pub clip: ClipId,
    /// Blocks already consumed (active sessions) or the offset the
    /// request was queued at (pending sessions).
    pub offset: u64,
    /// Was the session actively playing, as opposed to still waiting in
    /// the pending queue?
    pub was_active: bool,
}

/// Background rebuild of a failed disk onto a hot spare: blocks of the
/// failed disk are reconstructed in order from their surviving group
/// members, using only bandwidth left over after client traffic
/// (rebuild reads sort last in each disk's EDF queue).
#[derive(Debug)]
struct RebuildState {
    disk: DiskId,
    /// Next failed-disk block number to schedule.
    next_block: u64,
    /// Total blocks to rebuild (the disk's used prefix).
    total: u64,
    /// block_no → packed `(expected, pending)` source-read counter
    /// (see [`pack_pending`]) before the block is rebuilt.
    outstanding: BTreeMap<u64, u32>,
    /// Blocks fully rebuilt so far.
    rebuilt: u64,
}

/// Reusable buffers for the parity-verification path: synthetic group
/// content, the recomputed parity block and the reconstruction output.
/// All blocks keep their capacity across verifications.
#[derive(Default)]
struct VerifyScratch {
    /// Synthetic content pool, one slot per data block of the group.
    data: Vec<Block>,
    parity: Block,
    rebuilt: Block,
    expect: Block,
    /// Lazily built Reed–Solomon codec for `m ≥ 2` groups, reused while
    /// the `(k, m)` geometry matches.
    codec: Option<RsCodec>,
    /// Contiguous `k + m` shard pool (data first, then redundancy) for
    /// the `m ≥ 2` codec's allocation-free `_within` paths.
    shards: Vec<Block>,
}

/// Engine-level reusable buffers for the per-round pipeline
/// (DESIGN.md §7). Each is `mem::take`n by the phase that needs it and
/// put back afterwards, so `&mut self` calls made while iterating a
/// buffer never alias it.
#[derive(Default)]
struct EngineScratch {
    /// Completed `(id, slot)` pairs collected by `consume_and_complete`.
    done: Vec<(RequestId, u32)>,
    /// Healthy group members in `issue_group_fetch`.
    healthy: Vec<(u64, BlockLocation)>,
    /// Down-disk block indices within one group-fetch window (at most
    /// one under `m = 1`; up to `m` while the group stays decodable).
    lost: Vec<u64>,
    /// Alive redundancy-shard locations of the window's group.
    redundancy: Vec<BlockLocation>,
    /// Reconstruction-read locations (recovery and rebuild paths).
    reads: Vec<BlockLocation>,
    /// Flattened `(failed block, surviving location)` pairs staged by
    /// `schedule_rebuild` before queue insertion.
    rebuild_batch: Vec<(u64, BlockLocation)>,
    verify: VerifyScratch,
}

/// The simulator: owns the layout, the admission controller, the disk
/// array and all client state. Construct with [`Simulator::new`], then
/// call [`Simulator::run`] (or [`Simulator::step`] for fine control).
pub struct Simulator {
    cfg: SimConfig,
    layout: MaterializedLayout,
    catalog: Catalog,
    admission: Box<dyn Admission + Send>,
    pending: PendingList<PendingPlay>,
    paused: BTreeMap<RequestId, PausedClient>,
    arrivals: PoissonArrivals,
    choice: ClipChoice,
    /// Active streams, stored as struct-of-arrays columns indexed by
    /// dense slot id (see the `table` module docs).
    table: StreamTable,
    array: DiskArray,
    queues: Vec<Vec<Fetch>>,
    /// Per-disk staging rows for fetches issued this round. `push_fetch`
    /// appends here; `flush_disk` sorts each row once and bulk-merges it
    /// into the disk's `(needed, seq)`-ordered queue — one O(n + k)
    /// merge per disk per round instead of k O(n) mid-vector inserts.
    incoming: Vec<Vec<Fetch>>,
    /// Issue stamp for the next fetch (see [`Fetch::seq`]).
    fetch_seq: u64,
    /// Per-disk round arenas, reused every round (DESIGN.md §7).
    round_scratch: Vec<RoundScratch>,
    /// Per-disk round summaries, reused every round.
    round_results: Vec<DiskRound>,
    /// Engine-level reusable buffers.
    scratch: EngineScratch,
    /// Resolved disk-service worker count (from `cfg.threads`, 0 = auto),
    /// clamped to the number of disks.
    workers: usize,
    round_duration: f64,
    t: u64,
    next_request: u64,
    /// Disks currently hard-failed. More than one entry means some
    /// parity groups may have lost two members; their streams are
    /// declared lost deterministically, never silently mis-served.
    failed: BTreeSet<DiskId>,
    /// Transiently down disks → first round they are back up. Data is
    /// intact (no rebuild); service is refused like a failure.
    transient_until: BTreeMap<DiskId, u64>,
    /// Slowed disks → first round their service factor resets to 1.
    slow_until: BTreeMap<DiskId, u64>,
    /// Next unapplied event in `cfg.faults` (round-sorted, so a cursor).
    fault_cursor: usize,
    /// Failed disks queued behind the single active rebuild slot.
    rebuild_pending: Vec<DiskId>,
    rebuild: Option<RebuildState>,
    metrics: Metrics,
    /// Event tracer, present when `cfg.trace` (or `set_trace_sink`)
    /// enabled tracing. All emission happens on the merge thread, in the
    /// same order the sequential engine would produce.
    tracer: Option<Tracer>,
}

/// Emits one trace event if tracing is enabled. A free function (not a
/// method) so call sites holding disjoint `&mut` borrows of other
/// simulator fields can still emit.
#[inline]
fn emit(tracer: &mut Option<Tracer>, round: u64, kind: EventKind) {
    if let Some(tr) = tracer.as_mut() {
        tr.emit(round, kind);
    }
}

/// Packs a reconstruction/rebuild progress counter: the high 16 bits
/// hold how many survivor reads are still *expected to arrive* (strands
/// decrement it), the low 16 how many are still *pending* (deliveries
/// and strands both decrement it). A block decodes when pending hits
/// zero; it is lost when expected drops below the decode threshold `k`.
#[inline]
fn pack_pending(expected: u32, pending: u32) -> u32 {
    debug_assert!(expected <= 0xFFFF && pending <= 0xFFFF);
    (expected << 16) | pending
}

impl Simulator {
    /// Builds a simulator: catalog → layout → admission controller →
    /// disk array.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and construction errors from
    /// any of the substrates.
    pub fn new(cfg: SimConfig) -> Result<Self, CmsError> {
        cfg.validate()?;
        // Start-disk jitter reproduces the paper's random disk(C)/row(C);
        // when the catalog barely fits the array, padding is shrunk until
        // the layout fits (halving down to none).
        let mut jitter = u64::from(cfg.d);
        loop {
            match Self::build(&cfg, jitter) {
                Err(CmsError::InfeasibleConfig { reason }) if jitter > 1 => {
                    let _ = reason;
                    jitter /= 2;
                }
                other => return other,
            }
        }
    }

    fn build(cfg: &SimConfig, jitter: u64) -> Result<Self, CmsError> {
        let cfg = cfg.clone();
        // Group span: the k = p − m data blocks fetched per group (p − 1
        // under the paper's single-parity schemes, where m = 1).
        let span = u64::from(cfg.p - cfg.m).max(1);
        let (catalog, layout) = match cfg.scheme {
            Scheme::DeclusteredParity => {
                let pgt = build_pgt(cfg.d, cfg.p, cfg.seed)?;
                let catalog = Catalog::mixed(
                    cfg.catalog_clips,
                    cfg.clip_len,
                    cfg.clip_len_spread,
                    1,
                    1,
                    jitter,
                    cfg.seed,
                )?;
                let layout = declustered::build(&pgt, catalog.max_stream_len())?;
                (catalog, layout)
            }
            Scheme::DynamicReservation => {
                let pgt = build_pgt(cfg.d, cfg.p, cfg.seed)?;
                let catalog = Catalog::mixed(
                    cfg.catalog_clips,
                    cfg.clip_len,
                    cfg.clip_len_spread,
                    pgt.rows(),
                    1,
                    jitter,
                    cfg.seed,
                )?;
                let layout = declustered::build_super_clips(&pgt, catalog.max_stream_len())?;
                (catalog, layout)
            }
            Scheme::PrefetchParityDisks | Scheme::StreamingRaid | Scheme::NonClustered => {
                let align = if cfg.scheme == Scheme::NonClustered { 1 } else { span };
                let catalog = Catalog::mixed(
                    cfg.catalog_clips,
                    cfg.clip_len,
                    cfg.clip_len_spread,
                    1,
                    align,
                    jitter,
                    cfg.seed,
                )?;
                let layout = clustered::build_with_redundancy(
                    cfg.scheme,
                    cfg.d,
                    cfg.p,
                    cfg.m,
                    catalog.max_stream_len(),
                )?;
                (catalog, layout)
            }
            Scheme::PrefetchFlat => {
                let catalog = Catalog::mixed(
                    cfg.catalog_clips,
                    cfg.clip_len,
                    cfg.clip_len_spread,
                    1,
                    span,
                    jitter,
                    cfg.seed,
                )?;
                let layout = flat::build(cfg.d, cfg.p, catalog.max_stream_len())?;
                (catalog, layout)
            }
        };
        let admission: Box<dyn Admission + Send> = match cfg.scheme {
            Scheme::DeclusteredParity => {
                let pgt = layout.pgt().ok_or_else(|| CmsError::InfeasibleConfig {
                    reason: "declustered layout produced no parity group table".into(),
                })?;
                Box::new(DeclusteredAdmission::new(
                    cfg.d,
                    pgt.rows(),
                    cfg.q,
                    cfg.f.max(1),
                    pgt.lambda_max(),
                )?)
            }
            Scheme::DynamicReservation => {
                let pgt = layout.pgt().ok_or_else(|| CmsError::InfeasibleConfig {
                    reason: "dynamic-reservation layout produced no parity group table".into(),
                })?;
                let deltas = (0..pgt.rows()).map(|r| pgt.row_deltas(r)).collect();
                Box::new(DynamicAdmission::new(cfg.d, cfg.q, deltas)?)
            }
            Scheme::PrefetchParityDisks => Box::new(
                PrefetchParityDiskAdmission::with_redundancy(cfg.d, cfg.p, cfg.m, cfg.q)?,
            ),
            Scheme::StreamingRaid => {
                Box::new(StreamingRaidAdmission::with_redundancy(cfg.d, cfg.p, cfg.m, cfg.q)?)
            }
            Scheme::NonClustered => Box::new(NonClusteredAdmission::new(cfg.d, cfg.p, cfg.q)?),
            Scheme::PrefetchFlat => {
                Box::new(FlatAdmission::new(cfg.d, cfg.p, cfg.q, cfg.f.max(1))?)
            }
        };
        let array = DiskArray::new(
            cfg.d,
            DiskParams::sigmod96(),
            TimingModel::worst_case(),
            cfg.block_bytes,
        )?;
        // The layout must fit the physical disks.
        for disk in 0..cfg.d {
            if layout.blocks_used(DiskId(disk)) > array.blocks_per_disk() {
                return Err(CmsError::InfeasibleConfig {
                    reason: format!(
                        "layout needs {} blocks on disk {disk}, capacity {}",
                        layout.blocks_used(DiskId(disk)),
                        array.blocks_per_disk()
                    ),
                });
            }
        }
        let round_duration = transfer_time(cfg.block_bytes, cms_core::units::mbps(1.5));
        let workers = match cfg.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
        .clamp(1, cfg.d as usize);
        let metrics = Metrics {
            disk_busy: vec![0.0; cfg.d as usize],
            disk_blocks: vec![0; cfg.d as usize],
            disk_recovery_reads: vec![0; cfg.d as usize],
            disk_rebuild_reads: vec![0; cfg.d as usize],
            ..Metrics::default()
        };
        let tracer = cfg.trace.build().map_err(|e| {
            CmsError::invalid_params(format!("cannot open trace output: {e}"))
        })?;
        Ok(Simulator {
            arrivals: PoissonArrivals::new(cfg.arrival_rate, cfg.seed ^ 0xA11),
            choice: if cfg.zipf_theta > 0.0 {
                ClipChoice::zipf(cfg.catalog_clips, cfg.zipf_theta, cfg.seed ^ 0xC11)
            } else {
                ClipChoice::uniform(cfg.catalog_clips, cfg.seed ^ 0xC11)
            },
            queues: vec![Vec::new(); cfg.d as usize],
            incoming: vec![Vec::new(); cfg.d as usize],
            fetch_seq: 0,
            round_scratch: (0..cfg.d).map(|_| RoundScratch::with_budget(cfg.q as usize)).collect(),
            round_results: vec![DiskRound::default(); cfg.d as usize],
            scratch: EngineScratch::default(),
            workers,
            pending: PendingList::new(),
            paused: BTreeMap::new(),
            table: StreamTable::default(),
            layout,
            catalog,
            admission,
            array,
            round_duration,
            t: 0,
            next_request: 0,
            failed: BTreeSet::new(),
            transient_until: BTreeMap::new(),
            slow_until: BTreeMap::new(),
            fault_cursor: 0,
            rebuild_pending: Vec::new(),
            rebuild: None,
            metrics,
            tracer,
            cfg,
        })
    }

    /// Runs the configured number of rounds and returns the metrics.
    pub fn run(self) -> Metrics {
        self.run_summary().0
    }

    /// Runs the configured number of rounds and returns the metrics plus
    /// the trace summary (`None` when tracing is off). File sinks are
    /// flushed before this returns.
    pub fn run_summary(mut self) -> (Metrics, Option<TraceSummary>) {
        for _ in 0..self.cfg.rounds {
            self.step();
        }
        self.metrics.still_pending = self.pending.len() as u64;
        let summary = self.tracer.map(|mut tr| {
            tr.finish();
            tr.summary().clone()
        });
        (self.metrics, summary)
    }

    /// Installs a trace sink mid-stream (replacing whatever `cfg.trace`
    /// set up), e.g. a `RingSink` whose handle the caller keeps.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.tracer = Some(Tracer::new(sink));
    }

    /// The running trace summary, when tracing is enabled.
    #[must_use]
    pub fn trace_summary(&self) -> Option<&TraceSummary> {
        self.tracer.as_ref().map(Tracer::summary)
    }

    /// Flushes the trace sink without consuming the simulator (stepping
    /// callers that never reach [`Simulator::run_summary`]).
    pub fn flush_trace(&mut self) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.finish();
        }
    }

    /// Executes one round of the server pipeline.
    pub fn step(&mut self) {
        let _ = self.step_report();
    }

    /// Executes one round and returns what happened in it — the per-tick
    /// record an operator's dashboard would ingest.
    pub fn step_report(&mut self) -> crate::metrics::RoundReport {
        let before = (
            self.metrics.arrivals,
            self.metrics.admitted,
            self.metrics.completed,
            self.metrics.blocks_fetched,
            self.metrics.recovery_reads,
            self.metrics.hiccups,
            self.metrics.service_errors,
            self.metrics.rebuild_reads,
            self.metrics.late_serves,
            self.metrics.lost_streams,
            self.metrics.degraded_refusals,
        );
        let round = self.t;
        self.metrics.rounds += 1;
        self.apply_faults();
        // Snapshot the outage state *after* this round's fault events so
        // the report reflects what admission saw (`admit_from_head` runs
        // before anything else can change the down-set).
        let down_disks = (self.failed.len() + self.transient_until.len()) as u64;
        let degraded_cap = self.degraded_cap();
        self.generate_arrivals();
        self.admit_from_head();
        self.schedule_fetches();
        self.schedule_rebuild();
        self.execute_disks();
        self.consume_and_complete();
        self.admission.advance_round();
        self.t += 1;
        crate::metrics::RoundReport {
            round,
            arrivals: self.metrics.arrivals - before.0,
            admissions: self.metrics.admitted - before.1,
            completions: self.metrics.completed - before.2,
            blocks_served: self.metrics.blocks_fetched - before.3,
            recovery_reads: self.metrics.recovery_reads - before.4,
            hiccups: self.metrics.hiccups - before.5,
            service_errors: self.metrics.service_errors - before.6,
            rebuild_reads: self.metrics.rebuild_reads - before.7,
            late_serves: self.metrics.late_serves - before.8,
            lost_streams: self.metrics.lost_streams - before.9,
            degraded_refusals: self.metrics.degraded_refusals - before.10,
            active: self.table.len() as u64,
            pending: self.pending.len() as u64,
            down_disks,
            degraded_cap,
        }
    }

    /// Read-only access to the accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The resolved configuration this simulator runs (after
    /// construction-time padding adjustments).
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The admission controller's fault-free capacity ceiling — the
    /// engine-side number the conformance harness cross-checks against
    /// the analytical model's clip count.
    #[must_use]
    pub fn nominal_capacity(&self) -> u64 {
        self.admission.nominal_capacity()
    }

    /// Blocks the materialized layout placed on `disk` (data and parity)
    /// — the amount a rebuild of that disk must reconstruct.
    #[must_use]
    pub fn layout_blocks_used(&self, disk: DiskId) -> u64 {
        self.layout.blocks_used(disk)
    }

    /// The current round.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Number of active playback sessions.
    #[must_use]
    pub fn active_clients(&self) -> usize {
        self.table.len()
    }

    /// Number of requests waiting in the pending list.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// The lowest-numbered currently failed disk, if any (the only one,
    /// under the manual single-failure API).
    #[must_use]
    pub fn failed_disk(&self) -> Option<DiskId> {
        self.failed.iter().next().copied()
    }

    /// All currently failed disks, in id order.
    #[must_use]
    pub fn failed_disks(&self) -> Vec<DiskId> {
        self.failed.iter().copied().collect()
    }

    /// Is `disk` unavailable for service (hard-failed or transiently
    /// down)?
    fn is_down(&self, disk: DiskId) -> bool {
        self.failed.contains(&disk) || self.transient_until.contains_key(&disk)
    }

    /// The group span `k = p − m`: data blocks fetched per group, the
    /// long-round length, and the survivor count every reconstruction
    /// needs (`p − 1` under the paper's single-parity schemes).
    fn group_span(&self) -> u64 {
        u64::from(self.cfg.p - self.cfg.m).max(1)
    }

    /// Builds the pending-queue payload for playing `clip` from `offset`,
    /// precomputing the admission probe's layout lookups (see
    /// [`PendingPlay`]).
    fn pending_play(&self, clip: ClipId, offset: u64) -> PendingPlay {
        let placement = self.catalog.placement(clip);
        let offset = offset.min(placement.len);
        if placement.len == offset {
            return PendingPlay { clip, offset, start_disk: DiskId(0), row: 0 };
        }
        let start = StreamAddr::new(placement.stream, placement.start_index + offset);
        PendingPlay {
            clip,
            offset,
            start_disk: self.layout.locate(start).disk,
            row: self.layout.row_of(start).unwrap_or(0),
        }
    }

    /// Submits an external playback request for `clip` (in addition to —
    /// or instead of, when `arrival_rate` is 0 — the generated workload).
    /// The request queues in the FIFO pending list like any arrival.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] for an unknown clip id.
    pub fn submit(&mut self, clip: ClipId) -> Result<RequestId, CmsError> {
        if clip.raw() >= self.cfg.catalog_clips {
            return Err(CmsError::out_of_bounds(format!(
                "{clip} outside catalog of {} clips",
                self.cfg.catalog_clips
            )));
        }
        let id = RequestId(self.next_request);
        self.next_request += 1;
        self.pending.push(id, Round(self.t), self.pending_play(clip, 0));
        self.metrics.arrivals += 1;
        emit(
            &mut self.tracer,
            self.t,
            EventKind::Arrival { request: id.raw(), clip: clip.raw() },
        );
        Ok(id)
    }

    /// Pauses an active session (VCR pause): its admission slot and
    /// buffer are released; [`Simulator::resume`] re-queues the remainder
    /// through admission control.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if `id` is not an active
    /// session.
    pub fn pause(&mut self, id: RequestId) -> Result<(), CmsError> {
        let Some(slot) = self.table.slot_of(id) else {
            return Err(CmsError::invalid_params(format!("{id} is not playing")));
        };
        let parked = PausedClient {
            clip: self.table.placement[slot as usize].id,
            consumed: self.table.consumed[slot as usize],
        };
        self.table.remove(id, slot);
        self.admission.remove(id);
        self.paused.insert(id, parked);
        Ok(())
    }

    /// Resumes a paused session: the remainder of the clip re-enters the
    /// pending list (aligned down to the scheme's group boundary, so a
    /// resumed viewer may re-watch up to `k−1` blocks, `k = p − m`).
    /// Returns the new request id tracking the resumed playback.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if `id` is not paused.
    pub fn resume(&mut self, id: RequestId) -> Result<RequestId, CmsError> {
        let Some(parked) = self.paused.remove(&id) else {
            return Err(CmsError::invalid_params(format!("{id} is not paused")));
        };
        let span = self.group_span();
        let offset = if self.cfg.scheme.prefetches_groups() {
            (parked.consumed / span) * span
        } else {
            parked.consumed
        };
        let new_id = RequestId(self.next_request);
        self.next_request += 1;
        self.pending
            .push(new_id, Round(self.t), self.pending_play(parked.clip, offset));
        Ok(new_id)
    }

    /// Number of paused sessions.
    #[must_use]
    pub fn paused_sessions(&self) -> usize {
        self.paused.len()
    }

    /// Submits a playback request starting at block `offset` of `clip` —
    /// the migration entry point: a stream re-homed from a failed node
    /// resumes where it left off. The offset is aligned down to the
    /// scheme's group boundary exactly like [`Simulator::resume`], so a
    /// migrated viewer may re-watch up to `k−1` blocks, `k = p − m`.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::OutOfBounds`] for an unknown clip id.
    pub fn submit_at(&mut self, clip: ClipId, offset: u64) -> Result<RequestId, CmsError> {
        if clip.raw() >= self.cfg.catalog_clips {
            return Err(CmsError::out_of_bounds(format!(
                "{clip} outside catalog of {} clips",
                self.cfg.catalog_clips
            )));
        }
        let span = self.group_span();
        let offset =
            if self.cfg.scheme.prefetches_groups() { (offset / span) * span } else { offset };
        let id = RequestId(self.next_request);
        self.next_request += 1;
        self.pending.push(id, Round(self.t), self.pending_play(clip, offset));
        self.metrics.arrivals += 1;
        emit(&mut self.tracer, self.t, EventKind::Arrival { request: id.raw(), clip: clip.raw() });
        Ok(id)
    }

    /// Snapshot of every live session for the cluster gateway: active
    /// playbacks and requests still waiting in the pending queue, in
    /// deterministic order (active in request-id order, then pending in
    /// queue order). Cold path — only called when this node's whole array
    /// goes dark and its streams must be re-homed.
    #[must_use]
    pub fn export_sessions(&self) -> Vec<SessionExport> {
        let mut out = Vec::with_capacity(self.table.len() + self.pending.len());
        for &(id, slot) in &self.table.order {
            if !self.table.live(id, slot) {
                continue;
            }
            out.push(SessionExport {
                request: id,
                clip: self.table.placement[slot as usize].id,
                offset: self.table.consumed[slot as usize],
                was_active: true,
            });
        }
        for i in 0..self.pending.len() {
            if let Some(p) = self.pending.get(i) {
                out.push(SessionExport {
                    request: p.id,
                    clip: p.payload.clip,
                    offset: p.payload.offset,
                    was_active: false,
                });
            }
        }
        out
    }

    /// Clears every live session — active, pending and paused — and all
    /// in-flight disk work: the node went dark, so nothing it was doing
    /// survives. Admission slots are released so a later repair starts
    /// from an empty server. Returns the number of active + pending
    /// sessions dropped (the streams the gateway must re-home or declare
    /// lost).
    pub fn evacuate(&mut self) -> usize {
        let dropped = self.table.len() + self.pending.len();
        for i in 0..self.table.order.len() {
            let (id, slot) = self.table.order[i];
            if self.table.live(id, slot) {
                self.admission.remove(id);
            }
        }
        self.table.clear();
        while self.pending.pop().is_some() {}
        self.paused.clear();
        for queue in &mut self.queues {
            queue.clear();
        }
        for staged in &mut self.incoming {
            staged.clear();
        }
        self.rebuild = None;
        self.rebuild_pending.clear();
        dropped
    }

    /// Fails `disk` immediately (single-failure model: a second failure
    /// while one is outstanding is rejected).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if a disk is already failed or
    /// the id is out of range.
    pub fn fail_disk(&mut self, disk: DiskId) -> Result<(), CmsError> {
        if disk.raw() >= self.cfg.d {
            return Err(CmsError::invalid_params("disk id out of range"));
        }
        if !self.failed.is_empty() {
            return Err(CmsError::invalid_params(
                "single-failure model: repair the failed disk first",
            ));
        }
        self.fail_now(disk);
        Ok(())
    }

    /// Repairs a failed disk.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if that disk is not failed.
    pub fn repair_disk(&mut self, disk: DiskId) -> Result<(), CmsError> {
        if !self.failed.contains(&disk) {
            return Err(CmsError::invalid_params(format!("{disk} is not failed")));
        }
        self.repair_now(disk);
        Ok(())
    }

    /// Rebuild progress as `(rebuilt, total)` blocks, if a rebuild is
    /// running.
    #[must_use]
    pub fn rebuild_progress(&self) -> Option<(u64, u64)> {
        self.rebuild.as_ref().map(|r| (r.rebuilt, r.total))
    }

    /// Feeds the background rebuild: keeps a bounded window of failed-disk
    /// blocks in flight, each rebuilt by reading its surviving group
    /// members at the lowest priority.
    fn schedule_rebuild(&mut self) {
        let Some(rb) = &mut self.rebuild else { return };
        let window = 2 * self.cfg.d as usize;
        let failed = rb.disk;
        // Stage the reads first (borrow juggling: layout is immutable,
        // queues are mutated after) in the flat reusable batch — one
        // `(failed block, surviving location)` pair per read, no nested
        // per-block vectors.
        let mut batch = std::mem::take(&mut self.scratch.rebuild_batch);
        let mut reads = std::mem::take(&mut self.scratch.reads);
        batch.clear();
        while rb.outstanding.len() < window && rb.next_block < rb.total {
            let block_no = rb.next_block;
            rb.next_block += 1;
            reads.clear();
            match self.layout.slot(failed, block_no) {
                cms_layout::Slot::Free => {}
                cms_layout::Slot::Data(addr) => {
                    self.layout.reconstruction_reads_into(addr, &mut reads);
                }
                cms_layout::Slot::Parity(gid) => {
                    let g = self.layout.group(gid);
                    reads.extend(g.data.iter().map(|&a| self.layout.locate(a)));
                    // Sibling redundancy shards double as extra sources
                    // (`m ≥ 2`); the shard being rebuilt is excluded.
                    reads.extend(g.redundancy_blocks().filter(|l| l.disk != failed));
                }
            }
            if reads.is_empty() {
                // Unused slot: nothing to copy.
                rb.rebuilt += 1;
                self.metrics.rebuilt_blocks += 1;
                continue;
            }
            let total = reads.len();
            reads.retain(|l| {
                !self.failed.contains(&l.disk) && !self.transient_until.contains_key(&l.disk)
            });
            if total - reads.len() >= self.cfg.m as usize {
                // Further outages removed more sources than the code's
                // `m − 1` spare-shard slack can stand: the rebuild
                // completes around the hole, which is counted — the
                // affected groups' streams were already declared lost
                // when those disks went down.
                rb.rebuilt += 1;
                self.metrics.unrecoverable_blocks += 1;
                continue;
            }
            let n = reads.len() as u32;
            rb.outstanding.insert(block_no, pack_pending(n, n));
            batch.extend(reads.iter().map(|&loc| (block_no, loc)));
        }
        for &(block_no, loc) in &batch {
            debug_assert!(!self.is_down(loc.disk), "rebuild read routed to a down disk");
            self.metrics.rebuild_reads += 1;
            self.metrics.disk_rebuild_reads[loc.disk.idx()] += 1;
            self.push_fetch(Fetch {
                client: RequestId(u64::MAX),
                clip: ClipId(u64::MAX),
                loc,
                needed: u64::MAX, // lowest EDF priority: slack only
                seq: 0, // stamped by push_fetch
                serves: None,
                recon_for: None,
                rebuild_for: Some(block_no),
                slot: u32::MAX, // no stream
            });
        }
        self.scratch.rebuild_batch = batch;
        self.scratch.reads = reads;
        if let Some(rb) = &self.rebuild {
            let (rebuilt, total) = (rb.rebuilt, rb.total);
            emit(&mut self.tracer, self.t, EventKind::RebuildProgress { rebuilt, total });
        }
        self.check_rebuild_complete();
    }

    fn check_rebuild_complete(&mut self) {
        let done = self
            .rebuild
            .as_ref()
            .is_some_and(|rb| rb.rebuilt == rb.total && rb.outstanding.is_empty());
        if done {
            let Some(rb) = self.rebuild.take() else { return };
            // The spare now holds the full contents: the array is whole
            // again (modeled as the failed slot returning to service).
            if self.array.repair(rb.disk).is_err() {
                self.metrics.service_errors += 1;
            }
            self.failed.remove(&rb.disk);
            self.metrics.rebuild_completed_round = Some(self.t);
            emit(
                &mut self.tracer,
                self.t,
                EventKind::RebuildComplete { disk: rb.disk.raw() },
            );
            self.start_next_rebuild();
        }
    }

    /// Promotes the next failed disk waiting for the single rebuild slot.
    fn start_next_rebuild(&mut self) {
        while self.rebuild.is_none() && !self.rebuild_pending.is_empty() {
            let disk = self.rebuild_pending.remove(0);
            if !self.failed.contains(&disk) {
                continue; // repaired while waiting
            }
            self.rebuild = Some(RebuildState {
                disk,
                next_block: 0,
                total: self.layout.blocks_used(disk),
                outstanding: BTreeMap::new(),
                rebuilt: 0,
            });
        }
    }

    fn fail_now(&mut self, disk: DiskId) {
        if self.array.fail(disk).is_err() {
            // Out-of-range ids are rejected by fail_disk / config
            // validation before reaching here; count, don't crash.
            self.metrics.service_errors += 1;
            return;
        }
        // A hard failure outranks (and ends) any transient window.
        self.transient_until.remove(&disk);
        if !self.failed.insert(disk) {
            return; // already failed
        }
        emit(&mut self.tracer, self.t, EventKind::DiskFailure { disk: disk.raw() });
        if self.cfg.auto_rebuild {
            if self.rebuild.is_none() {
                self.rebuild = Some(RebuildState {
                    disk,
                    next_block: 0,
                    total: self.layout.blocks_used(disk),
                    outstanding: BTreeMap::new(),
                    rebuilt: 0,
                });
            } else {
                self.rebuild_pending.push(disk);
            }
        }
        self.strand_queue(disk);
    }

    /// Returns `disk` to service: clears its failed state, cancels or
    /// dequeues its rebuild, and promotes the next pending rebuild.
    fn repair_now(&mut self, disk: DiskId) {
        if self.array.repair(disk).is_err() {
            self.metrics.service_errors += 1;
            return;
        }
        if !self.failed.remove(&disk) {
            return;
        }
        if self.rebuild.as_ref().is_some_and(|rb| rb.disk == disk) {
            self.rebuild = None;
        }
        self.rebuild_pending.retain(|&d| d != disk);
        emit(&mut self.tracer, self.t, EventKind::DiskRepair { disk: disk.raw() });
        self.start_next_rebuild();
    }

    /// Re-routes reads already queued on a disk that just went down:
    /// data reads fall back to reconstruction, reads that were
    /// themselves reconstruction inputs mean the stream lost a second
    /// group member, and rebuild source reads leave a counted hole.
    fn strand_queue(&mut self, disk: DiskId) {
        // Recovery reads scheduled by an earlier strand in the same
        // fault batch may still sit in this disk's staging row; merge
        // them in first so they strand in exactly the order the queue
        // would have held them.
        self.flush_disk(disk.idx());
        let stranded: Vec<Fetch> = std::mem::take(&mut self.queues[disk.idx()]);
        for fetch in stranded {
            if let Some(idx) = fetch.recon_for {
                // This read was reconstructing `idx` from survivors;
                // losing a survivor means one fewer shard will ever
                // arrive. Fatal iff the rest cannot reach the decode
                // threshold (always, under single-parity `m = 1`).
                self.strand_recon(fetch.client, fetch.slot, idx);
                continue;
            }
            if let Some(idx) = fetch.serves {
                self.schedule_recovery(fetch.client, fetch.slot, idx, fetch.needed);
            }
            if let Some(block_no) = fetch.rebuild_for {
                self.abandon_rebuild_block(block_no);
            }
        }
    }

    /// Deterministically terminates a stream whose due block became
    /// unreconstructable (a second failure in its parity group). The
    /// client is removed and counted — never silently mis-served.
    fn lose_stream(&mut self, id: RequestId, slot: u32, block: u64) {
        if self.table.live(id, slot) {
            self.table.remove(id, slot);
            self.admission.remove(id);
            self.metrics.lost_streams += 1;
            emit(
                &mut self.tracer,
                self.t,
                EventKind::StreamLost { request: id.raw(), block },
            );
        }
    }

    /// A queued survivor read reconstructing block `idx` of
    /// `(id, slot)` was stranded by a new outage: one fewer shard will
    /// ever arrive. The decode still completes if the remaining
    /// expected shards reach the threshold `k` (possible only with
    /// `m ≥ 2` spare redundancy); otherwise the stream is lost, exactly
    /// as the single-parity schemes always declared it.
    fn strand_recon(&mut self, id: RequestId, slot: u32, idx: u64) {
        if !self.table.live(id, slot) {
            return;
        }
        let Some(v) = sv_get(&self.table.recon_pending[slot as usize], idx) else {
            self.lose_stream(id, slot, idx);
            return;
        };
        // Decode threshold of *this* block's group (tail groups can be
        // narrower than the configured span).
        let placement = self.table.placement[slot as usize];
        let addr = StreamAddr::new(placement.stream, placement.start_index + idx);
        let k = self.layout.group(self.layout.group_id_of(addr)).data.len() as u32;
        let expected = (v >> 16) - 1;
        let pending = (v & 0xFFFF) - 1;
        if expected < k {
            self.lose_stream(id, slot, idx);
        } else if pending == 0 {
            // Every non-stranded survivor already arrived and they
            // suffice: the decode completes despite the strand.
            self.complete_reconstruction(id, slot, idx);
        } else if let Some(slot_v) =
            sv_get_mut(&mut self.table.recon_pending[slot as usize], idx)
        {
            *slot_v = pack_pending(expected, pending);
        }
    }

    /// Drops a rebuild block whose in-flight source reads were stranded
    /// by a further outage — unless enough expected source reads remain
    /// to decode it (`m ≥ 2` spare redundancy). Unrecoverable holes are
    /// counted, never silently filled.
    fn abandon_rebuild_block(&mut self, block_no: u64) {
        let Some(rb) = &mut self.rebuild else { return };
        let Some(&v) = rb.outstanding.get(&block_no) else { return };
        // Decode threshold of *this* block's group (tail groups can be
        // narrower than the configured span).
        let k = match self.layout.slot(rb.disk, block_no) {
            cms_layout::Slot::Free => 0,
            cms_layout::Slot::Data(addr) => {
                self.layout.group(self.layout.group_id_of(addr)).data.len() as u32
            }
            cms_layout::Slot::Parity(gid) => self.layout.group(gid).data.len() as u32,
        };
        let expected = (v >> 16) - 1;
        let pending = (v & 0xFFFF) - 1;
        if expected < k {
            rb.outstanding.remove(&block_no);
            rb.rebuilt += 1;
            self.metrics.unrecoverable_blocks += 1;
        } else if pending == 0 {
            rb.outstanding.remove(&block_no);
            rb.rebuilt += 1;
            self.metrics.rebuilt_blocks += 1;
            self.check_rebuild_complete();
        } else if let Some(slot_v) = rb.outstanding.get_mut(&block_no) {
            *slot_v = pack_pending(expected, pending);
        }
    }

    /// Round-start fault processing on the coordinating thread (so the
    /// whole round observes a settled array): expire transient and slow
    /// windows, apply the legacy single-failure scenario, then drain
    /// every scheduled event due this round, in schedule order.
    fn apply_faults(&mut self) {
        while let Some(disk) = self
            .transient_until
            .iter()
            .find(|&(_, &end)| end <= self.t)
            .map(|(&d, _)| d)
        {
            self.transient_until.remove(&disk);
            if self.array.clear_transient(disk).unwrap_or(false) {
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::DiskTransientEnd { disk: disk.raw() },
                );
            }
        }
        while let Some(disk) = self
            .slow_until
            .iter()
            .find(|&(_, &end)| end <= self.t)
            .map(|(&d, _)| d)
        {
            self.slow_until.remove(&disk);
            if self.array.set_slow_factor(disk, 1).is_ok() {
                emit(&mut self.tracer, self.t, EventKind::DiskSlowEnd { disk: disk.raw() });
            }
        }
        if let Some(fs) = self.cfg.failure {
            if self.t == fs.fail_round && self.failed.is_empty() {
                self.fail_now(fs.disk);
            }
            if let Some(repair) = fs.repair_round {
                if self.t == repair && self.failed.contains(&fs.disk) {
                    self.repair_now(fs.disk);
                }
            }
        }
        loop {
            let next = self
                .cfg
                .faults
                .as_ref()
                .and_then(|s| s.events().get(self.fault_cursor).copied());
            let Some(e) = next else { break };
            if e.round > self.t {
                break;
            }
            self.fault_cursor += 1;
            self.apply_fault_event(e.event);
        }
    }

    /// Applies one scheduled fault event. Inapplicable events (failing
    /// an already-failed disk, a transient window on a down disk) are
    /// deterministic no-ops, mirroring `FaultSchedule::check_consistency`.
    fn apply_fault_event(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Fail(disk) => {
                if !self.failed.contains(&disk) {
                    self.fail_now(disk);
                }
            }
            FaultEvent::Repair(disk) => {
                if self.failed.contains(&disk) {
                    self.repair_now(disk);
                }
            }
            FaultEvent::Transient { disk, rounds } => {
                if !self.is_down(disk) && self.array.set_transient(disk).unwrap_or(false) {
                    self.transient_until.insert(disk, self.t.saturating_add(rounds));
                    emit(
                        &mut self.tracer,
                        self.t,
                        EventKind::DiskTransient { disk: disk.raw(), rounds },
                    );
                    self.strand_queue(disk);
                }
            }
            FaultEvent::SlowDisk { disk, factor, rounds } => {
                let factor = factor.max(1);
                if self.array.set_slow_factor(disk, factor).is_ok() {
                    self.slow_until.insert(disk, self.t.saturating_add(rounds));
                    emit(
                        &mut self.tracer,
                        self.t,
                        EventKind::DiskSlow { disk: disk.raw(), factor, rounds },
                    );
                }
            }
            // Node-scoped events never reach a single-server engine:
            // SimConfig::validate rejects them up front, and the cluster
            // gateway consumes them itself. Deterministic no-op either way.
            FaultEvent::FailNode(_) | FaultEvent::RepairNode(_) => {}
        }
    }

    fn generate_arrivals(&mut self) {
        for _ in 0..self.arrivals.next_round() {
            let clip = self.choice.next_clip();
            let id = RequestId(self.next_request);
            self.next_request += 1;
            self.pending.push(id, Round(self.t), self.pending_play(clip, 0));
            self.metrics.arrivals += 1;
            emit(
                &mut self.tracer,
                self.t,
                EventKind::Arrival { request: id.raw(), clip: clip.raw() },
            );
        }
    }

    /// Admission with bounded FIFO bypass (cf. ORS96): requests are
    /// considered in arrival order; a request whose resources are free is
    /// admitted even if earlier ones are blocked — *unless* the head has
    /// aged past [`SimConfig::aging_limit`], in which case nothing may
    /// overtake it. Bypass keeps the disks busy; the aging guard keeps
    /// the policy starvation-free (a head's wait is bounded by the limit
    /// plus one clip duration).
    /// The maximum active-stream count while degraded, when enforcement
    /// is on and any disk is down: the scheme's fault-free capacity
    /// ([`Admission::nominal_capacity`]) scaled by the surviving-disk
    /// fraction — the lost disk's share of the array is withheld so
    /// survivors keep contingency headroom for its recovery reads — and
    /// zero for NonClustered (no redundancy to serve through an outage)
    /// or more concurrent outages than the code's `m` redundancy shards
    /// are designed to tolerate.
    fn degraded_cap(&self) -> Option<u64> {
        if !self.cfg.degraded_admission {
            return None;
        }
        let down = (self.failed.len() + self.transient_until.len()) as u64;
        if down == 0 {
            return None;
        }
        if self.cfg.scheme == Scheme::NonClustered || down > u64::from(self.cfg.m) {
            return Some(0);
        }
        let healthy = u64::from(self.cfg.d).saturating_sub(down);
        Some(self.admission.nominal_capacity() * healthy / u64::from(self.cfg.d))
    }

    fn admit_from_head(&mut self) {
        let degraded_cap = self.degraded_cap();
        let head_aged = self
            .pending
            .head_wait(Round(self.t))
            .is_some_and(|w| w >= self.cfg.aging_limit);
        let scan = if head_aged { 1 } else { self.cfg.admission_scan.max(1) };
        let mut idx = 0usize;
        let mut inspected = 0usize;
        while inspected < scan {
            let Some(cand) = self.pending.get(idx) else { break };
            inspected += 1;
            let cand_id = cand.id;
            let cand_clip = cand.payload.clip;
            let mut placement = self.catalog.placement(cand.payload.clip);
            // A resumed session plays only the remainder of the clip.
            let offset = cand.payload.offset.min(placement.len);
            placement.start_index += offset;
            placement.len -= offset;
            if placement.len == 0 {
                // Paused at the very end: nothing left to play.
                self.pending.remove_at(idx);
                self.metrics.completed += 1;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::Completion { request: cand_id.raw() },
                );
                continue;
            }
            if let Some(cap) = degraded_cap {
                if self.table.len() as u64 >= cap {
                    // Degraded mode: the cap is reached; refuse this
                    // round's remaining candidates (they stay queued)
                    // and count one refusal for the blocked head.
                    self.metrics.degraded_refusals += 1;
                    emit(
                        &mut self.tracer,
                        self.t,
                        EventKind::DegradedRefusal {
                            request: cand_id.raw(),
                            clip: cand_clip.raw(),
                        },
                    );
                    break;
                }
            }
            // `start_disk` and `row` were precomputed when the candidate
            // was enqueued — the layout is immutable, so the probe fields
            // never change between scans.
            let req = AdmitRequest {
                id: cand.id,
                stream: placement.stream,
                start_index: placement.start_index,
                start_disk: cand.payload.start_disk,
                row: cand.payload.row,
                len: placement.len,
            };
            // Allocation-free preview first: a rejection costs one table
            // probe instead of `try_admit`'s error-message formatting.
            // The trace event carries no reason string, so skipping the
            // full call is observationally identical.
            if !self.admission.check(&req) || self.admission.try_admit(req).is_err() {
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::Rejection { request: cand_id.raw(), clip: cand_clip.raw() },
                );
                idx += 1;
                continue;
            }
            let Some(cand) = self.pending.remove_at(idx) else {
                // The admitted candidate was at idx an instant ago; an
                // empty slot here means the queue shrank underneath us —
                // stop scanning rather than panic mid-round.
                break;
            };
            // A successful admission may have freed nothing, but it does
            // not invalidate earlier rejections this round; keep scanning
            // from the same position (the next element shifted into it)
            // without charging another inspection for the admit itself.
            inspected -= 1;
            let wait = self.t - cand.arrived.raw();
            self.metrics.admitted += 1;
            self.metrics.wait_rounds_total += wait;
            self.metrics.wait_rounds_max = self.metrics.wait_rounds_max.max(wait);
            self.metrics.record_wait(wait);
            emit(
                &mut self.tracer,
                self.t,
                EventKind::Admission { request: cand.id.raw(), clip: cand_clip.raw(), wait },
            );
            let span = self.group_span();
            self.table.admit(cand.id, placement, self.t, self.t.div_ceil(span) * span);
            self.metrics.peak_active = self.metrics.peak_active.max(self.table.len() as u64);
        }
        // One bulk merge of this round's admissions into iteration order
        // (the scan visits the id-sorted pending queue, so staged ids
        // are ascending; bypass means they may interleave with ids
        // admitted in earlier rounds).
        self.table.flush_staged();
    }

    // lint: hot
    fn schedule_fetches(&mut self) {
        let span = self.group_span();
        let scheme = self.cfg.scheme;
        // Walk the id-sorted order index directly — the same ascending-id
        // visit order the old map snapshot produced, with no snapshot
        // vector. `lose_stream` mid-walk only tombstones entries (never
        // reorders or grows `order`), so positional iteration is stable;
        // the liveness recheck after each issue mirrors the old map
        // re-lookups.
        for at in 0..self.table.order.len() {
            let (id, slot) = self.table.order[at];
            if !self.table.live(id, slot) {
                continue;
            }
            let s = slot as usize;
            let (placement, admitted_at, first_boundary, issued) = (
                self.table.placement[s],
                self.table.admitted_at[s],
                self.table.first_boundary[s],
                self.table.issued[s],
            );
            if issued >= placement.len {
                continue;
            }
            match scheme {
                Scheme::DeclusteredParity
                | Scheme::DynamicReservation
                | Scheme::NonClustered => {
                    // Double-buffered single-block retrieval: one block per
                    // round, in lock-step with admission's rotation model.
                    if self.t < admitted_at + issued {
                        continue;
                    }
                    let idx = issued;
                    let needed = self.table.consume_round(slot, idx, scheme, span);
                    self.issue_data_fetch(id, slot, idx, needed);
                    if self.table.live(id, slot) {
                        self.table.issued[s] = idx + 1;
                    }
                }
                Scheme::PrefetchParityDisks | Scheme::PrefetchFlat => {
                    // Staggered group fetch every p−1 rounds.
                    if !(self.t - admitted_at).is_multiple_of(span) {
                        continue;
                    }
                    let group_end = (issued + span).min(placement.len);
                    self.issue_group_fetch(id, slot, issued, group_end, false);
                    if self.table.live(id, slot) {
                        self.table.issued[s] = group_end;
                    }
                }
                Scheme::StreamingRaid => {
                    // Lock-step long rounds: whole group plus its parity.
                    if self.t < first_boundary || !(self.t - first_boundary).is_multiple_of(span) {
                        continue;
                    }
                    let group_end = (issued + span).min(placement.len);
                    self.issue_group_fetch(id, slot, issued, group_end, true);
                    if self.table.live(id, slot) {
                        self.table.issued[s] = group_end;
                    }
                }
            }
        }
    }

    /// Issues the single-block fetch for `idx`, or recovery reads if its
    /// disk is down.
    // lint: hot
    fn issue_data_fetch(&mut self, id: RequestId, slot: u32, idx: u64, needed: u64) {
        if !self.table.live(id, slot) {
            return; // stream already lost or completed
        }
        let placement = self.table.placement[slot as usize];
        let addr = StreamAddr::new(placement.stream, placement.start_index + idx);
        let clip = placement.id;
        let loc = self.layout.locate(addr);
        if self.is_down(loc.disk) {
            self.schedule_recovery(id, slot, idx, needed);
        } else {
            self.push_fetch(Fetch {
                client: id,
                clip,
                loc,
                needed,
                seq: 0, // stamped by push_fetch
                serves: Some(idx),
                recon_for: None,
                rebuild_for: None,
                slot,
            });
        }
    }

    /// Issues a whole-group fetch for blocks `start..end` of the clip.
    /// With `with_parity`, also reads the group's redundancy blocks
    /// (streaming RAID). Reads on a failed disk are replaced by the
    /// pre-fetching recovery rule: the alive redundancy shards
    /// substitute, and the sibling reads of the same fetch double as
    /// reconstruction inputs. Up to `m` window blocks may be down at
    /// once; the stream is lost only when the alive survivors drop below
    /// the decode threshold `k`.
    // lint: hot
    fn issue_group_fetch(&mut self, id: RequestId, slot: u32, start: u64, end: u64, with_parity: bool) {
        if !self.table.live(id, slot) {
            return; // stream already lost or completed
        }
        let placement = self.table.placement[slot as usize];
        let clip = placement.id;
        let scheme = self.cfg.scheme;
        let span = self.group_span();

        let mut lost = std::mem::take(&mut self.scratch.lost);
        let mut healthy = std::mem::take(&mut self.scratch.healthy);
        let mut redundancy = std::mem::take(&mut self.scratch.redundancy);
        lost.clear();
        healthy.clear();
        redundancy.clear();
        for idx in start..end {
            let addr = StreamAddr::new(placement.stream, placement.start_index + idx);
            let loc = self.layout.locate(addr);
            if self.is_down(loc.disk) {
                lost.push(idx);
            } else {
                healthy.push((idx, loc));
            }
        }
        let first_addr = StreamAddr::new(placement.stream, placement.start_index + start);
        {
            let group = self.layout.group(self.layout.group_id_of(first_addr));
            redundancy.extend(group.redundancy_blocks().filter(|l| !self.is_down(l.disk)));
        }
        if redundancy.len() < lost.len() {
            // More window members down than alive redundancy shards can
            // stand in for (under `m = 1`: two members down, or the lost
            // data block's parity with it): the group cannot decode —
            // declare the stream lost instead of mis-serving a partial
            // reconstruction.
            let first = lost.first().copied().unwrap_or(start);
            self.scratch.lost = lost;
            self.scratch.healthy = healthy;
            self.scratch.redundancy = redundancy;
            self.lose_stream(id, slot, first);
            return;
        }
        // Every survivor must arrive by the earliest lost deadline.
        let lost_needed =
            lost.iter().map(|&idx| self.table.consume_round(slot, idx, scheme, span)).min();
        let recon_first = lost.first().copied();
        for &(idx, loc) in &healthy {
            let needed = self.table.consume_round(slot, idx, scheme, span);
            self.push_fetch(Fetch {
                client: id,
                clip,
                loc,
                needed: lost_needed.map_or(needed, |ln| needed.min(ln)),
                seq: 0, // stamped by push_fetch
                serves: Some(idx),
                recon_for: recon_first,
                rebuild_for: None,
                slot,
            });
        }
        // Redundancy reads: always for streaming RAID; on failure for
        // the pre-fetching schemes (unless only redundancy disks died,
        // in which case the data is all there and nothing is lost).
        if with_parity || !lost.is_empty() {
            for &r_loc in &redundancy {
                let needed = lost_needed
                    .unwrap_or_else(|| self.table.consume_round(slot, start, scheme, span));
                self.push_fetch(Fetch {
                    client: id,
                    clip,
                    loc: r_loc,
                    needed,
                    seq: 0, // stamped by push_fetch
                    serves: None,
                    recon_for: recon_first,
                    rebuild_for: None,
                    slot,
                });
                if let Some(idx) = recon_first {
                    self.metrics.recovery_reads += 1;
                    self.metrics.disk_recovery_reads[r_loc.disk.idx()] += 1;
                    emit(
                        &mut self.tracer,
                        self.t,
                        EventKind::RecoveryRead {
                            request: id.raw(),
                            disk: r_loc.disk.raw(),
                            block: idx,
                        },
                    );
                }
            }
        }
        let survivors = (healthy.len() + redundancy.len()) as u32;
        if let Some(idx) = recon_first {
            // Reconstruction waits for every surviving group read that
            // carries recon_for: the healthy siblings of this fetch plus
            // the alive redundancy shards.
            debug_assert!(survivors > 0, "undecodable groups are declared lost above");
            if let Some(tr) = self.tracer.as_mut() {
                tr.record_recovery_fanout(u64::from(survivors));
            }
            if self.table.live(id, slot) {
                sv_insert(
                    &mut self.table.recon_pending[slot as usize],
                    idx,
                    pack_pending(survivors, survivors),
                );
            }
        }
        // Additional lost blocks (`m ≥ 2` with multiple failures in one
        // cluster) each get their own reconstruction stream: dedicated
        // recovery reads of the same survivors, accounted per block.
        for li in 1..lost.len() {
            let idx = lost[li];
            let needed = self.table.consume_round(slot, idx, scheme, span);
            for &(_, h_loc) in &healthy {
                self.push_fetch(Fetch {
                    client: id,
                    clip,
                    loc: h_loc,
                    needed,
                    seq: 0, // stamped by push_fetch
                    serves: None,
                    recon_for: Some(idx),
                    rebuild_for: None,
                    slot,
                });
                self.metrics.recovery_reads += 1;
                self.metrics.disk_recovery_reads[h_loc.disk.idx()] += 1;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::RecoveryRead { request: id.raw(), disk: h_loc.disk.raw(), block: idx },
                );
            }
            for &r_loc in &redundancy {
                self.push_fetch(Fetch {
                    client: id,
                    clip,
                    loc: r_loc,
                    needed,
                    seq: 0, // stamped by push_fetch
                    serves: None,
                    recon_for: Some(idx),
                    rebuild_for: None,
                    slot,
                });
                self.metrics.recovery_reads += 1;
                self.metrics.disk_recovery_reads[r_loc.disk.idx()] += 1;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::RecoveryRead { request: id.raw(), disk: r_loc.disk.raw(), block: idx },
                );
            }
            if let Some(tr) = self.tracer.as_mut() {
                tr.record_recovery_fanout(u64::from(survivors));
            }
            if self.table.live(id, slot) {
                sv_insert(
                    &mut self.table.recon_pending[slot as usize],
                    idx,
                    pack_pending(survivors, survivors),
                );
            }
        }
        self.scratch.lost = lost;
        self.scratch.healthy = healthy;
        self.scratch.redundancy = redundancy;
    }

    /// Schedules the declustered/non-clustered recovery reads that rebuild
    /// clip block `idx` after its disk failed.
    fn schedule_recovery(&mut self, id: RequestId, slot: u32, idx: u64, needed: u64) {
        if !self.table.live(id, slot) {
            return; // stream already lost or completed
        }
        let placement = self.table.placement[slot as usize];
        let clip = placement.id;
        let addr = StreamAddr::new(placement.stream, placement.start_index + idx);
        let mut reads = std::mem::take(&mut self.scratch.reads);
        self.layout.reconstruction_reads_into(addr, &mut reads);
        // The sources are the group's other shards: its data siblings
        // plus all `m` redundancy blocks, so decoding the lost block
        // tolerates at most `m − 1` of them being down as well. More
        // (under `m = 1`: any second down disk, or no sources at all)
        // makes the block unreconstructable: the stream is declared
        // lost, never silently mis-served from a partial decode.
        let total = reads.len();
        reads.retain(|l| !self.is_down(l.disk));
        if reads.is_empty() || total - reads.len() >= self.cfg.m as usize {
            self.scratch.reads = reads;
            self.lose_stream(id, slot, idx);
            return;
        }
        let mut survivors = 0u32;
        for &loc in &reads {
            self.push_fetch(Fetch {
                client: id,
                clip,
                loc,
                needed,
                seq: 0, // stamped by push_fetch
                serves: None,
                recon_for: Some(idx),
                rebuild_for: None,
                slot,
            });
            survivors += 1;
            self.metrics.recovery_reads += 1;
            self.metrics.disk_recovery_reads[loc.disk.idx()] += 1;
            emit(
                &mut self.tracer,
                self.t,
                EventKind::RecoveryRead { request: id.raw(), disk: loc.disk.raw(), block: idx },
            );
        }
        self.scratch.reads = reads;
        if let Some(tr) = self.tracer.as_mut() {
            tr.record_recovery_fanout(u64::from(survivors));
        }
        if self.table.live(id, slot) {
            sv_insert(
                &mut self.table.recon_pending[slot as usize],
                idx,
                pack_pending(survivors, survivors),
            );
        }
    }

    /// Stages a fetch for its disk, stamping the issue seq — monotonically
    /// increasing across the whole run — so a fresh fetch always sorts
    /// *after* every queued fetch with the same deadline. The staging row
    /// is merged into the disk's `(needed, seq)`-ordered queue by
    /// [`Simulator::flush_disk`]; the combined sort-and-merge produces
    /// exactly the queue the old one-ordered-insert-per-push maintained
    /// (and hence the old per-round stable sort on `needed`: leftovers —
    /// earlier stamps — precede new arrivals among equal deadlines).
    // lint: hot
    fn push_fetch(&mut self, mut fetch: Fetch) {
        debug_assert!(!self.is_down(fetch.loc.disk), "fetch routed to a down disk");
        fetch.seq = self.fetch_seq;
        self.fetch_seq += 1;
        self.incoming[fetch.loc.disk.idx()].push(fetch);
    }

    /// Merges one disk's staging row into its EDF queue. Both runs are
    /// sorted by `(needed, seq)` — the staging row after one
    /// `sort_unstable` (unique seq stamps: no ties, so instability is
    /// irrelevant), the queue by induction — so a single backward
    /// two-pointer merge restores the global order in O(n + k) moves.
    /// Equivalent to, and replacing, k ordered mid-vector inserts of
    /// O(n) each.
    // lint: hot
    fn flush_disk(&mut self, disk: usize) {
        let (queue, staged) = (&mut self.queues[disk], &mut self.incoming[disk]);
        if staged.is_empty() {
            return;
        }
        staged.sort_unstable_by_key(|f| (f.needed, f.seq));
        if queue.last().is_none_or(|l| (l.needed, l.seq) < (staged[0].needed, staged[0].seq)) {
            // Common case (steady state): every staged fetch lands after
            // the whole queue.
            queue.extend_from_slice(staged);
        } else {
            let old_len = queue.len();
            queue.extend_from_slice(staged);
            // Backward merge: `i` walks the old run, `j` the staged run,
            // `k` the write cursor. While `j ≥ 0`, `k` stays strictly
            // ahead of `i`, so no unread element is overwritten — the
            // safe-code in-place merge (the sim crate forbids unsafe).
            let mut i = old_len as isize - 1;
            let mut j = staged.len() as isize - 1;
            let mut k = queue.len() as isize - 1;
            while j >= 0 {
                let take_old = i >= 0 && {
                    let (o, s) = (&queue[i as usize], &staged[j as usize]);
                    (o.needed, o.seq) > (s.needed, s.seq)
                };
                if take_old {
                    queue[k as usize] = queue[i as usize];
                    i -= 1;
                } else {
                    queue[k as usize] = staged[j as usize];
                    j -= 1;
                }
                k -= 1;
            }
        }
        staged.clear();
        debug_assert!(
            queue.windows(2).all(|w| (w[0].needed, w[0].seq) <= (w[1].needed, w[1].seq)),
            "disk queue must stay ordered by (needed, seq)"
        );
    }

    /// Services every disk's queue for this round, then merges the
    /// results and delivers the fetched blocks.
    ///
    /// The paper's §3 observation that per-round disk work is independent
    /// by construction is load-bearing here: each disk's EDF sort, C-SCAN
    /// sweep and service-time accounting touch only that disk's queue and
    /// head state, so phase one fans the disks out across
    /// `self.workers` scoped threads (none when `workers == 1`). Phase
    /// two walks the locally-computed [`DiskRound`]s **in disk-ID order**
    /// on the calling thread — every metric accumulation and every
    /// `deliver` happens in exactly the sequence the sequential loop
    /// used, which is what makes results bit-identical at any thread
    /// count (the determinism contract in DESIGN.md).
    fn execute_disks(&mut self) {
        // Merge this round's staged fetches into the per-disk EDF queues
        // — before the streaming-RAID gate below, so fetches staged on a
        // skipped round are queued (not lost) exactly as the old direct
        // ordered inserts left them.
        for disk in 0..self.queues.len() {
            self.flush_disk(disk);
        }
        let span = self.group_span();
        let streaming = self.cfg.scheme == Scheme::StreamingRaid;
        // Streaming RAID disks work in long rounds; others every round.
        if streaming && !self.t.is_multiple_of(span) {
            return;
        }
        let deadline = if streaming {
            self.round_duration * span as f64
        } else {
            self.round_duration
        };
        let budget = self.cfg.q as usize;
        let workers = self.workers;
        let collect_events = self.tracer.is_some();
        // Per-disk arenas and result slots are owned by the simulator and
        // reused every round; taking them out lets worker threads borrow
        // them while `self.array`'s split borrow is live.
        let mut scratches = std::mem::take(&mut self.round_scratch);
        let mut results = std::mem::take(&mut self.round_results);
        #[cfg(feature = "bench-alloc")]
        crate::hotgauge::enter_serve();
        // Phase one: per-disk service, parallel over disjoint
        // (queue, disk, scratch, result) quads. `service_parts` splits
        // the array borrow so worker threads never alias `self`.
        {
            let (ctx, disks) = self.array.service_parts();
            if workers <= 1 {
                for (((queue, disk), scratch), slot) in self
                    .queues
                    .iter_mut()
                    .zip(disks.iter_mut())
                    .zip(scratches.iter_mut())
                    .zip(results.iter_mut())
                {
                    *slot = serve_disk(queue, disk, &ctx, budget, deadline, collect_events, scratch);
                }
            } else {
                let chunk = self.queues.len().div_ceil(workers);
                // `thread::scope` joins every spawned worker before it
                // returns and propagates the first panic, so no explicit
                // join handles (or join().expect) are needed.
                std::thread::scope(|scope| {
                    for (((queues, disks), scratches), slots) in self
                        .queues
                        .chunks_mut(chunk)
                        .zip(disks.chunks_mut(chunk))
                        .zip(scratches.chunks_mut(chunk))
                        .zip(results.chunks_mut(chunk))
                    {
                        scope.spawn(move || {
                            for (((queue, disk), scratch), slot) in queues
                                .iter_mut()
                                .zip(disks.iter_mut())
                                .zip(scratches.iter_mut())
                                .zip(slots.iter_mut())
                            {
                                *slot = serve_disk(
                                    queue,
                                    disk,
                                    &ctx,
                                    budget,
                                    deadline,
                                    collect_events,
                                    scratch,
                                );
                            }
                        });
                    }
                });
            }
        }
        #[cfg(feature = "bench-alloc")]
        crate::hotgauge::exit_serve();
        // Phase two: sequential merge in disk-ID order. Each disk's
        // buffered events are drained here, so the trace stream is the
        // one the sequential loop would have written — byte-identical at
        // any thread count, exactly like `disk_busy`.
        for (disk, round) in results.iter().enumerate() {
            for kind in scratches[disk].events.drain(..) {
                emit(&mut self.tracer, self.t, kind);
            }
            self.metrics.service_errors += u64::from(round.dropped);
            let Some(outcome) = round.outcome else {
                continue; // empty queue (or refused service) this round
            };
            self.metrics.peak_disk_queue = self.metrics.peak_disk_queue.max(round.queue_len);
            self.metrics.peak_utilization =
                self.metrics.peak_utilization.max(outcome.utilization());
            self.metrics.disk_busy[disk] += outcome.busy;
            self.metrics.disk_blocks[disk] += u64::from(outcome.blocks);
            for &fetch in &scratches[disk].served {
                self.deliver(fetch);
            }
        }
        self.round_scratch = scratches;
        self.round_results = results;
    }

    // lint: hot
    fn deliver(&mut self, fetch: Fetch) {
        self.metrics.blocks_fetched += 1;
        if let Some(block_no) = fetch.rebuild_for {
            if let Some(rb) = &mut self.rebuild {
                if let Some(outstanding) = rb.outstanding.get_mut(&block_no) {
                    // Delivery: one fewer pending read; the arrival was
                    // expected, so the high half is untouched.
                    *outstanding -= 1;
                    if *outstanding & 0xFFFF == 0 {
                        rb.outstanding.remove(&block_no);
                        rb.rebuilt += 1;
                        self.metrics.rebuilt_blocks += 1;
                        self.check_rebuild_complete();
                    }
                }
            }
            return;
        }
        if fetch.needed > 0 && self.t + 1 > fetch.needed {
            self.metrics.late_serves += 1;
            emit(
                &mut self.tracer,
                self.t,
                EventKind::LateServe {
                    request: fetch.client.raw(),
                    block: fetch.serves.or(fetch.recon_for).unwrap_or(0),
                },
            );
        }
        if !self.table.live(fetch.client, fetch.slot) {
            return; // client already completed (stale recovery read)
        }
        let slot = fetch.slot as usize;
        if let Some(idx) = fetch.serves {
            sv_or_insert(&mut self.table.avail[slot], idx, self.t + 1);
        }
        if let Some(idx) = fetch.recon_for {
            let done = if let Some(pending) = sv_get_mut(&mut self.table.recon_pending[slot], idx)
            {
                // Delivery: one fewer pending read; the arrival was
                // expected, so the high half is untouched.
                *pending -= 1;
                *pending & 0xFFFF == 0
            } else {
                false
            };
            if done {
                self.complete_reconstruction(fetch.client, fetch.slot, idx);
            }
        }
    }

    /// The last pending survivor read for block `idx` of `(id, slot)`
    /// arrived (or was harmlessly stranded): the block decodes. Makes it
    /// available next round and runs the optional byte-level
    /// verification.
    fn complete_reconstruction(&mut self, id: RequestId, slot: u32, idx: u64) {
        let s = slot as usize;
        sv_remove(&mut self.table.recon_pending[s], idx);
        sv_insert(&mut self.table.avail[s], idx, self.t + 1);
        self.metrics.reconstructions += 1;
        emit(&mut self.tracer, self.t, EventKind::Reconstruction { request: id.raw(), block: idx });
        if self.cfg.verify_parity {
            let placement = self.table.placement[s];
            let mut vs = std::mem::take(&mut self.scratch.verify);
            let ok = self.verify_reconstruction(&mut vs, placement, idx);
            self.scratch.verify = vs;
            if !ok {
                self.metrics.parity_mismatches += 1;
            }
        }
    }

    /// Byte-level check: the group's codec — XOR for `m = 1`, GF(256)
    /// Reed–Solomon for `m ≥ 2` — reproduces the synthetic content of
    /// the lost block from its survivors. All block buffers come from
    /// `scratch` and are refilled in place — no allocation once the pool
    /// has grown to the group size (DESIGN.md §7); the RS arm keeps its
    /// codec while the `(k, m)` geometry is stable.
    fn verify_reconstruction(
        &self,
        scratch: &mut VerifyScratch,
        placement: ClipPlacement,
        idx: u64,
    ) -> bool {
        let lost = StreamAddr::new(placement.stream, placement.start_index + idx);
        let group = self.layout.group(self.layout.group_id_of(lost));
        let n = self.cfg.content_bytes;
        let k = group.data.len();
        let m = group.redundancy();
        let VerifyScratch { data, parity, rebuilt, expect, codec, shards } = scratch;
        let decoded = if m == 1 {
            if data.len() < k {
                data.resize_with(k, Block::default);
            }
            let data = &mut data[..k];
            // Synthetic content for every data block of the group.
            for (slot, &a) in data.iter_mut().zip(&group.data) {
                slot.fill_synthetic(u64::from(a.stream), a.index, n);
            }
            // Parity block content is the XOR of all the group's data
            // blocks. A group that cannot produce parity (empty, or
            // unequal block lengths) can never verify — report the
            // mismatch instead of panicking mid-delivery.
            if parity_into(parity, data.iter()).is_err() {
                return false;
            }
            // Reconstruct from survivors: all data except the lost one,
            // plus parity.
            let survivors = group
                .data
                .iter()
                .zip(data.iter())
                .filter_map(|(&a, b)| (a != lost).then_some(b))
                .chain(std::iter::once(&*parity));
            reconstruct_into(rebuilt, survivors).is_ok()
        } else {
            // Reed–Solomon group: recompute all `m` redundancy shards in
            // the pooled `k + m` slice, then decode the lost data shard
            // from its siblings plus the shards — the same codec the
            // multi-failure schemes pin. The contiguous `_within` paths
            // keep this arm allocation-free once the pool has grown.
            let stale = codec
                .as_ref()
                .is_none_or(|c| c.data_shards() != k || c.parity_shards() != m);
            if stale {
                let Ok(c) = RsCodec::new(k, m) else { return false };
                *codec = Some(c);
            }
            let Some(rs) = codec.as_mut() else { return false };
            if shards.len() < k + m {
                shards.resize_with(k + m, Block::default);
            }
            let all = &mut shards[..k + m];
            for (slot, &a) in all.iter_mut().zip(&group.data) {
                slot.fill_synthetic(u64::from(a.stream), a.index, n);
            }
            if rs.encode_within(all).is_err() {
                return false;
            }
            let Some(lost_idx) = group.data.iter().position(|&a| a == lost) else {
                return false;
            };
            rs.reconstruct_within(all, lost_idx, rebuilt).is_ok()
        };
        if !decoded {
            return false;
        }
        expect.fill_synthetic(u64::from(lost.stream), lost.index, n);
        *rebuilt == *expect
    }

    // lint: hot
    fn consume_and_complete(&mut self) {
        let scheme = self.cfg.scheme;
        let span = self.group_span();
        let mut done = std::mem::take(&mut self.scratch.done);
        done.clear();
        let mut buffered = 0u64;
        for at in 0..self.table.order.len() {
            let (id, slot) = self.table.order[at];
            if !self.table.live(id, slot) {
                continue;
            }
            let s = slot as usize;
            let len = self.table.placement[s].len;
            while self.table.consumed[s] < len
                && self.t >= self.table.consume_round(slot, self.table.consumed[s], scheme, span)
            {
                let idx = self.table.consumed[s];
                match sv_get(&self.table.avail[s], idx) {
                    Some(avail_at) if avail_at <= self.t => {
                        sv_remove(&mut self.table.avail[s], idx);
                        self.metrics.blocks_consumed += 1;
                    }
                    _ => {
                        // Not in the buffer when its round came: the
                        // playback glitch the guarantee schemes must
                        // never produce.
                        self.metrics.hiccups += 1;
                        emit(
                            &mut self.tracer,
                            self.t,
                            EventKind::Hiccup { request: id.raw(), block: idx },
                        );
                    }
                }
                self.table.consumed[s] += 1;
            }
            buffered += self.table.avail[s].len() as u64;
            if self.table.consumed[s] >= len {
                done.push((id, slot));
            }
        }
        self.metrics.peak_buffered_blocks = self.metrics.peak_buffered_blocks.max(buffered);
        for &(id, slot) in &done {
            self.table.remove(id, slot);
            self.admission.remove(id);
            self.metrics.completed += 1;
            emit(&mut self.tracer, self.t, EventKind::Completion { request: id.raw() });
        }
        self.scratch.done = done;
        // Amortized sweep of completion tombstones out of the order
        // index, so long runs never scan a mostly-dead vector.
        self.table.maybe_compact();
    }
}

/// Builds the PGT for a declustered-family configuration.
fn build_pgt(d: u32, p: u32, seed: u64) -> Result<Pgt, CmsError> {
    let design = best_design(DesignRequest { v: d, k: p, allow_fallback: true, seed })
        .ok_or_else(|| CmsError::DesignUnavailable {
            reason: format!("no design for (d = {d}, p = {p})"),
        })?;
    Ok(Pgt::new(&design))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::DiskParams;
    use cms_model::{capacity, ModelInput};
    use proptest::prelude::*;

    /// The retained pre-optimization `serve_disk`: allocates fresh
    /// buffers and stable-sorts the whole queue by `needed` every round.
    /// The equivalence proptest below drives it in lock-step with the
    /// scratch-reusing implementation to prove the incremental
    /// `(needed, seq)` queue order and buffer reuse change nothing.
    #[allow(clippy::type_complexity)]
    fn serve_disk_reference(
        queue: &mut Vec<Fetch>,
        disk: &mut Disk,
        ctx: &ServiceContext,
        budget: usize,
        deadline: f64,
        collect_events: bool,
    ) -> (u32, Vec<Fetch>, Option<RoundOutcome>, u32, Vec<EventKind>) {
        if queue.is_empty() {
            return (0, Vec::new(), None, 0, Vec::new());
        }
        let queue_len = queue.len() as u32;
        queue.sort_by_key(|f| f.needed);
        let take = queue.len().min(budget);
        let served: Vec<Fetch> = queue.drain(..take).collect();
        let requests: Vec<BlockRequest> = served
            .iter()
            .map(|f| BlockRequest {
                disk: disk.id,
                block_no: f.loc.block_no,
                clip: f.clip,
                reconstruction: f.recon_for.is_some(),
            })
            .collect();
        match disk.service_round(ctx, &requests, deadline) {
            Ok(outcome) => {
                let events = if collect_events {
                    vec![EventKind::DiskServe {
                        disk: disk.id.raw(),
                        blocks: outcome.blocks,
                        busy_us: (outcome.busy * 1e6).round() as u64,
                        queue: queue_len,
                    }]
                } else {
                    Vec::new()
                };
                (queue_len, served, Some(outcome), 0, events)
            }
            Err(_) => {
                let dropped = served.len() as u32;
                let events = if collect_events {
                    vec![EventKind::ServiceError { disk: disk.id.raw(), dropped }]
                } else {
                    Vec::new()
                };
                (queue_len, Vec::new(), None, dropped, events)
            }
        }
    }

    proptest! {
        #[test]
        fn scratch_serve_disk_matches_allocating_reference(
            // Per round: a batch of (needed, block_no, is_recon) fetches
            // plus a drain budget. Small `needed` range forces deadline
            // ties, the stable-order hazard.
            rounds in prop::collection::vec(
                (prop::collection::vec((0u64..6, 0u64..400, any::<bool>()), 0..12), 1usize..10),
                1..6
            ),
            fail_disk in any::<bool>(),
        ) {
            let mk_array = || {
                DiskArray::new(1, DiskParams::sigmod96(), TimingModel::worst_case(), 1 << 20)
                    .expect("1-disk array")
            };
            let mut opt_array = mk_array();
            let mut ref_array = mk_array();
            if fail_disk {
                opt_array.fail(DiskId(0)).unwrap();
                ref_array.fail(DiskId(0)).unwrap();
            }
            let mut opt_queue: Vec<Fetch> = Vec::new();
            let mut ref_queue: Vec<Fetch> = Vec::new();
            let mut scratch = RoundScratch::default();
            let mut seq = 0u64;
            let deadline = 0.5;
            for (batch, budget) in rounds {
                for (needed, block_no, recon) in batch {
                    let fetch = Fetch {
                        client: RequestId(seq),
                        clip: ClipId(seq % 7),
                        loc: BlockLocation { disk: DiskId(0), block_no },
                        needed,
                        seq,
                        serves: (!recon).then_some(block_no),
                        recon_for: recon.then_some(block_no),
                        rebuild_for: None,
                        slot: 0,
                    };
                    seq += 1;
                    // Mirror push_fetch's ordered insert on one side, the
                    // old plain append on the other.
                    let pos = opt_queue.partition_point(|f| f.needed <= fetch.needed);
                    opt_queue.insert(pos, fetch);
                    ref_queue.push(fetch);
                }
                let opt_round = {
                    let (ctx, disks) = opt_array.service_parts();
                    serve_disk(&mut opt_queue, &mut disks[0], &ctx, budget, deadline, true, &mut scratch)
                };
                let (ref_len, ref_served, ref_outcome, ref_dropped, ref_events) = {
                    let (ctx, disks) = ref_array.service_parts();
                    serve_disk_reference(&mut ref_queue, &mut disks[0], &ctx, budget, deadline, true)
                };
                prop_assert_eq!(opt_round.queue_len, ref_len);
                prop_assert_eq!(opt_round.dropped, ref_dropped);
                prop_assert_eq!(&scratch.served, &ref_served, "served order diverged");
                prop_assert_eq!(&scratch.events, &ref_events);
                match (opt_round.outcome, ref_outcome) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.blocks, b.blocks);
                        prop_assert_eq!(a.busy.to_bits(), b.busy.to_bits(), "busy time diverged");
                        prop_assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
                    }
                    (a, b) => prop_assert!(false, "outcome presence diverged: {a:?} vs {b:?}"),
                }
                // The leftover queues must agree element-for-element: the
                // reference's post-sort remainder is exactly the order the
                // incremental queue maintains.
                prop_assert_eq!(&opt_queue, &ref_queue, "leftover queues diverged");
            }
        }
    }

    /// A small, fast configuration used by most tests.
    fn small_cfg(scheme: Scheme) -> SimConfig {
        SimConfig {
            scheme,
            d: 8,
            p: 4,
            m: 1,
            q: 8,
            f: 2,
            block_bytes: 1 << 20, // generous round so q = 8 fits Eq. 1
            catalog_clips: 40,
            clip_len: 20,
            clip_len_spread: 0,
            arrival_rate: 3.0,
            zipf_theta: 0.0,
            rounds: 120,
            failure: None,
            faults: None,
            degraded_admission: false,
            verify_parity: false,
            content_bytes: 256,
            seed: 7,
            admission_scan: 64,
            aging_limit: 200,
            auto_rebuild: false,
            threads: 1,
            trace: cms_trace::TraceSpec::off(),
        }
    }

    #[test]
    fn fault_free_runs_are_clean_for_all_schemes() {
        for scheme in Scheme::ALL {
            let m = Simulator::new(small_cfg(scheme)).unwrap().run();
            assert!(m.admitted > 0, "{scheme}: nothing admitted");
            assert!(m.completed > 0, "{scheme}: nothing completed");
            assert_eq!(m.hiccups, 0, "{scheme}: fault-free run must not hiccup");
            assert_eq!(m.parity_mismatches, 0);
            assert!(
                m.peak_utilization <= 1.0 + 1e-9,
                "{scheme}: round deadline violated ({})",
                m.peak_utilization
            );
        }
    }

    #[test]
    fn consumption_matches_fetches_in_fault_free_runs() {
        let m = Simulator::new(small_cfg(Scheme::DeclusteredParity)).unwrap().run();
        // Every consumed block was fetched; completed clips consumed all
        // their blocks.
        assert!(m.blocks_consumed <= m.blocks_fetched);
        assert!(m.blocks_consumed >= m.completed * 20);
    }

    #[test]
    fn guarantee_schemes_survive_failure_without_hiccups() {
        for scheme in [
            Scheme::DeclusteredParity,
            Scheme::DynamicReservation,
            Scheme::PrefetchParityDisks,
            Scheme::PrefetchFlat,
            Scheme::StreamingRaid,
        ] {
            let cfg = small_cfg(scheme).with_failure(40, DiskId(2)).with_verification();
            let m = Simulator::new(cfg).unwrap().run();
            assert!(m.admitted > 0, "{scheme}");
            assert_eq!(
                m.hiccups, 0,
                "{scheme} must keep rate guarantees through a failure"
            );
            assert_eq!(m.parity_mismatches, 0, "{scheme}: reconstruction corrupt");
            assert!(
                m.reconstructions > 0 || m.recovery_reads == 0,
                "{scheme}: recovery accounting inconsistent"
            );
        }
    }

    #[test]
    fn failure_triggers_reconstructions_with_correct_bytes() {
        let cfg = small_cfg(Scheme::DeclusteredParity)
            .with_failure(30, DiskId(1))
            .with_verification();
        let m = Simulator::new(cfg).unwrap().run();
        assert!(m.reconstructions > 0, "failure must force reconstructions");
        assert_eq!(m.parity_mismatches, 0);
        assert!(m.recovery_reads >= m.reconstructions);
    }

    #[test]
    fn streaming_raid_reads_parity_even_when_healthy() {
        let m = Simulator::new(small_cfg(Scheme::StreamingRaid)).unwrap().run();
        // Group fetches include the parity block: fetched strictly exceeds
        // consumed even with full completion.
        assert!(m.blocks_fetched > m.blocks_consumed);
    }

    #[test]
    fn non_clustered_hiccups_under_failure_when_saturated() {
        // Saturate a small non-clustered server, then kill a disk: the
        // §7.4 caveat — transition reads exceed budgets and clips glitch.
        let mut cfg = small_cfg(Scheme::NonClustered);
        cfg.arrival_rate = 30.0; // saturate
        cfg.q = 4;
        cfg = cfg.with_failure(40, DiskId(1));
        let m = Simulator::new(cfg).unwrap().run();
        assert!(
            m.hiccups > 0,
            "saturated non-clustered must glitch on failure (got {m:?})"
        );
    }

    #[test]
    fn repair_restores_normal_operation() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.failure = Some(crate::config::FailureScenario {
            fail_round: 30,
            disk: DiskId(0),
            repair_round: Some(60),
        });
        cfg.rounds = 150;
        let sim = Simulator::new(cfg).unwrap();
        let m = sim.run();
        assert_eq!(m.hiccups, 0);
        assert!(m.reconstructions > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Simulator::new(small_cfg(Scheme::PrefetchFlat)).unwrap().run();
        let b = Simulator::new(small_cfg(Scheme::PrefetchFlat)).unwrap().run();
        assert_eq!(a, b);
        let mut cfg = small_cfg(Scheme::PrefetchFlat);
        cfg.seed = 8;
        let c = Simulator::new(cfg).unwrap().run();
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn admission_is_fifo_and_starvation_free() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.arrival_rate = 50.0; // deep queue
        let m = Simulator::new(cfg).unwrap().run();
        // Saturated: many still pending, but throughput continued all run
        // (admissions keep happening as clips complete).
        assert!(m.still_pending > 0);
        assert!(m.admitted > 40, "server must keep admitting under overload");
    }

    #[test]
    fn paper_scale_configuration_runs() {
        // One full Figure 6 cell: d = 32, B = 256 MB, declustered, p = 4.
        let input = ModelInput::sigmod96(cms_core::units::mib(256));
        let point = capacity(Scheme::DeclusteredParity, &input, 4).unwrap();
        let mut cfg = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, 32);
        cfg.rounds = 120; // keep the unit test quick
        let m = Simulator::new(cfg).unwrap().run();
        assert!(m.admitted > 300, "expected saturation-level admissions");
        assert_eq!(m.hiccups, 0);
        assert!(m.peak_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn round_reports_sum_to_cumulative_metrics() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg = cfg.with_failure(40, DiskId(1));
        let mut sim = Simulator::new(cfg).unwrap();
        let mut arrivals = 0;
        let mut admissions = 0;
        let mut completions = 0;
        let mut blocks = 0;
        let mut recovery = 0;
        let mut service_errors = 0;
        let mut rebuild_reads = 0;
        let mut late_serves = 0;
        for expected_round in 0..100u64 {
            let r = sim.step_report();
            assert_eq!(r.round, expected_round);
            arrivals += r.arrivals;
            admissions += r.admissions;
            completions += r.completions;
            blocks += r.blocks_served;
            recovery += r.recovery_reads;
            service_errors += r.service_errors;
            rebuild_reads += r.rebuild_reads;
            late_serves += r.late_serves;
            assert_eq!(r.active as usize, sim.active_clients());
            assert_eq!(r.pending as usize, sim.pending_requests());
        }
        let m = sim.metrics();
        assert_eq!(arrivals, m.arrivals);
        assert_eq!(admissions, m.admitted);
        assert_eq!(completions, m.completed);
        assert_eq!(blocks, m.blocks_fetched);
        assert_eq!(recovery, m.recovery_reads);
        assert_eq!(service_errors, m.service_errors);
        assert_eq!(rebuild_reads, m.rebuild_reads);
        assert_eq!(late_serves, m.late_serves);
        assert!(recovery > 0, "failure must show up in some round report");
    }

    #[test]
    fn step_api_exposes_progress() {
        let mut sim = Simulator::new(small_cfg(Scheme::DeclusteredParity)).unwrap();
        assert_eq!(sim.now(), 0);
        sim.step();
        assert_eq!(sim.now(), 1);
        assert_eq!(sim.metrics().rounds, 1);
        for _ in 0..30 {
            sim.step();
        }
        assert!(sim.active_clients() > 0);
    }

    #[test]
    fn external_submission_and_manual_failure() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.arrival_rate = 0.0; // fully externally driven
        cfg.verify_parity = true;
        let mut sim = Simulator::new(cfg).unwrap();
        assert!(sim.submit(ClipId(999)).is_err(), "unknown clip rejected");
        for clip in 0..10u64 {
            sim.submit(ClipId(clip)).unwrap();
        }
        assert_eq!(sim.pending_requests(), 10);
        for _ in 0..5 {
            sim.step();
        }
        assert!(sim.active_clients() > 0);
        // Manual failure mid-run; single-failure model enforced.
        sim.fail_disk(DiskId(3)).unwrap();
        assert_eq!(sim.failed_disk(), Some(DiskId(3)));
        assert!(sim.fail_disk(DiskId(4)).is_err());
        assert!(sim.repair_disk(DiskId(4)).is_err());
        for _ in 0..10 {
            sim.step();
        }
        sim.repair_disk(DiskId(3)).unwrap();
        assert_eq!(sim.failed_disk(), None);
        for _ in 0..40 {
            sim.step();
        }
        let m = sim.metrics();
        assert_eq!(m.hiccups, 0);
        assert_eq!(m.parity_mismatches, 0);
        assert_eq!(m.completed, 10);
    }

    #[test]
    fn background_rebuild_restores_redundancy() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.auto_rebuild = true;
        cfg.verify_parity = true;
        cfg.rounds = 400;
        cfg.arrival_rate = 1.0; // leave slack for the rebuild
        cfg = cfg.with_failure(30, DiskId(2));
        let m = Simulator::new(cfg).unwrap().run();
        assert_eq!(m.hiccups, 0, "client guarantees hold during rebuild");
        assert!(m.rebuild_reads > 0, "rebuild must issue reads");
        assert!(m.rebuilt_blocks > 0);
        let done = m
            .rebuild_completed_round
            .expect("rebuild must finish within the run");
        assert!(done > 30, "completion after the failure");
        assert_eq!(m.parity_mismatches, 0);
    }

    #[test]
    fn rebuild_has_lowest_priority() {
        // Saturate the server; the rebuild must progress only via slack
        // and never cause a client hiccup.
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.auto_rebuild = true;
        cfg.arrival_rate = 20.0; // saturated
        cfg.rounds = 300;
        cfg = cfg.with_failure(50, DiskId(1));
        let m = Simulator::new(cfg).unwrap().run();
        assert_eq!(m.hiccups, 0, "rebuild must never displace client reads");
        assert!(m.rebuilt_blocks > 0, "rebuild still progresses via slack");
    }

    #[test]
    fn manual_repair_cancels_rebuild() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.auto_rebuild = true;
        cfg.arrival_rate = 0.0;
        let mut sim = Simulator::new(cfg).unwrap();
        sim.fail_disk(DiskId(3)).unwrap();
        assert!(sim.rebuild_progress().is_some());
        sim.step();
        sim.repair_disk(DiskId(3)).unwrap();
        assert!(sim.rebuild_progress().is_none());
        assert_eq!(sim.failed_disk(), None);
    }

    #[test]
    fn pause_releases_bandwidth_and_resume_replays() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.arrival_rate = 0.0;
        let mut sim = Simulator::new(cfg).unwrap();
        let ids: Vec<RequestId> =
            (0..6u64).map(|c| sim.submit(ClipId(c)).unwrap()).collect();
        for _ in 0..6 {
            sim.step();
        }
        assert_eq!(sim.active_clients(), 6);
        // Pause half of them: slots free immediately.
        for &id in &ids[..3] {
            sim.pause(id).unwrap();
        }
        assert_eq!(sim.active_clients(), 3);
        assert_eq!(sim.paused_sessions(), 3);
        assert!(sim.pause(ids[0]).is_err(), "double pause rejected");
        for _ in 0..5 {
            sim.step();
        }
        // Resume them; all must complete without a glitch.
        for &id in &ids[..3] {
            sim.resume(id).unwrap();
        }
        assert_eq!(sim.paused_sessions(), 0);
        assert!(sim.resume(ids[0]).is_err(), "double resume rejected");
        for _ in 0..60 {
            sim.step();
        }
        let m = sim.metrics();
        assert_eq!(m.completed, 6);
        assert_eq!(m.hiccups, 0);
    }

    #[test]
    fn pause_resume_for_prefetch_aligns_to_groups() {
        let mut cfg = small_cfg(Scheme::PrefetchParityDisks);
        cfg.arrival_rate = 0.0;
        let mut sim = Simulator::new(cfg).unwrap();
        let id = sim.submit(ClipId(0)).unwrap();
        for _ in 0..8 {
            sim.step();
        }
        sim.pause(id).unwrap();
        let resumed = sim.resume(id).unwrap();
        assert_ne!(resumed, id);
        for _ in 0..60 {
            sim.step();
        }
        let m = sim.metrics();
        assert_eq!(m.completed, 1);
        assert_eq!(m.hiccups, 0);
    }

    #[test]
    fn pause_at_clip_end_completes_on_resume() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.arrival_rate = 0.0;
        let mut sim = Simulator::new(cfg).unwrap();
        let id = sim.submit(ClipId(1)).unwrap();
        // Play to the penultimate round, then pause and resume.
        for _ in 0..20 {
            sim.step();
        }
        if sim.active_clients() == 1 {
            sim.pause(id).unwrap();
            sim.resume(id).unwrap();
            for _ in 0..30 {
                sim.step();
            }
        }
        assert_eq!(sim.metrics().completed, 1);
        assert_eq!(sim.metrics().hiccups, 0);
    }

    #[test]
    fn heterogeneous_clip_lengths_play_cleanly() {
        for scheme in Scheme::ALL {
            let mut cfg = small_cfg(scheme);
            cfg.clip_len_spread = 15; // clips of 20..=35 blocks
            cfg.rounds = 160;
            cfg = cfg.with_failure(60, DiskId(2)).with_verification();
            let m = Simulator::new(cfg).unwrap().run();
            assert!(m.completed > 0, "{scheme}");
            let allowed_hiccups = if scheme == Scheme::NonClustered { u64::MAX } else { 0 };
            assert!(m.hiccups <= allowed_hiccups, "{scheme}");
            assert_eq!(m.parity_mismatches, 0, "{scheme}");
        }
    }

    #[test]
    fn tracing_does_not_change_metrics() {
        let base = Simulator::new(small_cfg(Scheme::DeclusteredParity)).unwrap().run();
        let traced_cfg =
            small_cfg(Scheme::DeclusteredParity).with_trace(cms_trace::TraceSpec::null());
        let (traced, summary) = Simulator::new(traced_cfg).unwrap().run_summary();
        assert_eq!(base, traced, "tracing must be observation-only");
        let s = summary.expect("null trace still summarises");
        assert_eq!(s.arrivals, traced.arrivals);
        assert_eq!(s.admissions, traced.admitted);
        assert_eq!(s.completions, traced.completed);
        assert_eq!(s.recovery_reads, traced.recovery_reads);
        assert_eq!(s.hiccups, traced.hiccups);
        assert_eq!(s.late_serves, traced.late_serves);
        assert_eq!(s.blocks_served, traced.blocks_fetched);
        assert!(s.busy_us.total() > 0, "disk-serve events feed the busy histogram");
        assert!(s.queue_depth.total() > 0);
    }

    #[test]
    fn trace_summary_records_failure_milestones() {
        let cfg = small_cfg(Scheme::DeclusteredParity)
            .with_failure(40, DiskId(2))
            .with_trace(cms_trace::TraceSpec::null());
        let (m, summary) = Simulator::new(cfg).unwrap().run_summary();
        let s = summary.unwrap();
        assert_eq!(s.failure_round, Some(40));
        assert_eq!(s.recovery_reads, m.recovery_reads);
        assert!(s.recovery_reads > 0);
        let gap = s.failure_to_first_recovery().expect("recovery reads after failure");
        assert!(gap <= 2, "recovery starts within a couple of rounds, got {gap}");
        assert!(s.recovery_fanout.total() > 0, "fan-out recorded per lost block");
    }

    #[test]
    fn trace_summary_reports_finite_rebuild_gap() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.auto_rebuild = true;
        cfg.rounds = 400;
        cfg.arrival_rate = 1.0;
        cfg = cfg.with_failure(30, DiskId(2)).with_trace(cms_trace::TraceSpec::null());
        let (m, summary) = Simulator::new(cfg).unwrap().run_summary();
        let s = summary.unwrap();
        let gap = s.failure_to_rebuild_complete().expect("rebuild must finish in-run");
        assert!(gap > 0, "rebuild cannot complete in the failure round");
        assert_eq!(s.rebuild_completed_round, m.rebuild_completed_round);
    }

    #[test]
    fn ring_sink_keeps_a_bounded_recent_window() {
        let mut sim = Simulator::new(small_cfg(Scheme::DeclusteredParity)).unwrap();
        let ring = cms_trace::RingSink::new(5);
        let handle = ring.handle();
        sim.set_trace_sink(Box::new(ring));
        for _ in 0..50 {
            sim.step();
        }
        let events = handle.events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.round >= 44), "only the last 5 rounds survive");
        assert!(events.windows(2).all(|w| w[0].round <= w[1].round), "rounds non-decreasing");
        assert_eq!(
            sim.trace_summary().map(|s| s.events > 0),
            Some(true),
            "summary runs alongside the ring"
        );
    }

    #[test]
    fn scheduled_double_failure_declares_streams_lost() {
        // Two hard failures 10 rounds apart: every stream whose due
        // group spans both disks is terminated deterministically. Disks
        // 1 and 3 share parity groups in the seed-7 (8, 4) design; a
        // pair from complementary sets (e.g. 1 and 2) never would, and
        // the array would keep reconstructing around both.
        let faults = cms_fault::FaultSchedule::parse("@30 fail 1\n@40 fail 3\n").unwrap();
        let cfg = small_cfg(Scheme::DeclusteredParity).with_faults(faults);
        let run = || Simulator::new(cfg.clone()).unwrap().run();
        let m = run();
        assert!(m.lost_streams > 0, "overlapping groups must lose streams: {m:?}");
        assert_eq!(m.parity_mismatches, 0);
        assert!(m.completed + m.lost_streams <= m.admitted);
        assert_eq!(m, run(), "loss declaration must be deterministic");
    }

    #[test]
    fn transient_outage_reconstructs_and_recovers() {
        let faults =
            cms_fault::FaultSchedule::parse("@30 transient 2 rounds=10\n").unwrap();
        let cfg = small_cfg(Scheme::DeclusteredParity).with_faults(faults).with_verification();
        let m = Simulator::new(cfg).unwrap().run();
        assert_eq!(m.hiccups, 0, "reconstruction covers the blip: {m:?}");
        assert_eq!(m.lost_streams, 0);
        assert_eq!(m.parity_mismatches, 0);
        assert!(m.recovery_reads > 0, "reads during the window go through recovery");
        assert!(m.completed > 0);
        // The disk served blocks again after the window closed.
        assert!(m.disk_blocks[2] > 0, "disk 2 must return to service");
    }

    #[test]
    fn slow_disk_window_throttles_but_loses_nothing() {
        let faults =
            cms_fault::FaultSchedule::parse("@30 slow 2 factor=4 rounds=20\n").unwrap();
        let mut cfg = small_cfg(Scheme::DeclusteredParity).with_faults(faults);
        cfg.arrival_rate = 1.0;
        let m = Simulator::new(cfg).unwrap().run();
        assert_eq!(m.lost_streams, 0);
        assert_eq!(m.parity_mismatches, 0);
        assert!(m.completed > 0);
    }

    #[test]
    fn degraded_admission_caps_active_streams() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity)
            .with_failure(20, DiskId(1))
            .with_degraded_admission();
        cfg.arrival_rate = 20.0; // keep the pending queue deep
        let m = Simulator::new(cfg.clone()).unwrap().run();
        assert!(m.degraded_refusals > 0, "cap must bite under overload: {m:?}");
        // Enforcement off: same workload admits past the cap's refusals.
        let mut open = cfg;
        open.degraded_admission = false;
        let o = Simulator::new(open).unwrap().run();
        assert_eq!(o.degraded_refusals, 0);
        assert!(o.admitted >= m.admitted);
    }

    #[test]
    fn nonclustered_degraded_cap_is_zero() {
        let faults = cms_fault::FaultSchedule::parse("@20 fail 1\n").unwrap();
        let mut cfg = small_cfg(Scheme::NonClustered)
            .with_faults(faults)
            .with_degraded_admission();
        cfg.arrival_rate = 10.0;
        let m = Simulator::new(cfg).unwrap().run();
        assert!(m.degraded_refusals > 0, "no admissions while degraded: {m:?}");
    }

    #[test]
    fn fault_schedule_repair_restores_service() {
        let faults =
            cms_fault::FaultSchedule::parse("@30 fail 2\n@60 repair 2\n").unwrap();
        let mut cfg = small_cfg(Scheme::DeclusteredParity).with_faults(faults);
        cfg.rounds = 150;
        let mut sim = Simulator::new(cfg).unwrap();
        for _ in 0..40 {
            sim.step();
        }
        assert_eq!(sim.failed_disk(), Some(DiskId(2)));
        for _ in 0..30 {
            sim.step();
        }
        assert_eq!(sim.failed_disk(), None, "scheduled repair must clear the failure");
        for _ in 0..80 {
            sim.step();
        }
        let m = sim.metrics();
        assert_eq!(m.hiccups, 0);
        assert_eq!(m.lost_streams, 0);
    }

    #[test]
    fn fault_schedule_runs_are_thread_invariant() {
        let faults = cms_fault::FaultSchedule::parse(
            "@25 transient 0 rounds=6\n@30 fail 1\n@45 slow 4 factor=3 rounds=15\n@70 fail 2\n",
        )
        .unwrap();
        let mut base = small_cfg(Scheme::DeclusteredParity).with_faults(faults);
        base.auto_rebuild = true;
        let seq = Simulator::new(base.clone().with_threads(1)).unwrap().run();
        let par = Simulator::new(base.with_threads(4)).unwrap().run();
        assert_eq!(seq, par, "multi-event fault runs must be bit-identical");
        assert!(seq.lost_streams > 0, "double failure must surface in metrics");
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let mut cfg = small_cfg(Scheme::DeclusteredParity);
        cfg.block_bytes = 0;
        assert!(Simulator::new(cfg).is_err());
        let mut cfg = small_cfg(Scheme::StreamingRaid);
        cfg.p = 3; // 3 ∤ 8
        assert!(Simulator::new(cfg).is_err());
    }

    #[test]
    fn degraded_cap_scales_nominal_capacity_by_surviving_disks() {
        let mut cfg = small_cfg(Scheme::PrefetchParityDisks).with_failure(20, DiskId(2));
        cfg.degraded_admission = true;
        let mut sim = Simulator::new(cfg).unwrap();
        let nominal = sim.nominal_capacity();
        let mut saw_down = false;
        for _ in 0..60 {
            let r = sim.step_report();
            if r.down_disks == 1 {
                saw_down = true;
                assert_eq!(r.degraded_cap, Some(nominal * 7 / 8));
            } else {
                assert_eq!(r.down_disks, 0);
                assert_eq!(r.degraded_cap, None, "healthy rounds carry no cap");
            }
        }
        assert!(saw_down, "the injected failure never took effect");
    }

    #[test]
    fn non_clustered_outage_caps_admission_at_zero() {
        let mut cfg = small_cfg(Scheme::NonClustered).with_failure(20, DiskId(1));
        cfg.degraded_admission = true;
        let mut sim = Simulator::new(cfg).unwrap();
        let mut down_rounds = 0u64;
        for _ in 0..60 {
            let r = sim.step_report();
            if r.down_disks > 0 {
                down_rounds += 1;
                assert_eq!(
                    r.degraded_cap,
                    Some(0),
                    "no redundancy ⇒ nothing is admissible while down"
                );
                assert_eq!(r.admissions, 0, "round {}: admitted under a zero cap", r.round);
            }
        }
        assert!(down_rounds > 0, "the injected failure never took effect");
    }

    #[test]
    fn second_concurrent_outage_caps_admission_at_zero() {
        // Disks 2 and 6 sit in different clusters, so each failure alone
        // is inside the designed tolerance — only their overlap trips the
        // beyond-tolerance zero cap.
        let faults = cms_fault::FaultSchedule::parse("@20 fail 2\n@24 fail 6\n").unwrap();
        let mut cfg = small_cfg(Scheme::PrefetchParityDisks).with_faults(faults);
        cfg.degraded_admission = true;
        let mut sim = Simulator::new(cfg).unwrap();
        let nominal = sim.nominal_capacity();
        let (mut single, mut double) = (0u64, 0u64);
        for _ in 0..60 {
            let r = sim.step_report();
            match r.down_disks {
                0 => assert_eq!(r.degraded_cap, None),
                1 => {
                    single += 1;
                    assert_eq!(r.degraded_cap, Some(nominal * 7 / 8));
                }
                _ => {
                    double += 1;
                    assert_eq!(r.degraded_cap, Some(0), "double outage must refuse all");
                    assert_eq!(r.admissions, 0, "round {}: admitted under a zero cap", r.round);
                }
            }
        }
        assert!(single > 0 && double > 0, "fault schedule never reached both states");
    }
}
