//! Seeded one-shot runs: build a simulator, step every configured round,
//! and hand back the complete per-round report stream alongside the
//! final metrics and the static facts (capacity ceiling, per-disk layout
//! occupancy) an external checker needs.
//!
//! This is the conformance harness's entry point into the engine: one
//! call, fully deterministic under the config's seed and thread count,
//! with nothing about the run hidden behind accessors.

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::metrics::{Metrics, RoundReport};
use cms_core::{CmsError, DiskId};

/// Everything one deterministic run produced.
#[derive(Debug, Clone)]
pub struct CaseRun {
    /// Final accumulated metrics (with `still_pending` resolved, exactly
    /// as [`Simulator::run`] reports it).
    pub metrics: Metrics,
    /// One report per simulated round, in order.
    pub reports: Vec<RoundReport>,
    /// The admission controller's fault-free capacity ceiling.
    pub nominal_capacity: u64,
    /// Blocks the layout placed on each disk, indexed by disk id — what
    /// a rebuild of that disk must reconstruct.
    pub disk_blocks_used: Vec<u64>,
}

/// Runs `cfg` to completion, collecting every round's report.
///
/// # Errors
///
/// Propagates construction errors from [`Simulator::new`] (invalid or
/// infeasible configurations).
pub fn run_case(cfg: SimConfig) -> Result<CaseRun, CmsError> {
    let mut sim = Simulator::new(cfg)?;
    let d = sim.config().d;
    let rounds = sim.config().rounds;
    let nominal_capacity = sim.nominal_capacity();
    let disk_blocks_used: Vec<u64> =
        (0..d).map(|i| sim.layout_blocks_used(DiskId(i))).collect();
    let mut reports = Vec::with_capacity(usize::try_from(rounds).unwrap_or(0));
    for _ in 0..rounds {
        reports.push(sim.step_report());
    }
    let mut metrics = sim.metrics().clone();
    metrics.still_pending = sim.pending_requests() as u64;
    Ok(CaseRun { metrics, reports, nominal_capacity, disk_blocks_used })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::Scheme;
    use cms_model::{tuned_point, ModelInput};

    fn small_cfg() -> SimConfig {
        let mut inp = ModelInput::sigmod96(64 << 20).with_storage_blocks(2_000);
        inp.d = 8;
        let point = tuned_point(Scheme::DeclusteredParity, &inp, 4, 1).unwrap();
        let mut cfg = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, 8);
        cfg.catalog_clips = 30;
        cfg.clip_len = 20;
        cfg.arrival_rate = 2.0;
        cfg.rounds = 60;
        cfg
    }

    #[test]
    fn one_shot_matches_plain_run() {
        let run = run_case(small_cfg()).unwrap();
        let direct = Simulator::new(small_cfg()).unwrap().run();
        assert_eq!(run.metrics, direct);
        assert_eq!(run.reports.len(), 60);
        assert_eq!(run.disk_blocks_used.len(), 8);
        assert!(run.nominal_capacity > 0);
        // Per-round deltas must sum to the final totals.
        let admitted: u64 = run.reports.iter().map(|r| r.admissions).sum();
        assert_eq!(admitted, run.metrics.admitted);
    }
}
