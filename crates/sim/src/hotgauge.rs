//! Hot-path allocation gauge (feature `bench-alloc`).
//!
//! The performance contract (DESIGN.md §7) promises zero allocations per
//! steady-state round inside the disk-service phase. This module lets a
//! bench binary *measure* that promise instead of trusting it: the bin
//! installs a counting global allocator that calls [`note_alloc`] on
//! every allocation, and the engine brackets phase one of
//! `execute_disks` with [`enter_serve`]/[`exit_serve`]. Allocations
//! landing inside the bracket are attributed to the serve path.
//!
//! Attribution is only meaningful at `threads = 1`: the flag is global,
//! so with worker threads the bracket also captures the thread spawns
//! themselves and any unrelated allocation that races into the window.
//! `perf_baseline` therefore runs its allocation check single-threaded.

// lint: allow-file(D005) measurement-only gauge: the counters are written
// inside the bracket but only read after the round's workers have joined,
// so no simulation state ever depends on their interleaving.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static IN_SERVE: AtomicBool = AtomicBool::new(false);
static SERVE_ALLOCS: AtomicU64 = AtomicU64::new(0);
static SERVE_ROUNDS: AtomicU64 = AtomicU64::new(0);

/// Called by a counting global allocator on every allocation. Counts the
/// allocation only while the engine is inside the disk-service phase.
pub fn note_alloc() {
    if IN_SERVE.load(Ordering::Relaxed) {
        SERVE_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Engine hook: the disk-service phase begins.
pub(crate) fn enter_serve() {
    IN_SERVE.store(true, Ordering::Relaxed);
}

/// Engine hook: the disk-service phase ended (one more serve phase done).
pub(crate) fn exit_serve() {
    IN_SERVE.store(false, Ordering::Relaxed);
    SERVE_ROUNDS.fetch_add(1, Ordering::Relaxed);
}

/// Measurement-chain self-test: runs `f` inside a synthetic serve-phase
/// bracket. A bench binary that installs a counting allocator calls this
/// with a closure that deliberately allocates and asserts the allocation
/// was counted — proving allocator → [`note_alloc`] → bracket
/// attribution end-to-end. Needed because the real scenarios are
/// allocation-free: a dead gauge and a clean hot path report the same
/// zero.
pub fn probe_serve<R>(f: impl FnOnce() -> R) -> R {
    enter_serve();
    let r = f();
    exit_serve();
    r
}

/// Zeroes both counters (call after warm-up rounds).
pub fn reset() {
    SERVE_ALLOCS.store(0, Ordering::Relaxed);
    SERVE_ROUNDS.store(0, Ordering::Relaxed);
}

/// `(allocations inside serve phases, serve phases observed)` since the
/// last [`reset`].
#[must_use]
pub fn snapshot() -> (u64, u64) {
    (
        SERVE_ALLOCS.load(Ordering::Relaxed),
        SERVE_ROUNDS.load(Ordering::Relaxed),
    )
}
