//! Simulation metrics.

use cms_trace::Histogram;
use serde::{Deserialize, Serialize};

/// What happened in a single round — the per-tick observability record a
/// deployment would feed its dashboards. Produced by the simulator's
/// `step_report` (and `CmServer::tick_report`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// The round that just executed (0-based).
    pub round: u64,
    /// Client requests that arrived this round.
    pub arrivals: u64,
    /// Requests admitted this round.
    pub admissions: u64,
    /// Clips that finished playback this round.
    pub completions: u64,
    /// Blocks served by all disks this round (recovery and rebuild reads
    /// included).
    pub blocks_served: u64,
    /// Recovery (failure-mode) reads issued this round.
    pub recovery_reads: u64,
    /// Playback glitches this round (always 0 for the guarantee schemes).
    pub hiccups: u64,
    /// Fetches dropped by refused service rounds this round.
    pub service_errors: u64,
    /// Background-rebuild reads issued this round.
    pub rebuild_reads: u64,
    /// Streams declared lost this round (second failure in their group).
    pub lost_streams: u64,
    /// Admissions refused this round by the degraded-mode cap.
    pub degraded_refusals: u64,
    /// Fetches delivered later than the round before they were needed,
    /// this round.
    pub late_serves: u64,
    /// Active playback sessions at end of round.
    pub active: u64,
    /// Requests still queued at end of round.
    pub pending: u64,
    /// Disks unavailable for service this round (hard-failed plus inside
    /// a transient window), counted after the round's fault events
    /// applied — i.e. the outage state admission actually saw.
    pub down_disks: u64,
    /// The degraded-mode admission cap in force this round: `None` when
    /// enforcement is off or the array is healthy, `Some(0)` in the
    /// refuse-everything regime (NonClustered through any outage, or a
    /// second concurrent outage). The conformance harness checks
    /// admissions against exactly this value.
    pub degraded_cap: Option<u64>,
}

/// Everything a run reports. The Figure 6 metric is
/// [`Metrics::admitted`]; the fault-tolerance claims are
/// [`Metrics::hiccups`] (must be 0 for schemes 1–5 through a failure) and
/// [`Metrics::parity_mismatches`] (must always be 0).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds simulated.
    pub rounds: u64,
    /// Client requests that arrived.
    pub arrivals: u64,
    /// Requests admitted (the paper's "clips serviced").
    pub admitted: u64,
    /// Clips that played to completion.
    pub completed: u64,
    /// Requests still waiting at the end.
    pub still_pending: u64,
    /// Sum of admission waiting times (rounds), over admitted requests.
    pub wait_rounds_total: u64,
    /// Largest admission wait seen.
    pub wait_rounds_max: u64,
    /// Blocks delivered to clients.
    pub blocks_consumed: u64,
    /// Blocks fetched from disks (including recovery reads).
    pub blocks_fetched: u64,
    /// Extra reads caused by the failure (group members, parity).
    pub recovery_reads: u64,
    /// Blocks reconstructed by XOR.
    pub reconstructions: u64,
    /// Reconstructed blocks that failed byte-level verification.
    /// Anything above zero is a layout/codec bug.
    pub parity_mismatches: u64,
    /// Playback discontinuities: a block missing in the round it was due.
    pub hiccups: u64,
    /// Fetches served later than the round before they were needed.
    pub late_serves: u64,
    /// Fetches dropped because a disk refused a service round (failed
    /// disk or out-of-range block). Always 0 for valid layouts; anything
    /// above zero is a routing bug surfaced as data, not a panic.
    pub service_errors: u64,
    /// Peak simultaneous per-disk queue depth observed.
    pub peak_disk_queue: u32,
    /// Peak buffered (fetched, unconsumed) blocks across all clients.
    pub peak_buffered_blocks: u64,
    /// Highest per-disk round utilization observed (busy / deadline,
    /// worst-case timing model).
    pub peak_utilization: f64,
    /// Highest concurrently active client count.
    pub peak_active: u64,
    /// Background-rebuild reads issued (reconstructing the failed disk
    /// onto a spare from slack bandwidth).
    pub rebuild_reads: u64,
    /// Failed-disk blocks rebuilt onto the spare.
    pub rebuilt_blocks: u64,
    /// Round at which the rebuild finished (the array returned to full
    /// redundancy), if it did.
    pub rebuild_completed_round: Option<u64>,
    /// Streams deterministically declared lost because a second failure
    /// in the same parity group made a due block unreconstructable. The
    /// client is terminated and counted here — never silently mis-served.
    pub lost_streams: u64,
    /// Admissions refused by the degraded-mode cap (active streams held
    /// at `healthy_disks × (q − f)` while any disk is down).
    pub degraded_refusals: u64,
    /// Rebuild blocks abandoned because a second failure removed a source
    /// needed to reconstruct them; the rebuild completes around the hole.
    pub unrecoverable_blocks: u64,
    /// Histogram of admission waits, log₂-bucketed: bucket `k` counts
    /// admissions that waited in `[2^k − 1, 2^(k+1) − 1)` rounds (bucket
    /// 0 = admitted immediately). Drives the percentile queries; the
    /// serialized form is the bare bucket-count array, unchanged from
    /// when this field was a `Vec<u64>`.
    pub wait_histogram: Histogram,
    /// Cumulative busy time per disk (seconds), indexed by disk id.
    /// Accumulated in disk-ID order regardless of how many service
    /// threads ran, so the floats are bit-identical at any thread count —
    /// the determinism replay tests compare these field-for-field.
    pub disk_busy: Vec<f64>,
    /// Blocks served per disk, indexed by disk id.
    pub disk_blocks: Vec<u64>,
    /// Recovery (failure-mode) reads issued per disk, indexed by disk id.
    /// The declustered-vs-clustered differential tests compare the spread
    /// of this vector among survivors (§4.1 / §6.1).
    pub disk_recovery_reads: Vec<u64>,
    /// Background-rebuild source reads issued per disk, indexed by disk
    /// id.
    pub disk_rebuild_reads: Vec<u64>,
}

impl Metrics {
    /// Mean admission wait in rounds.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.wait_rounds_total as f64 / self.admitted as f64
        }
    }

    /// Admissions per round — the paper's "clips serviced per unit time".
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.admitted as f64 / self.rounds as f64
        }
    }

    /// Did every rate guarantee hold?
    #[must_use]
    pub fn guarantees_held(&self) -> bool {
        self.hiccups == 0 && self.parity_mismatches == 0
    }

    /// Records one admission wait into the histogram.
    pub fn record_wait(&mut self, wait_rounds: u64) {
        self.wait_histogram.record(wait_rounds);
    }

    /// Approximate wait percentile (upper bound of the bucket containing
    /// the requested quantile), in rounds. `pct` in `0.0..=1.0`.
    #[must_use]
    pub fn wait_percentile(&self, pct: f64) -> u64 {
        self.wait_histogram.percentile(pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let m = Metrics {
            rounds: 600,
            admitted: 6000,
            wait_rounds_total: 12_000,
            ..Metrics::default()
        };
        assert!((m.mean_wait() - 2.0).abs() < 1e-12);
        assert!((m.throughput() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let m = Metrics::default();
        assert_eq!(m.mean_wait(), 0.0);
        assert_eq!(m.throughput(), 0.0);
        assert!(m.guarantees_held());
    }

    #[test]
    fn wait_histogram_buckets_and_percentiles() {
        let mut m = Metrics::default();
        // 90 immediate admissions, 10 that waited ~20 rounds.
        for _ in 0..90 {
            m.record_wait(0);
        }
        for _ in 0..10 {
            m.record_wait(20);
        }
        assert_eq!(m.wait_percentile(0.5), 0, "median is immediate");
        let p99 = m.wait_percentile(0.99);
        assert!((15..=62).contains(&p99), "p99 covers the slow bucket, got {p99}");
        // Monotone in pct.
        assert!(m.wait_percentile(0.95) >= m.wait_percentile(0.50));
        // Empty histogram is safe.
        assert_eq!(Metrics::default().wait_percentile(0.9), 0);
    }

    #[test]
    fn guarantee_flag_trips_on_hiccups() {
        let m = Metrics { hiccups: 1, ..Metrics::default() };
        assert!(!m.guarantees_held());
        let m = Metrics { parity_mismatches: 1, ..Metrics::default() };
        assert!(!m.guarantees_held());
    }
}
