//! Property tests for the log₂ histogram: bucket edges are exact
//! (every value lands between its bucket's lower and upper edge, and
//! edges tile `u64` without gaps or overlaps) and `percentile` is
//! monotone in `pct`.

use cms_trace::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value falls inside the edges of its own bucket.
    #[test]
    fn bucket_edges_are_exact(value in any::<u64>()) {
        let bucket = Histogram::bucket_of(value);
        prop_assert!(Histogram::bucket_lower(bucket) <= value);
        prop_assert!(value <= Histogram::bucket_upper(bucket));
    }

    /// Buckets tile the u64 line: each upper edge is immediately
    /// followed by the next bucket's lower edge.
    #[test]
    fn buckets_tile_without_gaps(bucket in 0usize..63) {
        let upper = Histogram::bucket_upper(bucket);
        prop_assert_eq!(Histogram::bucket_lower(bucket + 1), upper + 1);
        // And the edges themselves round-trip through bucket_of.
        prop_assert_eq!(Histogram::bucket_of(Histogram::bucket_lower(bucket)), bucket);
        prop_assert_eq!(Histogram::bucket_of(upper), bucket);
    }

    /// percentile(pct) never decreases as pct grows, and is bounded by
    /// the extreme quantiles.
    #[test]
    fn percentile_is_monotone_in_pct(
        samples in prop::collection::vec(0u64..100_000, 1..200),
        a in 0u32..1001,
        b in 0u32..1001,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = h.percentile(f64::from(lo) / 1000.0);
        let p_hi = h.percentile(f64::from(hi) / 1000.0);
        prop_assert!(p_lo <= p_hi, "percentile not monotone: p({lo}) = {p_lo} > p({hi}) = {p_hi}");
        prop_assert!(p_hi <= h.percentile(1.0));
        prop_assert!(h.percentile(0.0) <= p_lo);
    }

    /// The percentile upper bound is honest: at least `pct` of the mass
    /// sits at or below the reported value.
    #[test]
    fn percentile_covers_the_requested_mass(
        samples in prop::collection::vec(0u64..100_000, 1..200),
        pct_milli in 0u32..1001,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let pct = f64::from(pct_milli) / 1000.0;
        let bound = h.percentile(pct);
        let at_or_below = samples.iter().filter(|&&s| s <= bound).count() as f64;
        let need = (pct * samples.len() as f64).ceil();
        prop_assert!(
            at_or_below >= need,
            "only {at_or_below} of {} samples <= p({pct}) = {bound}, need {need}",
            samples.len()
        );
    }

    /// Merging histograms is the same as recording the concatenation.
    #[test]
    fn merge_equals_concatenation(
        xs in prop::collection::vec(0u64..100_000, 0..100),
        ys in prop::collection::vec(0u64..100_000, 0..100),
    ) {
        let mut merged = Histogram::new();
        let mut separate = Histogram::new();
        for &x in &xs {
            merged.record(x);
            separate.record(x);
        }
        let mut other = Histogram::new();
        for &y in &ys {
            merged.record(y);
            other.record(y);
        }
        separate.merge(&other);
        prop_assert_eq!(separate.total(), merged.total());
        prop_assert_eq!(separate.percentile(0.5), merged.percentile(0.5));
        prop_assert_eq!(separate.counts(), merged.counts());
    }
}
