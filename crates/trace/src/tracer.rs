//! The tracer: one emit point the engine talks to, fanning each event
//! into the configured sink and a running [`TraceSummary`].

use crate::event::{EventKind, TraceEvent};
use crate::hist::Histogram;
use crate::sink::TraceSink;

/// Aggregates every event the tracer saw: per-kind counts, the
/// failure/recovery/rebuild milestone rounds, and the load-shape
/// histograms the paper's §5–§7 discussion cares about.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Every event recorded.
    pub events: u64,
    /// `Arrival` events.
    pub arrivals: u64,
    /// `Admission` events.
    pub admissions: u64,
    /// `Rejection` events (admission retries, not final denials).
    pub rejections: u64,
    /// `Completion` events.
    pub completions: u64,
    /// `RecoveryRead` events.
    pub recovery_reads: u64,
    /// `Reconstruction` events.
    pub reconstructions: u64,
    /// `Hiccup` events.
    pub hiccups: u64,
    /// `LateServe` events.
    pub late_serves: u64,
    /// `StreamLost` events (streams terminated by a second failure).
    pub lost_streams: u64,
    /// `DegradedRefusal` events (admissions refused while degraded).
    pub degraded_refusals: u64,
    /// `DiskTransient` events (transient outage windows opened).
    pub transient_outages: u64,
    /// `DiskSlow` events (slow windows opened).
    pub slow_windows: u64,
    /// Fetches dropped across all `ServiceError` events.
    pub service_errors: u64,
    /// Blocks retrieved across all `DiskServe` events.
    pub blocks_served: u64,
    /// Round of the first `DiskFailure`, if any.
    pub failure_round: Option<u64>,
    /// Round of the first `DiskRepair`, if any.
    pub repair_round: Option<u64>,
    /// Round of the first `RecoveryRead`, if any.
    pub first_recovery_read_round: Option<u64>,
    /// Round of the first `RebuildComplete`, if any.
    pub rebuild_completed_round: Option<u64>,
    /// Per-disk per-round busy time in microseconds (one sample per
    /// `DiskServe` event).
    pub busy_us: Histogram,
    /// Per-disk per-round queue depth before the EDF drain (one sample
    /// per `DiskServe` event).
    pub queue_depth: Histogram,
    /// Recovery-read fan-out: surviving disks touched per reconstructed
    /// block (recorded explicitly by the engine at issue time).
    pub recovery_fanout: Histogram,
    /// `NodeFailure` events (whole server nodes going dark).
    pub node_failures: u64,
    /// `NodeRepair` events (nodes returning, blank, to start rebuild).
    pub node_repairs: u64,
    /// `StreamMigrated` events (streams moved to surviving replicas).
    pub stream_migrations: u64,
    /// Blocks shipped across all `CrossNodeRebuildRead` events.
    pub cross_node_rebuild_blocks: u64,
    /// Round of the first `NodeFailure`, if any.
    pub node_failure_round: Option<u64>,
    /// Round of the first `NodeRebuildComplete`, if any.
    pub node_rebuild_completed_round: Option<u64>,
}

impl TraceSummary {
    /// Folds one event into the summary.
    pub fn observe(&mut self, event: &TraceEvent) {
        self.events += 1;
        let first = |slot: &mut Option<u64>, round: u64| {
            if slot.is_none() {
                *slot = Some(round);
            }
        };
        match event.kind {
            EventKind::Arrival { .. } => self.arrivals += 1,
            EventKind::Admission { .. } => self.admissions += 1,
            EventKind::Rejection { .. } => self.rejections += 1,
            EventKind::Completion { .. } => self.completions += 1,
            EventKind::DiskFailure { .. } => first(&mut self.failure_round, event.round),
            EventKind::DiskRepair { .. } => first(&mut self.repair_round, event.round),
            EventKind::RecoveryRead { .. } => {
                self.recovery_reads += 1;
                first(&mut self.first_recovery_read_round, event.round);
            }
            EventKind::Reconstruction { .. } => self.reconstructions += 1,
            EventKind::DiskServe { blocks, busy_us, queue, .. } => {
                self.blocks_served += u64::from(blocks);
                self.busy_us.record(busy_us);
                self.queue_depth.record(u64::from(queue));
            }
            EventKind::ServiceError { dropped, .. } => {
                self.service_errors += u64::from(dropped);
            }
            EventKind::RebuildProgress { .. } => {}
            EventKind::RebuildComplete { .. } => {
                first(&mut self.rebuild_completed_round, event.round);
            }
            EventKind::Hiccup { .. } => self.hiccups += 1,
            EventKind::LateServe { .. } => self.late_serves += 1,
            EventKind::StreamLost { .. } => self.lost_streams += 1,
            EventKind::DegradedRefusal { .. } => self.degraded_refusals += 1,
            EventKind::DiskTransient { .. } => self.transient_outages += 1,
            EventKind::DiskSlow { .. } => self.slow_windows += 1,
            EventKind::DiskTransientEnd { .. } | EventKind::DiskSlowEnd { .. } => {}
            EventKind::NodeFailure { .. } => {
                self.node_failures += 1;
                first(&mut self.node_failure_round, event.round);
            }
            EventKind::NodeRepair { .. } => self.node_repairs += 1,
            EventKind::StreamMigrated { .. } => self.stream_migrations += 1,
            EventKind::CrossNodeRebuildRead { blocks, .. } => {
                self.cross_node_rebuild_blocks += u64::from(blocks);
            }
            EventKind::NodeRebuildComplete { .. } => {
                first(&mut self.node_rebuild_completed_round, event.round);
            }
        }
    }

    /// Rounds from the first node failure to the first cross-node
    /// rebuild completion — the cluster-tier analogue of
    /// [`TraceSummary::failure_to_rebuild_complete`]. `None` until both
    /// milestones exist.
    #[must_use]
    pub fn node_failure_to_rebuild_complete(&self) -> Option<u64> {
        let fail = self.node_failure_round?;
        Some(self.node_rebuild_completed_round?.saturating_sub(fail))
    }

    /// Rounds from the first disk failure to the first recovery read —
    /// how quickly the array switched to degraded-mode service. `None`
    /// until both milestones exist.
    #[must_use]
    pub fn failure_to_first_recovery(&self) -> Option<u64> {
        let fail = self.failure_round?;
        Some(self.first_recovery_read_round?.saturating_sub(fail))
    }

    /// Rounds from the first disk failure to rebuild completion — the
    /// window of reduced redundancy the paper's reliability analysis
    /// integrates over. `None` until both milestones exist.
    #[must_use]
    pub fn failure_to_rebuild_complete(&self) -> Option<u64> {
        let fail = self.failure_round?;
        Some(self.rebuild_completed_round?.saturating_sub(fail))
    }
}

/// The engine-facing trace front end: stamps events with rounds, feeds
/// the summary, and forwards to the sink.
pub struct Tracer {
    sink: Box<dyn TraceSink + Send>,
    summary: TraceSummary,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("summary", &self.summary).finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer feeding `sink`.
    #[must_use]
    pub fn new(sink: Box<dyn TraceSink + Send>) -> Self {
        Tracer { sink, summary: TraceSummary::default() }
    }

    /// Records one event.
    pub fn emit(&mut self, round: u64, kind: EventKind) {
        let event = TraceEvent { round, kind };
        self.summary.observe(&event);
        self.sink.record(&event);
    }

    /// Records the recovery fan-out for one reconstructed block: how many
    /// surviving disks its group read touched.
    pub fn record_recovery_fanout(&mut self, survivors: u64) {
        self.summary.recovery_fanout.record(survivors);
    }

    /// The running summary.
    #[must_use]
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// Flushes the sink (call at end of run).
    pub fn finish(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;

    #[test]
    fn summary_tracks_milestone_gaps() {
        let mut t = Tracer::new(Box::new(NullSink));
        assert_eq!(t.summary().failure_to_first_recovery(), None);
        t.emit(10, EventKind::DiskFailure { disk: 3 });
        t.emit(11, EventKind::RecoveryRead { request: 1, disk: 0, block: 5 });
        t.emit(12, EventKind::RecoveryRead { request: 1, disk: 1, block: 5 });
        t.emit(40, EventKind::RebuildComplete { disk: 3 });
        let s = t.summary();
        assert_eq!(s.failure_to_first_recovery(), Some(1));
        assert_eq!(s.failure_to_rebuild_complete(), Some(30));
        assert_eq!(s.recovery_reads, 2);
        assert_eq!(s.first_recovery_read_round, Some(11));
    }

    #[test]
    fn summary_accumulates_disk_serve_histograms() {
        let mut t = Tracer::new(Box::new(NullSink));
        t.emit(1, EventKind::DiskServe { disk: 0, blocks: 4, busy_us: 900, queue: 4 });
        t.emit(1, EventKind::DiskServe { disk: 1, blocks: 2, busy_us: 450, queue: 2 });
        t.record_recovery_fanout(3);
        let s = t.summary();
        assert_eq!(s.blocks_served, 6);
        assert_eq!(s.busy_us.total(), 2);
        assert_eq!(s.queue_depth.total(), 2);
        assert_eq!(s.recovery_fanout.total(), 1);
        assert_eq!(s.events, 2, "explicit fanout is not an event");
    }

    #[test]
    fn summary_rolls_up_node_events() {
        let mut t = Tracer::new(Box::new(NullSink));
        t.emit(10, EventKind::NodeFailure { node: 2 });
        t.emit(10, EventKind::StreamMigrated { request: 7, from: 2, to: 5 });
        t.emit(10, EventKind::StreamMigrated { request: 9, from: 2, to: 1 });
        t.emit(30, EventKind::NodeRepair { node: 2 });
        t.emit(31, EventKind::CrossNodeRebuildRead { node: 2, source: 5, blocks: 4 });
        t.emit(32, EventKind::CrossNodeRebuildRead { node: 2, source: 1, blocks: 2 });
        t.emit(33, EventKind::NodeRebuildComplete { node: 2 });
        let s = t.summary();
        assert_eq!(s.node_failures, 1);
        assert_eq!(s.node_repairs, 1);
        assert_eq!(s.stream_migrations, 2);
        assert_eq!(s.cross_node_rebuild_blocks, 6);
        assert_eq!(s.node_failure_round, Some(10));
        assert_eq!(s.node_failure_to_rebuild_complete(), Some(23));
    }

    #[test]
    fn service_errors_count_dropped_fetches() {
        let mut t = Tracer::new(Box::new(NullSink));
        t.emit(5, EventKind::ServiceError { disk: 2, dropped: 3 });
        assert_eq!(t.summary().service_errors, 3);
    }
}
