//! Trace sinks: where emitted events go.
//!
//! The engine talks to a single `Box<dyn TraceSink>`; what sits behind it
//! decides the cost. [`NullSink`] is the zero-overhead default (a
//! monomorphic no-op call per event), [`RingSink`] keeps a bounded
//! in-memory window for tests and interactive inspection, and
//! [`JsonlSink`] / [`CsvSink`] stream to any `io::Write` — a file, or a
//! [`SharedBuffer`] when a test wants the exact bytes back.
//!
//! Sinks never panic on I/O trouble: write errors are counted and
//! swallowed so a full disk degrades the trace, not the run.

// lint: allow-file(D005) the ring/shared-buffer mutexes only guard
// observer-side reads of trace output; the engine records events from the
// single-threaded phase-two merge, so lock order never shapes the trace.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A destination for trace events.
pub trait TraceSink {
    /// Accepts one event. Must be cheap when the sink discards it.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes buffered output (windowed sinks write their window here).
    fn flush(&mut self) {}
}

/// Discards every event. The default sink: tracing disabled costs one
/// dynamic no-op call per event, which the `trace_overhead` bench keeps
/// honest (<1% on a paper-scale run).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Keeps events from the most recent N rounds in a shared in-memory
/// ring. Reads go through the [`RingHandle`] returned by
/// [`RingSink::handle`], so a test can install the sink on a simulator
/// and inspect the window afterwards.
#[derive(Debug)]
pub struct RingSink {
    last_rounds: u64,
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

/// A clonable read handle onto a [`RingSink`]'s window.
#[derive(Debug, Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

impl RingSink {
    /// A ring keeping events whose round is within `last_rounds` of the
    /// newest event seen (`last_rounds` of 0 keeps only the current
    /// round).
    #[must_use]
    pub fn new(last_rounds: u64) -> Self {
        RingSink { last_rounds, buf: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// A read handle that stays valid after the sink moves into the
    /// engine.
    #[must_use]
    pub fn handle(&self) -> RingHandle {
        RingHandle { buf: Arc::clone(&self.buf) }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if let Ok(mut buf) = self.buf.lock() {
            let horizon = event.round.saturating_sub(self.last_rounds);
            while buf.front().is_some_and(|e| e.round < horizon) {
                buf.pop_front();
            }
            buf.push_back(*event);
        }
    }
}

impl RingHandle {
    /// The current window, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().map(|buf| buf.iter().copied().collect()).unwrap_or_default()
    }
}

/// How a windowed text sink holds lines until flush.
#[derive(Debug)]
enum LineBuffer {
    /// Stream every line immediately.
    All,
    /// Hold lines, dropping those that fall out of the last-N-rounds
    /// window; written at flush.
    Window { last_rounds: u64, lines: VecDeque<(u64, String)> },
}

/// Shared line-oriented writer core for [`JsonlSink`] and [`CsvSink`].
#[derive(Debug)]
struct TextSink<W: Write> {
    out: W,
    buffer: LineBuffer,
    /// Reused render buffer for streaming mode: in steady state,
    /// recording an event costs zero allocations (DESIGN.md §7). The
    /// windowed mode still owns one `String` per retained line — it
    /// buffers by construction.
    line: String,
    io_errors: u64,
}

impl<W: Write> TextSink<W> {
    fn new(out: W, last_rounds: Option<u64>) -> Self {
        let buffer = match last_rounds {
            None => LineBuffer::All,
            Some(last_rounds) => LineBuffer::Window { last_rounds, lines: VecDeque::new() },
        };
        TextSink { out, buffer, line: String::new(), io_errors: 0 }
    }

    fn write_line(&mut self, line: &str) {
        if self.out.write_all(line.as_bytes()).is_err() {
            self.io_errors += 1;
        }
    }

    /// Records one line rendered by `fill` (which must append exactly one
    /// newline-terminated line). Streaming mode renders into the reused
    /// buffer and writes immediately; windowed mode renders into a fresh
    /// `String` it retains until flush.
    fn record_with(&mut self, round: u64, fill: impl FnOnce(&mut String)) {
        match &mut self.buffer {
            LineBuffer::All => {
                let mut line = std::mem::take(&mut self.line);
                line.clear();
                fill(&mut line);
                self.write_line(&line);
                self.line = line;
            }
            LineBuffer::Window { last_rounds, lines } => {
                let horizon = round.saturating_sub(*last_rounds);
                while lines.front().is_some_and(|(r, _)| *r < horizon) {
                    lines.pop_front();
                }
                let mut line = String::new();
                fill(&mut line);
                lines.push_back((round, line));
            }
        }
    }

    fn flush(&mut self) {
        if let LineBuffer::Window { lines, .. } = &mut self.buffer {
            let drained: Vec<String> = lines.drain(..).map(|(_, line)| line).collect();
            for line in drained {
                self.write_line(&line);
            }
        }
        if self.out.flush().is_err() {
            self.io_errors += 1;
        }
    }
}

/// Streams events as JSON Lines (one flat object per line).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    inner: TextSink<W>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing every event to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { inner: TextSink::new(out, None) }
    }

    /// A sink that keeps only events from the most recent `last_rounds`
    /// rounds, written when flushed.
    pub fn windowed(out: W, last_rounds: u64) -> Self {
        JsonlSink { inner: TextSink::new(out, Some(last_rounds)) }
    }

    /// Write errors swallowed so far (0 on a healthy run).
    #[must_use]
    pub fn io_errors(&self) -> u64 {
        self.inner.io_errors
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (creates/truncates) `path` for JSONL output, creating parent
    /// directories as needed.
    ///
    /// # Errors
    /// Propagates filesystem errors from directory or file creation.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(create_file(path)?))
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        self.inner.record_with(event.round, |line| event.write_jsonl(line));
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        self.inner.flush();
    }
}

/// Streams events as CSV with the fixed sparse column set
/// [`crate::event::CSV_COLUMNS`]; the header is written before the first
/// event.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    inner: TextSink<W>,
    header_written: bool,
}

impl<W: Write> CsvSink<W> {
    /// A sink writing every event to `out`.
    pub fn new(out: W) -> Self {
        CsvSink { inner: TextSink::new(out, None), header_written: false }
    }

    /// A sink that keeps only events from the most recent `last_rounds`
    /// rounds, written when flushed.
    pub fn windowed(out: W, last_rounds: u64) -> Self {
        CsvSink { inner: TextSink::new(out, Some(last_rounds)), header_written: false }
    }
}

impl CsvSink<BufWriter<File>> {
    /// Opens (creates/truncates) `path` for CSV output, creating parent
    /// directories as needed.
    ///
    /// # Errors
    /// Propagates filesystem errors from directory or file creation.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(CsvSink::new(create_file(path)?))
    }
}

impl<W: Write> TraceSink for CsvSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if !self.header_written {
            self.header_written = true;
            self.inner.write_line(&TraceEvent::csv_header());
        }
        self.inner.record_with(event.round, |line| event.write_csv(line));
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

impl<W: Write> Drop for CsvSink<W> {
    fn drop(&mut self) {
        self.inner.flush();
    }
}

/// Opens (creates/truncates) `path` for writing, creating parent
/// directories as needed.
pub(crate) fn create_file(path: &Path) -> io::Result<BufWriter<File>> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    Ok(BufWriter::new(File::create(path)?))
}

/// An in-memory byte buffer that is `Clone + io::Write`, for tests that
/// need the exact bytes a sink produced (the cross-thread byte-identity
/// suite hands one of these to each simulator).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Everything written so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().map(|b| b.clone()).unwrap_or_default()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Ok(mut bytes) = self.bytes.lock() {
            bytes.extend_from_slice(buf);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(round: u64, request: u64) -> TraceEvent {
        TraceEvent { round, kind: EventKind::Completion { request } }
    }

    #[test]
    fn ring_sink_keeps_only_recent_rounds() {
        let mut sink = RingSink::new(2);
        let handle = sink.handle();
        for round in 0..10 {
            sink.record(&ev(round, round));
        }
        let window = handle.events();
        assert_eq!(window.len(), 3, "rounds 7, 8, 9");
        assert!(window.iter().all(|e| e.round >= 7));
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let buf = SharedBuffer::new();
        let mut sink = JsonlSink::new(buf.clone());
        sink.record(&ev(1, 42));
        sink.flush();
        let text = String::from_utf8(buf.contents()).expect("utf8");
        assert_eq!(text, "{\"round\":1,\"event\":\"completion\",\"request\":42}\n");
        assert_eq!(sink.io_errors(), 0);
    }

    #[test]
    fn windowed_jsonl_drops_old_rounds_at_flush() {
        let buf = SharedBuffer::new();
        let mut sink = JsonlSink::windowed(buf.clone(), 1);
        for round in 0..5 {
            sink.record(&ev(round, round));
        }
        sink.flush();
        let text = String::from_utf8(buf.contents()).expect("utf8");
        let rounds: Vec<&str> = text.lines().collect();
        assert_eq!(rounds.len(), 2, "rounds 3 and 4 survive: {text}");
        assert!(text.contains("\"round\":3") && text.contains("\"round\":4"));
    }

    #[test]
    fn csv_sink_writes_header_once() {
        let buf = SharedBuffer::new();
        let mut sink = CsvSink::new(buf.clone());
        sink.record(&ev(1, 7));
        sink.record(&ev(2, 8));
        sink.flush();
        let text = String::from_utf8(buf.contents()).expect("utf8");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(TraceEvent::csv_header().trim_end()));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn drop_flushes_windowed_sink() {
        let buf = SharedBuffer::new();
        {
            let mut sink = JsonlSink::windowed(buf.clone(), 100);
            sink.record(&ev(1, 1));
        }
        assert!(!buf.contents().is_empty(), "Drop must flush the window");
    }
}
