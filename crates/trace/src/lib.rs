//! Deterministic event tracing for the CM server.
//!
//! The paper's fault-tolerance story is temporal — what happens in the
//! rounds between a disk failure, the switch to recovery reads, and
//! rebuild completion — so this crate gives the round engine a
//! deterministic observability layer:
//!
//! * [`TraceEvent`] / [`EventKind`] — round-stamped records for every
//!   engine transition (arrivals through rebuild completion), with
//!   hand-rolled JSONL/CSV rendering and JSONL parsing.
//! * [`Histogram`] — the reusable log₂-bucket histogram that `Metrics`'
//!   wait histogram, per-disk busy time, queue depth, and recovery
//!   fan-out all share.
//! * [`TraceSink`] — where events go: [`NullSink`] (zero-overhead
//!   default), [`RingSink`] (bounded in-memory window),
//!   [`JsonlSink`]/[`CsvSink`] (file export), [`SharedBuffer`] (exact
//!   bytes for tests).
//! * [`Tracer`] / [`TraceSummary`] — the engine-facing emit point and
//!   its roll-up, including the failure→first-recovery-read and
//!   failure→rebuild-complete round gaps.
//! * [`TraceSpec`] / [`TraceOutput`] — the declarative config knob
//!   carried by `SimConfig` and `CmServerBuilder`.
//!
//! Determinism contract: the engine emits per-disk service events from
//! per-worker buffers merged in disk-ID order (the same discipline as
//! `disk_busy`), so a trace is byte-identical at any thread count. This
//! crate is correspondingly std-only and entropy-free, and is listed in
//! `cms-lint`'s deterministic-crate set.

#![forbid(unsafe_code)]

mod event;
mod hist;
mod sink;
mod spec;
mod tracer;

pub use event::{EventKind, TraceEvent, CSV_COLUMNS};
pub use hist::Histogram;
pub use sink::{CsvSink, JsonlSink, NullSink, RingHandle, RingSink, SharedBuffer, TraceSink};
pub use spec::{TraceOutput, TraceSpec};
pub use tracer::{TraceSummary, Tracer};
