//! Declarative trace configuration.
//!
//! `SimConfig` and `CmServerBuilder` carry a [`TraceSpec`] — a plain
//! value describing *whether* and *where* to trace — and the engine turns
//! it into a live [`Tracer`] at build time. Keeping the spec `Clone` and
//! sink-free lets configs stay copyable and comparable while sinks own
//! files and buffers.

use std::io;
use std::path::PathBuf;

use crate::sink::{CsvSink, JsonlSink, NullSink, TraceSink};
use crate::tracer::Tracer;

/// Where trace events go.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TraceOutput {
    /// Tracing disabled entirely — no tracer is built, no per-event work
    /// happens.
    #[default]
    Off,
    /// Events are summarised (the [`crate::TraceSummary`] still fills in)
    /// but discarded; the overhead-measurement and summary-only mode.
    Null,
    /// Events stream to a JSON Lines file.
    Jsonl(PathBuf),
    /// Events stream to a CSV file.
    Csv(PathBuf),
}

/// A declarative description of the tracing a run should do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSpec {
    /// Destination for events.
    pub output: TraceOutput,
    /// Keep only events from the most recent N rounds (file sinks buffer
    /// and write the window at end of run). `None` keeps everything.
    pub last_rounds: Option<u64>,
}

impl TraceSpec {
    /// Tracing disabled (the default).
    #[must_use]
    pub fn off() -> Self {
        TraceSpec::default()
    }

    /// Summary-only tracing: events are counted and histogrammed but not
    /// exported.
    #[must_use]
    pub fn null() -> Self {
        TraceSpec { output: TraceOutput::Null, last_rounds: None }
    }

    /// JSONL export to `path`.
    #[must_use]
    pub fn jsonl(path: impl Into<PathBuf>) -> Self {
        TraceSpec { output: TraceOutput::Jsonl(path.into()), last_rounds: None }
    }

    /// CSV export to `path`.
    #[must_use]
    pub fn csv(path: impl Into<PathBuf>) -> Self {
        TraceSpec { output: TraceOutput::Csv(path.into()), last_rounds: None }
    }

    /// Restricts file exports to the most recent `last_rounds` rounds.
    #[must_use]
    pub fn with_last_rounds(mut self, last_rounds: u64) -> Self {
        self.last_rounds = Some(last_rounds);
        self
    }

    /// Is tracing fully disabled?
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.output == TraceOutput::Off
    }

    /// Derives a per-run spec from a shared one by inserting `label` into
    /// the file name before the extension (`drill.jsonl` + `raid5-p4` →
    /// `drill.raid5-p4.jsonl`). Harnesses that fan one `--trace PATH` out
    /// over many runs use this so each run gets its own file. `Off` and
    /// `Null` pass through unchanged.
    #[must_use]
    pub fn labeled(&self, label: &str) -> Self {
        let relabel = |path: &PathBuf| -> PathBuf {
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            let name = if ext.is_empty() {
                format!("{stem}.{label}")
            } else {
                format!("{stem}.{label}.{ext}")
            };
            path.with_file_name(name)
        };
        let output = match &self.output {
            TraceOutput::Off => TraceOutput::Off,
            TraceOutput::Null => TraceOutput::Null,
            TraceOutput::Jsonl(path) => TraceOutput::Jsonl(relabel(path)),
            TraceOutput::Csv(path) => TraceOutput::Csv(relabel(path)),
        };
        TraceSpec { output, last_rounds: self.last_rounds }
    }

    /// Builds the live tracer this spec describes, or `None` when
    /// tracing is off.
    ///
    /// # Errors
    /// Propagates filesystem errors from opening a file sink.
    pub fn build(&self) -> io::Result<Option<Tracer>> {
        let sink: Box<dyn TraceSink + Send> = match &self.output {
            TraceOutput::Off => return Ok(None),
            TraceOutput::Null => Box::new(NullSink),
            TraceOutput::Jsonl(path) => {
                let out = crate::sink::create_file(path)?;
                match self.last_rounds {
                    None => Box::new(JsonlSink::new(out)),
                    Some(n) => Box::new(JsonlSink::windowed(out, n)),
                }
            }
            TraceOutput::Csv(path) => {
                let out = crate::sink::create_file(path)?;
                match self.last_rounds {
                    None => Box::new(CsvSink::new(out)),
                    Some(n) => Box::new(CsvSink::windowed(out, n)),
                }
            }
        };
        Ok(Some(Tracer::new(sink)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let spec = TraceSpec::default();
        assert!(spec.is_off());
        assert!(spec.build().expect("build").is_none());
    }

    #[test]
    fn null_builds_a_summary_only_tracer() {
        let spec = TraceSpec::null();
        assert!(!spec.is_off());
        let tracer = spec.build().expect("build").expect("tracer");
        assert_eq!(tracer.summary().events, 0);
    }

    #[test]
    fn labeled_inserts_before_the_extension() {
        let spec = TraceSpec::jsonl("out/drill.jsonl").with_last_rounds(8);
        let run = spec.labeled("raid5-p4");
        assert_eq!(run.output, TraceOutput::Jsonl(PathBuf::from("out/drill.raid5-p4.jsonl")));
        assert_eq!(run.last_rounds, Some(8));
        // Extension-less paths get the label appended.
        let bare = TraceSpec::csv("out/drill").labeled("x");
        assert_eq!(bare.output, TraceOutput::Csv(PathBuf::from("out/drill.x")));
        // Off and Null pass through.
        assert!(TraceSpec::off().labeled("x").is_off());
        assert_eq!(TraceSpec::null().labeled("x"), TraceSpec::null());
    }

    #[test]
    fn with_last_rounds_round_trips() {
        let spec = TraceSpec::jsonl("/tmp/x.jsonl").with_last_rounds(16);
        assert_eq!(spec.last_rounds, Some(16));
        assert_eq!(spec.output, TraceOutput::Jsonl(PathBuf::from("/tmp/x.jsonl")));
    }
}
