//! Fixed-bucket log₂ histograms.
//!
//! One reusable [`Histogram`] type replaces the bucket math that used to
//! be reimplemented inline by `Metrics::record_wait` /
//! `Metrics::wait_percentile`: bucket `k` counts values in
//! `[2^k − 1, 2^(k+1) − 1)`, so bucket 0 holds exactly the value 0
//! (an admission that waited no rounds, a round with an empty queue)
//! and bucket widths double from there. The bucket vector grows lazily
//! to the highest bucket touched, which keeps an idle histogram at zero
//! allocation and makes the serialized form exactly the `Vec<u64>` the
//! old `wait_histogram` field used — wire-compatible by construction.

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram { counts: Vec::new() }
    }

    /// The bucket a value falls into: `⌊log₂(value + 1)⌋`, saturating at
    /// bucket 63 so `u64::MAX` is representable.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - 1 - value.saturating_add(1).leading_zeros()) as usize
    }

    /// Smallest value that lands in `bucket`: `2^k − 1`.
    #[must_use]
    pub fn bucket_lower(bucket: usize) -> u64 {
        if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Largest value that lands in `bucket`: `2^(k+1) − 2` (saturating at
    /// `u64::MAX` for the top bucket).
    #[must_use]
    pub fn bucket_upper(bucket: usize) -> u64 {
        if bucket >= 63 {
            u64::MAX
        } else {
            (1u64 << (bucket + 1)) - 2
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = Self::bucket_of(value);
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += n;
    }

    /// The per-bucket counts (index = bucket number).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Has nothing been recorded?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Upper edge of the bucket containing the requested quantile, i.e.
    /// an upper bound on the `pct`-percentile sample. `pct` is clamped to
    /// `0.0..=1.0`; an empty histogram reports 0.
    #[must_use]
    pub fn percentile(&self, pct: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = (pct.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(bucket);
            }
        }
        // `seen` reaches `total >= rank` on the last bucket, so the loop
        // always returns; this arm exists only to keep the signature total.
        Self::bucket_upper(self.counts.len().saturating_sub(1))
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Histogram {
    /// Serializes as the bare bucket-count array — byte-identical to the
    /// `Vec<u64>` field this type replaced in `Metrics`.
    fn serialize(&self) -> serde::Value {
        serde::Value::Array(self.counts.iter().map(|&c| serde::Value::U64(c)).collect())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Histogram {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let items = value
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected array for Histogram"))?;
        let mut counts = Vec::with_capacity(items.len());
        for item in items {
            counts.push(
                item.as_u64()
                    .ok_or_else(|| serde::Error::custom("expected u64 histogram count"))?,
            );
        }
        Ok(Histogram { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_zero_holds_only_zero() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_lower(0), 0);
        assert_eq!(Histogram::bucket_upper(0), 0);
    }

    #[test]
    fn bucket_edges_double() {
        // Bucket 2 covers [3, 6], bucket 3 covers [7, 14].
        assert_eq!(Histogram::bucket_lower(2), 3);
        assert_eq!(Histogram::bucket_upper(2), 6);
        assert_eq!(Histogram::bucket_lower(3), 7);
        assert_eq!(Histogram::bucket_upper(3), 14);
        for v in [3u64, 4, 5, 6] {
            assert_eq!(Histogram::bucket_of(v), 2, "{v}");
        }
    }

    #[test]
    fn extremes_do_not_overflow() {
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Histogram::bucket_upper(63), u64::MAX);
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn percentile_matches_hand_computation() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(0);
        }
        for _ in 0..10 {
            h.record(20); // bucket 4: [15, 30]
        }
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 30);
        assert_eq!(h.total(), 100);
        assert_eq!(Histogram::new().percentile(0.9), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(100);
        b.record_n(1, 2);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.counts()[1], 3);
    }
}
