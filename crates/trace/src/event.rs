//! The structured event model: round-stamped records for everything the
//! engine does that an operator (or a regression test) would want on a
//! timeline.
//!
//! Events render to JSONL (one flat object per line, fixed field order)
//! and CSV (fixed sparse columns). Both writers are hand-rolled — every
//! field is an integer and every tag is a fixed identifier, so the
//! formats need no escaping and no serializer dependency — and
//! [`TraceEvent::parse_jsonl`] parses the JSONL form back, which is what
//! the `timeline` renderer and the round-trip tests consume.

use std::fmt::Write as _;

/// What happened (the payload of a [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A playback request entered the pending queue.
    Arrival {
        /// Request id.
        request: u64,
        /// Requested clip.
        clip: u64,
    },
    /// A pending request was admitted.
    Admission {
        /// Request id.
        request: u64,
        /// Admitted clip.
        clip: u64,
        /// Rounds the request waited in the pending queue.
        wait: u64,
    },
    /// The admission controller refused a request this round (it stays
    /// queued and is retried later).
    Rejection {
        /// Request id.
        request: u64,
        /// Requested clip.
        clip: u64,
    },
    /// A clip finished playback.
    Completion {
        /// Request id.
        request: u64,
    },
    /// A disk failed.
    DiskFailure {
        /// Failed disk.
        disk: u32,
    },
    /// A failed disk returned to service (external repair).
    DiskRepair {
        /// Repaired disk.
        disk: u32,
    },
    /// A disk entered a transient outage: it refuses service for a fixed
    /// window but keeps its data (no rebuild when the window ends).
    DiskTransient {
        /// Affected disk.
        disk: u32,
        /// Window length in rounds.
        rounds: u64,
    },
    /// A transient outage expired; the disk is serving again.
    DiskTransientEnd {
        /// Recovered disk.
        disk: u32,
    },
    /// A disk entered a slow window: it still serves, but `factor`×
    /// slower, so its per-round budget shrinks accordingly.
    DiskSlow {
        /// Affected disk.
        disk: u32,
        /// Service-time multiplier.
        factor: u32,
        /// Window length in rounds.
        rounds: u64,
    },
    /// A slow window expired; the disk serves at nominal speed again.
    DiskSlowEnd {
        /// Recovered disk.
        disk: u32,
    },
    /// A stream was declared lost: a second failure left one of its
    /// blocks unreconstructable, so the engine terminated it
    /// deterministically instead of mis-serving.
    StreamLost {
        /// Terminated client.
        request: u64,
        /// First clip-block index that became unreconstructable.
        block: u64,
    },
    /// Degraded-mode admission refused a request because the surviving
    /// bandwidth (contingency fraction `f` spent on failure-mode load)
    /// cannot carry another stream. The request stays queued.
    DegradedRefusal {
        /// Refused request.
        request: u64,
        /// Requested clip.
        clip: u64,
    },
    /// A recovery read was issued on a surviving disk to reconstruct a
    /// block lost to the failed disk.
    RecoveryRead {
        /// Client whose block is being reconstructed.
        request: u64,
        /// Surviving disk the read targets.
        disk: u32,
        /// Clip-block index being reconstructed.
        block: u64,
    },
    /// A lost block was fully reconstructed by XOR.
    Reconstruction {
        /// Client the block belongs to.
        request: u64,
        /// Reconstructed clip-block index.
        block: u64,
    },
    /// One disk's service round (emitted per disk per non-empty round,
    /// buffered per worker and merged in disk-ID order).
    DiskServe {
        /// Disk id.
        disk: u32,
        /// Blocks retrieved this round.
        blocks: u32,
        /// Busy time in microseconds (worst-case timing model).
        busy_us: u64,
        /// Queue depth before the EDF drain.
        queue: u32,
    },
    /// A disk refused a service round and its fetches were dropped.
    ServiceError {
        /// Refusing disk.
        disk: u32,
        /// Fetches dropped.
        dropped: u32,
    },
    /// Background rebuild progress (one per round while a rebuild runs).
    RebuildProgress {
        /// Blocks rebuilt onto the spare so far.
        rebuilt: u64,
        /// Total blocks to rebuild.
        total: u64,
    },
    /// Background rebuild finished; the array is whole again.
    RebuildComplete {
        /// The disk whose contents were rebuilt.
        disk: u32,
    },
    /// A block was missing from the buffer in the round it was due — the
    /// playback glitch the guarantee schemes must never produce.
    Hiccup {
        /// Affected client.
        request: u64,
        /// Clip-block index that was not there.
        block: u64,
    },
    /// A fetch was delivered later than the round before it was needed.
    LateServe {
        /// Affected client.
        request: u64,
        /// Late clip-block index.
        block: u64,
    },
    /// A whole server node went dark (cluster tier): every stream it was
    /// carrying must migrate to a surviving replica or be lost.
    NodeFailure {
        /// Failed node.
        node: u32,
    },
    /// A failed node returned (disks blank) and entered cross-node
    /// rebuild; it is not routable until the rebuild completes.
    NodeRepair {
        /// Returning node.
        node: u32,
    },
    /// A stream was moved from a failed node to a surviving replica of
    /// its clip, resuming at the group-aligned offset it had reached.
    StreamMigrated {
        /// Migrated stream (cluster-level request id).
        request: u64,
        /// Node the stream was running on.
        from: u32,
        /// Surviving replica now carrying it.
        to: u32,
    },
    /// One round of cross-node rebuild traffic: a source replica supplied
    /// blocks to a rebuilding node, charged against the source's
    /// streaming bandwidth.
    CrossNodeRebuildRead {
        /// Node being rebuilt.
        node: u32,
        /// Source replica supplying the blocks.
        source: u32,
        /// Blocks shipped this round.
        blocks: u32,
    },
    /// A node's cross-node rebuild finished; it is routable again.
    NodeRebuildComplete {
        /// Rebuilt node.
        node: u32,
    },
}

impl EventKind {
    /// The stable tag this kind renders as (`"arrival"`, `"hiccup"`, …).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrival { .. } => "arrival",
            EventKind::Admission { .. } => "admission",
            EventKind::Rejection { .. } => "rejection",
            EventKind::Completion { .. } => "completion",
            EventKind::DiskFailure { .. } => "disk_failure",
            EventKind::DiskRepair { .. } => "disk_repair",
            EventKind::DiskTransient { .. } => "disk_transient",
            EventKind::DiskTransientEnd { .. } => "disk_transient_end",
            EventKind::DiskSlow { .. } => "disk_slow",
            EventKind::DiskSlowEnd { .. } => "disk_slow_end",
            EventKind::StreamLost { .. } => "stream_lost",
            EventKind::DegradedRefusal { .. } => "degraded_refusal",
            EventKind::RecoveryRead { .. } => "recovery_read",
            EventKind::Reconstruction { .. } => "reconstruction",
            EventKind::DiskServe { .. } => "disk_serve",
            EventKind::ServiceError { .. } => "service_error",
            EventKind::RebuildProgress { .. } => "rebuild_progress",
            EventKind::RebuildComplete { .. } => "rebuild_complete",
            EventKind::Hiccup { .. } => "hiccup",
            EventKind::LateServe { .. } => "late_serve",
            EventKind::NodeFailure { .. } => "node_failure",
            EventKind::NodeRepair { .. } => "node_repair",
            EventKind::StreamMigrated { .. } => "stream_migrated",
            EventKind::CrossNodeRebuildRead { .. } => "cross_node_rebuild_read",
            EventKind::NodeRebuildComplete { .. } => "node_rebuild_complete",
        }
    }

    /// The kind's payload as `(key, value)` pairs in render order,
    /// returned as a fixed four-slot array plus its used length — no
    /// kind has more than four fields, and rendering an event must not
    /// allocate (tracing sits on the round hot path, DESIGN.md §7).
    fn fields(&self) -> ([(&'static str, u64); 4], usize) {
        const NIL: (&str, u64) = ("", 0);
        match *self {
            EventKind::Arrival { request, clip } => {
                ([("request", request), ("clip", clip), NIL, NIL], 2)
            }
            EventKind::Admission { request, clip, wait } => {
                ([("request", request), ("clip", clip), ("wait", wait), NIL], 3)
            }
            EventKind::Rejection { request, clip } => {
                ([("request", request), ("clip", clip), NIL, NIL], 2)
            }
            EventKind::Completion { request } => ([("request", request), NIL, NIL, NIL], 1),
            EventKind::DiskFailure { disk } => ([("disk", u64::from(disk)), NIL, NIL, NIL], 1),
            EventKind::DiskRepair { disk } => ([("disk", u64::from(disk)), NIL, NIL, NIL], 1),
            EventKind::DiskTransient { disk, rounds } => {
                ([("disk", u64::from(disk)), ("rounds", rounds), NIL, NIL], 2)
            }
            EventKind::DiskTransientEnd { disk } => {
                ([("disk", u64::from(disk)), NIL, NIL, NIL], 1)
            }
            EventKind::DiskSlow { disk, factor, rounds } => (
                [
                    ("disk", u64::from(disk)),
                    ("factor", u64::from(factor)),
                    ("rounds", rounds),
                    NIL,
                ],
                3,
            ),
            EventKind::DiskSlowEnd { disk } => ([("disk", u64::from(disk)), NIL, NIL, NIL], 1),
            EventKind::StreamLost { request, block } => {
                ([("request", request), ("block", block), NIL, NIL], 2)
            }
            EventKind::DegradedRefusal { request, clip } => {
                ([("request", request), ("clip", clip), NIL, NIL], 2)
            }
            EventKind::RecoveryRead { request, disk, block } => {
                ([("request", request), ("disk", u64::from(disk)), ("block", block), NIL], 3)
            }
            EventKind::Reconstruction { request, block } => {
                ([("request", request), ("block", block), NIL, NIL], 2)
            }
            EventKind::DiskServe { disk, blocks, busy_us, queue } => (
                [
                    ("disk", u64::from(disk)),
                    ("blocks", u64::from(blocks)),
                    ("busy_us", busy_us),
                    ("queue", u64::from(queue)),
                ],
                4,
            ),
            EventKind::ServiceError { disk, dropped } => {
                ([("disk", u64::from(disk)), ("dropped", u64::from(dropped)), NIL, NIL], 2)
            }
            EventKind::RebuildProgress { rebuilt, total } => {
                ([("rebuilt", rebuilt), ("total", total), NIL, NIL], 2)
            }
            EventKind::RebuildComplete { disk } => {
                ([("disk", u64::from(disk)), NIL, NIL, NIL], 1)
            }
            EventKind::Hiccup { request, block } => {
                ([("request", request), ("block", block), NIL, NIL], 2)
            }
            EventKind::LateServe { request, block } => {
                ([("request", request), ("block", block), NIL, NIL], 2)
            }
            EventKind::NodeFailure { node } => ([("node", u64::from(node)), NIL, NIL, NIL], 1),
            EventKind::NodeRepair { node } => ([("node", u64::from(node)), NIL, NIL, NIL], 1),
            EventKind::StreamMigrated { request, from, to } => {
                ([("request", request), ("from", u64::from(from)), ("to", u64::from(to)), NIL], 3)
            }
            EventKind::CrossNodeRebuildRead { node, source, blocks } => (
                [
                    ("node", u64::from(node)),
                    ("source", u64::from(source)),
                    ("blocks", u64::from(blocks)),
                    NIL,
                ],
                3,
            ),
            EventKind::NodeRebuildComplete { node } => {
                ([("node", u64::from(node)), NIL, NIL, NIL], 1)
            }
        }
    }
}

/// One round-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The round the event happened in.
    pub round: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The CSV column set, sparse: a column is empty when the event kind has
/// no such field.
pub const CSV_COLUMNS: [&str; 16] = [
    "round", "event", "request", "clip", "disk", "block", "wait", "blocks", "busy_us",
    "queue", "dropped", "rebuilt", "node", "from", "to", "source",
];

impl TraceEvent {
    /// Appends the event as one JSONL line (newline included) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(out, "{{\"round\":{},\"event\":\"{}\"", self.round, self.kind.name());
        let (fields, used) = self.kind.fields();
        for &(key, value) in &fields[..used] {
            let _ = write!(out, ",\"{key}\":{value}");
        }
        out.push_str("}\n");
    }

    /// The event as one JSONL line (newline included).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        self.write_jsonl(&mut s);
        s
    }

    /// The CSV header line (newline included) matching [`CSV_COLUMNS`].
    #[must_use]
    pub fn csv_header() -> String {
        let mut s = CSV_COLUMNS.join(",");
        s.push('\n');
        s
    }

    /// Appends the event as one CSV line (newline included) to `out`.
    pub fn write_csv(&self, out: &mut String) {
        let (fields, used) = self.kind.fields();
        let lookup = |key: &str| {
            fields[..used].iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
        };
        let _ = write!(out, "{},{}", self.round, self.kind.name());
        // "total" shares the `rebuilt` row via the rebuilt/total pair.
        for column in &CSV_COLUMNS[2..] {
            out.push(',');
            if *column == "rebuilt" {
                if let EventKind::RebuildProgress { rebuilt, total } = self.kind {
                    let _ = write!(out, "{rebuilt}/{total}");
                    continue;
                }
            }
            if let Some(v) = lookup(column) {
                let _ = write!(out, "{v}");
            }
        }
        out.push('\n');
    }

    /// Parses one JSONL line produced by [`TraceEvent::write_jsonl`].
    /// Returns `None` for malformed lines or unknown event tags.
    #[must_use]
    pub fn parse_jsonl(line: &str) -> Option<TraceEvent> {
        let line = line.trim();
        let round = parse_u64(line, "round")?;
        let tag = parse_str(line, "event")?;
        let u = |key: &str| parse_u64(line, key);
        let d = |key: &str| parse_u64(line, key).and_then(|v| u32::try_from(v).ok());
        let kind = match tag {
            "arrival" => EventKind::Arrival { request: u("request")?, clip: u("clip")? },
            "admission" => EventKind::Admission {
                request: u("request")?,
                clip: u("clip")?,
                wait: u("wait")?,
            },
            "rejection" => EventKind::Rejection { request: u("request")?, clip: u("clip")? },
            "completion" => EventKind::Completion { request: u("request")? },
            "disk_failure" => EventKind::DiskFailure { disk: d("disk")? },
            "disk_repair" => EventKind::DiskRepair { disk: d("disk")? },
            "disk_transient" => {
                EventKind::DiskTransient { disk: d("disk")?, rounds: u("rounds")? }
            }
            "disk_transient_end" => EventKind::DiskTransientEnd { disk: d("disk")? },
            "disk_slow" => EventKind::DiskSlow {
                disk: d("disk")?,
                factor: d("factor")?,
                rounds: u("rounds")?,
            },
            "disk_slow_end" => EventKind::DiskSlowEnd { disk: d("disk")? },
            "stream_lost" => EventKind::StreamLost { request: u("request")?, block: u("block")? },
            "degraded_refusal" => {
                EventKind::DegradedRefusal { request: u("request")?, clip: u("clip")? }
            }
            "recovery_read" => EventKind::RecoveryRead {
                request: u("request")?,
                disk: d("disk")?,
                block: u("block")?,
            },
            "reconstruction" => {
                EventKind::Reconstruction { request: u("request")?, block: u("block")? }
            }
            "disk_serve" => EventKind::DiskServe {
                disk: d("disk")?,
                blocks: u("blocks")? as u32,
                busy_us: u("busy_us")?,
                queue: u("queue")? as u32,
            },
            "service_error" => {
                EventKind::ServiceError { disk: d("disk")?, dropped: u("dropped")? as u32 }
            }
            "rebuild_progress" => {
                EventKind::RebuildProgress { rebuilt: u("rebuilt")?, total: u("total")? }
            }
            "rebuild_complete" => EventKind::RebuildComplete { disk: d("disk")? },
            "hiccup" => EventKind::Hiccup { request: u("request")?, block: u("block")? },
            "late_serve" => EventKind::LateServe { request: u("request")?, block: u("block")? },
            "node_failure" => EventKind::NodeFailure { node: d("node")? },
            "node_repair" => EventKind::NodeRepair { node: d("node")? },
            "stream_migrated" => EventKind::StreamMigrated {
                request: u("request")?,
                from: d("from")?,
                to: d("to")?,
            },
            "cross_node_rebuild_read" => EventKind::CrossNodeRebuildRead {
                node: d("node")?,
                source: d("source")?,
                blocks: d("blocks")?,
            },
            "node_rebuild_complete" => EventKind::NodeRebuildComplete { node: d("node")? },
            _ => return None,
        };
        Some(TraceEvent { round, kind })
    }
}

/// Extracts the numeric value of `"key":<digits>` from a flat JSONL line.
fn parse_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value of `"key":"…"` from a flat JSONL line.
fn parse_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent { round: 0, kind: EventKind::Arrival { request: 1, clip: 9 } },
            TraceEvent {
                round: 3,
                kind: EventKind::Admission { request: 1, clip: 9, wait: 3 },
            },
            TraceEvent { round: 3, kind: EventKind::Rejection { request: 2, clip: 4 } },
            TraceEvent { round: 5, kind: EventKind::DiskFailure { disk: 7 } },
            TraceEvent {
                round: 6,
                kind: EventKind::RecoveryRead { request: 1, disk: 2, block: 4 },
            },
            TraceEvent { round: 6, kind: EventKind::Reconstruction { request: 1, block: 4 } },
            TraceEvent {
                round: 6,
                kind: EventKind::DiskServe { disk: 2, blocks: 8, busy_us: 1234, queue: 11 },
            },
            TraceEvent { round: 7, kind: EventKind::ServiceError { disk: 3, dropped: 2 } },
            TraceEvent {
                round: 8,
                kind: EventKind::RebuildProgress { rebuilt: 10, total: 100 },
            },
            TraceEvent { round: 9, kind: EventKind::RebuildComplete { disk: 7 } },
            TraceEvent { round: 9, kind: EventKind::DiskRepair { disk: 7 } },
            TraceEvent { round: 9, kind: EventKind::DiskTransient { disk: 1, rounds: 5 } },
            TraceEvent { round: 9, kind: EventKind::DiskTransientEnd { disk: 1 } },
            TraceEvent {
                round: 9,
                kind: EventKind::DiskSlow { disk: 4, factor: 3, rounds: 12 },
            },
            TraceEvent { round: 9, kind: EventKind::DiskSlowEnd { disk: 4 } },
            TraceEvent { round: 10, kind: EventKind::StreamLost { request: 6, block: 17 } },
            TraceEvent { round: 10, kind: EventKind::DegradedRefusal { request: 7, clip: 2 } },
            TraceEvent { round: 10, kind: EventKind::Hiccup { request: 5, block: 2 } },
            TraceEvent { round: 10, kind: EventKind::LateServe { request: 5, block: 3 } },
            TraceEvent { round: 11, kind: EventKind::Completion { request: 1 } },
            TraceEvent { round: 12, kind: EventKind::NodeFailure { node: 3 } },
            TraceEvent {
                round: 12,
                kind: EventKind::StreamMigrated { request: 6, from: 3, to: 5 },
            },
            TraceEvent { round: 13, kind: EventKind::NodeRepair { node: 3 } },
            TraceEvent {
                round: 14,
                kind: EventKind::CrossNodeRebuildRead { node: 3, source: 5, blocks: 4 },
            },
            TraceEvent { round: 15, kind: EventKind::NodeRebuildComplete { node: 3 } },
        ]
    }

    #[test]
    fn jsonl_roundtrips_every_kind() {
        for event in samples() {
            let line = event.to_jsonl();
            assert!(line.ends_with('\n'));
            let parsed = TraceEvent::parse_jsonl(&line).expect("parses");
            assert_eq!(parsed, event, "{line}");
        }
    }

    #[test]
    fn jsonl_shape_is_flat_and_stable() {
        let e = TraceEvent { round: 3, kind: EventKind::Admission { request: 1, clip: 9, wait: 3 } };
        assert_eq!(
            e.to_jsonl(),
            "{\"round\":3,\"event\":\"admission\",\"request\":1,\"clip\":9,\"wait\":3}\n"
        );
    }

    #[test]
    fn csv_has_one_column_set_for_all_kinds() {
        let header = TraceEvent::csv_header();
        let columns = header.trim().split(',').count();
        for event in samples() {
            let mut line = String::new();
            event.write_csv(&mut line);
            assert_eq!(line.trim_end().split(',').count(), columns, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(TraceEvent::parse_jsonl("").is_none());
        assert!(TraceEvent::parse_jsonl("{\"round\":1}").is_none());
        assert!(TraceEvent::parse_jsonl("{\"round\":1,\"event\":\"nope\"}").is_none());
        assert!(TraceEvent::parse_jsonl("{\"event\":\"arrival\",\"request\":1}").is_none());
    }
}
