//! The clip catalog: lengths and placements.

use cms_core::{ClipId, CmsError};

/// Where a clip lives in the striped store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClipPlacement {
    /// The clip.
    pub id: ClipId,
    /// Stream (super-clip) the clip was concatenated into.
    pub stream: u32,
    /// Stream index of the clip's first block.
    pub start_index: u64,
    /// Length in blocks.
    pub len: u64,
}

impl ClipPlacement {
    /// Stream index one past the clip's last block.
    #[must_use]
    pub fn end_index(&self) -> u64 {
        self.start_index + self.len
    }
}

/// A catalog of clips packed into one or more streams.
#[derive(Debug, Clone)]
pub struct Catalog {
    clips: Vec<ClipPlacement>,
    stream_lens: Vec<u64>,
}

impl Catalog {
    /// Packs `count` clips of `len_blocks` each into `streams` streams,
    /// round-robin, with every clip start aligned up to a multiple of
    /// `alignment` (pass 1 for none; prefetch schemes pass `p − 1` so
    /// clips start on parity-group boundaries — §6.1's "first data block
    /// of each CM clip is stored on the first data disk within a
    /// cluster").
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for zero counts, lengths,
    /// streams or alignment.
    pub fn uniform(
        count: u64,
        len_blocks: u64,
        streams: u32,
        alignment: u64,
    ) -> Result<Self, CmsError> {
        Self::uniform_jittered(count, len_blocks, streams, alignment, 1, 0)
    }

    /// Like [`Catalog::uniform`], but inserts a seeded random pad of
    /// `0..jitter_units` alignment units before each clip. The paper's
    /// simulation chooses `disk(C)` and `row(C)` randomly per clip; dense
    /// concatenation of equal-length clips would instead make start disks
    /// cycle through a small residue class (e.g. only even disks for
    /// 50-block clips on 32 disks), skewing admission classes. Jitter of
    /// `d` units reproduces the paper's randomization. (The pad models
    /// the advertisement padding the paper appends to clips.)
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for zero counts, lengths,
    /// streams, alignment or jitter.
    pub fn uniform_jittered(
        count: u64,
        len_blocks: u64,
        streams: u32,
        alignment: u64,
        jitter_units: u64,
        seed: u64,
    ) -> Result<Self, CmsError> {
        Self::mixed(count, len_blocks, 0, streams, alignment, jitter_units, seed)
    }

    /// Like [`Catalog::uniform_jittered`], but with heterogeneous clip
    /// lengths: clip `i` is `base_len + h_i` blocks long for a seeded
    /// `h_i ∈ 0..=spread` (a real library mixes shorts, episodes and
    /// features; `spread = 0` reproduces the paper's uniform 50-block
    /// clips).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for zero counts, base lengths,
    /// streams, alignment or jitter.
    pub fn mixed(
        count: u64,
        base_len: u64,
        spread: u64,
        streams: u32,
        alignment: u64,
        jitter_units: u64,
        seed: u64,
    ) -> Result<Self, CmsError> {
        if count == 0 || base_len == 0 || streams == 0 || alignment == 0 || jitter_units == 0 {
            return Err(CmsError::invalid_params(
                "count, length, streams, alignment and jitter must all be >= 1",
            ));
        }
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clips = Vec::with_capacity(count as usize);
        let mut cursors = vec![0u64; streams as usize];
        for i in 0..count {
            let stream = (i % u64::from(streams)) as u32;
            let cursor = &mut cursors[stream as usize];
            let pad = (next() % jitter_units) * alignment;
            let len = base_len + if spread == 0 { 0 } else { next() % (spread + 1) };
            let start = (*cursor + pad).div_ceil(alignment) * alignment;
            clips.push(ClipPlacement {
                id: ClipId(i),
                stream,
                start_index: start,
                len,
            });
            *cursor = start + len;
        }
        Ok(Catalog { clips, stream_lens: cursors })
    }

    /// Number of clips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Is the catalog empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Placement of a clip.
    ///
    /// # Panics
    ///
    /// Panics if the clip id is out of range.
    #[must_use]
    pub fn placement(&self, id: ClipId) -> ClipPlacement {
        self.clips[id.idx()]
    }

    /// All placements.
    #[must_use]
    pub fn placements(&self) -> &[ClipPlacement] {
        &self.clips
    }

    /// Blocks needed in `stream` to hold every clip assigned to it.
    #[must_use]
    pub fn stream_len(&self, stream: u32) -> u64 {
        self.stream_lens[stream as usize]
    }

    /// The longest stream — what the layout builders must allocate.
    #[must_use]
    pub fn max_stream_len(&self) -> u64 {
        self.stream_lens.iter().copied().max().unwrap_or(0)
    }

    /// Total storage in blocks across streams (including alignment
    /// padding — the paper pads clips with advertisements to the block
    /// multiple; we pad starts to group boundaries).
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.stream_lens.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_shape() {
        // 1000 clips × 50 blocks, single stream, no alignment.
        let c = Catalog::uniform(1000, 50, 1, 1).unwrap();
        assert_eq!(c.len(), 1000);
        assert_eq!(c.total_blocks(), 50_000);
        let p = c.placement(ClipId(999));
        assert_eq!(p.start_index, 999 * 50);
        assert_eq!(p.end_index(), 50_000);
    }

    #[test]
    fn alignment_pads_starts() {
        // Clips of 50 blocks aligned to 3 (p = 4 prefetch): starts at
        // 0, 51, 102, ... (51 = ceil(50/3)*3).
        let c = Catalog::uniform(10, 50, 1, 3).unwrap();
        for clip in c.placements() {
            assert_eq!(clip.start_index % 3, 0, "{clip:?}");
        }
        assert_eq!(c.placement(ClipId(1)).start_index, 51);
        assert!(c.total_blocks() >= 500);
    }

    #[test]
    fn streams_are_packed_round_robin() {
        let c = Catalog::uniform(9, 10, 3, 1).unwrap();
        for (i, clip) in c.placements().iter().enumerate() {
            assert_eq!(clip.stream, (i % 3) as u32);
        }
        assert_eq!(c.stream_len(0), 30);
        assert_eq!(c.stream_len(1), 30);
        assert_eq!(c.stream_len(2), 30);
        assert_eq!(c.max_stream_len(), 30);
    }

    #[test]
    fn clips_never_overlap_within_a_stream() {
        let c = Catalog::uniform(100, 7, 4, 5).unwrap();
        for s in 0..4u32 {
            let mut spans: Vec<(u64, u64)> = c
                .placements()
                .iter()
                .filter(|p| p.stream == s)
                .map(|p| (p.start_index, p.end_index()))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap in stream {s}: {w:?}");
            }
        }
    }

    #[test]
    fn jitter_randomizes_start_disks() {
        let d = 32u64;
        let plain = Catalog::uniform(200, 50, 1, 1).unwrap();
        let jittered = Catalog::uniform_jittered(200, 50, 1, 1, d, 7).unwrap();
        let distinct = |c: &Catalog| {
            let set: std::collections::BTreeSet<u64> =
                c.placements().iter().map(|p| p.start_index % d).collect();
            set.len()
        };
        assert_eq!(distinct(&plain), 16, "dense packing hits only even disks");
        assert!(distinct(&jittered) > 24, "jitter must spread start disks");
        // Deterministic per seed.
        let again = Catalog::uniform_jittered(200, 50, 1, 1, d, 7).unwrap();
        assert_eq!(jittered.placements(), again.placements());
    }

    #[test]
    fn jittered_respects_alignment_and_no_overlap() {
        let c = Catalog::uniform_jittered(100, 50, 1, 3, 32, 9).unwrap();
        let mut prev_end = 0u64;
        for p in c.placements() {
            assert_eq!(p.start_index % 3, 0);
            assert!(p.start_index >= prev_end);
            prev_end = p.end_index();
        }
    }

    #[test]
    fn mixed_lengths_vary_within_range_without_overlap() {
        let c = Catalog::mixed(100, 20, 30, 1, 3, 8, 5).unwrap();
        let lens: std::collections::BTreeSet<u64> =
            c.placements().iter().map(|p| p.len).collect();
        assert!(lens.len() > 5, "lengths must actually vary: {lens:?}");
        assert!(lens.iter().all(|&l| (20..=50).contains(&l)));
        let mut prev_end = 0;
        for p in c.placements() {
            assert!(p.start_index >= prev_end, "no overlap");
            assert_eq!(p.start_index % 3, 0, "alignment kept");
            prev_end = p.end_index();
        }
        // Deterministic.
        assert_eq!(
            c.placements(),
            Catalog::mixed(100, 20, 30, 1, 3, 8, 5).unwrap().placements()
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Catalog::uniform(0, 50, 1, 1).is_err());
        assert!(Catalog::uniform(10, 0, 1, 1).is_err());
        assert!(Catalog::uniform(10, 50, 0, 1).is_err());
        assert!(Catalog::uniform(10, 50, 1, 0).is_err());
    }
}
