//! Clip selection: which clip an arriving client asks for.
//!
//! The paper draws uniformly ("the choice of the clip for playback by a
//! request is assumed to be random"); Zipf popularity is the standard
//! video-on-demand refinement and is provided as an extension for the
//! skew experiments in the bench harness.

use cms_core::ClipId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded clip-selection distribution over `n` clips.
#[derive(Debug, Clone)]
pub enum ClipChoice {
    /// Uniform over `0..n` (the paper's workload).
    Uniform {
        /// Catalog size.
        n: u64,
        /// Generator state.
        rng: StdRng,
    },
    /// Zipf with exponent `theta`: clip `k` (0-based rank) has weight
    /// `1/(k+1)^theta`. Sampled via the precomputed CDF.
    Zipf {
        /// Catalog size.
        n: u64,
        /// Cumulative distribution, ascending, last element 1.0.
        cdf: Vec<f64>,
        /// Generator state.
        rng: StdRng,
    },
}

impl ClipChoice {
    /// Uniform selection over `n` clips.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn uniform(n: u64, seed: u64) -> Self {
        assert!(n > 0, "catalog must be non-empty");
        ClipChoice::Uniform { n, rng: StdRng::seed_from_u64(seed) }
    }

    /// Zipf(θ) selection over `n` clips (rank 0 most popular).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/not finite.
    #[must_use]
    pub fn zipf(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "catalog must be non-empty");
        assert!(theta.is_finite() && theta >= 0.0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ClipChoice::Zipf { n, cdf, rng: StdRng::seed_from_u64(seed) }
    }

    /// Draws the next requested clip.
    pub fn next_clip(&mut self) -> ClipId {
        match self {
            ClipChoice::Uniform { n, rng } => ClipId(rng.gen_range(0..*n)),
            ClipChoice::Zipf { n, cdf, rng } => {
                let u: f64 = rng.gen();
                let idx = cdf.partition_point(|&c| c < u) as u64;
                ClipId(idx.min(*n - 1))
            }
        }
    }

    /// Catalog size.
    #[must_use]
    pub fn catalog_size(&self) -> u64 {
        match self {
            ClipChoice::Uniform { n, .. } | ClipChoice::Zipf { n, .. } => *n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_catalog_evenly() {
        let mut c = ClipChoice::uniform(10, 5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[c.next_clip().idx()] += 1;
        }
        for (k, &n) in counts.iter().enumerate() {
            assert!((800..1200).contains(&n), "clip {k}: {n} draws");
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut c = ClipChoice::zipf(100, 1.0, 5);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[c.next_clip().idx()] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 gets ≈ 1/H_100 ≈ 19% of requests.
        assert!((counts[0] as f64 / 50_000.0 - 0.192).abs() < 0.02);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut c = ClipChoice::zipf(10, 0.0, 5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[c.next_clip().idx()] += 1;
        }
        for &n in &counts {
            assert!((800..1200).contains(&n));
        }
    }

    #[test]
    fn draws_stay_in_range() {
        let mut u = ClipChoice::uniform(3, 0);
        let mut z = ClipChoice::zipf(3, 2.0, 0);
        for _ in 0..1000 {
            assert!(u.next_clip().raw() < 3);
            assert!(z.next_clip().raw() < 3);
        }
    }

    #[test]
    fn reproducible_by_seed() {
        let mut a = ClipChoice::uniform(1000, 77);
        let mut b = ClipChoice::uniform(1000, 77);
        for _ in 0..50 {
            assert_eq!(a.next_clip(), b.next_clip());
        }
    }
}
