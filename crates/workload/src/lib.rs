//! # cms-workload — clips, arrivals and popularity
//!
//! The paper's Section 8.2 workload: a catalog of 1000 clips of 50 time
//! units each, striped over the array; client requests arriving as a
//! Poisson process with mean 20 per time unit; the requested clip chosen
//! uniformly at random. This crate generalizes all three knobs:
//!
//! * [`Catalog`] — clip lengths and their placement (stream, start
//!   offset), with alignment control so prefetch schemes can pin clip
//!   starts to parity-group boundaries,
//! * [`PoissonArrivals`] — seeded per-round arrival counts,
//! * [`ClipChoice`] — uniform or Zipf-popular selection (Zipf is the
//!   standard VoD extension; uniform reproduces the paper).

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arrivals;
pub mod catalog;
pub mod choice;

pub use arrivals::PoissonArrivals;
pub use catalog::{Catalog, ClipPlacement};
pub use choice::ClipChoice;
