//! Poisson arrival process (Section 8.2: "Arrival of client requests into
//! the system is assumed to be Poisson", mean 20 per time unit).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded Poisson arrival generator: one draw per round.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    lambda: f64,
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a generator with mean `lambda` arrivals per round.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    #[must_use]
    pub fn new(lambda: f64, seed: u64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "λ must be finite and >= 0");
        PoissonArrivals { lambda, rng: StdRng::seed_from_u64(seed) }
    }

    /// The mean arrival rate λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Samples the number of arrivals in the next round.
    ///
    /// Uses Knuth's product method for λ ≤ 30 and a normal approximation
    /// (clamped at zero) beyond — arrival rates in CM-server experiments
    /// are small, so the exact path is the common one.
    pub fn next_round(&mut self) -> u32 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda <= 30.0 {
            let limit = (-self.lambda).exp();
            let mut product: f64 = 1.0;
            let mut count = 0u32;
            loop {
                product *= self.rng.gen::<f64>();
                if product <= limit {
                    return count;
                }
                count += 1;
            }
        } else {
            // Normal approximation N(λ, λ).
            let (u1, u2): (f64, f64) = (self.rng.gen(), self.rng.gen());
            let z = (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt()
                * (2.0 * std::f64::consts::PI * u2).cos();
            (self.lambda + z * self.lambda.sqrt()).round().max(0.0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lambda_never_arrives() {
        let mut a = PoissonArrivals::new(0.0, 1);
        for _ in 0..100 {
            assert_eq!(a.next_round(), 0);
        }
    }

    #[test]
    fn mean_is_close_to_lambda() {
        for lambda in [0.5f64, 5.0, 20.0] {
            let mut a = PoissonArrivals::new(lambda, 42);
            let n = 20_000;
            let total: u64 = (0..n).map(|_| u64::from(a.next_round())).sum();
            let mean = total as f64 / f64::from(n);
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "λ = {lambda}: sample mean {mean}"
            );
        }
    }

    #[test]
    fn variance_is_close_to_lambda() {
        let lambda = 20.0;
        let mut a = PoissonArrivals::new(lambda, 7);
        let n = 20_000usize;
        let samples: Vec<f64> = (0..n).map(|_| f64::from(a.next_round())).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (var - lambda).abs() < lambda * 0.1,
            "Poisson variance should equal λ, got {var}"
        );
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = PoissonArrivals::new(20.0, 9);
        let mut b = PoissonArrivals::new(20.0, 9);
        for _ in 0..100 {
            assert_eq!(a.next_round(), b.next_round());
        }
        let mut c = PoissonArrivals::new(20.0, 10);
        let differs = (0..100).any(|_| a.next_round() != c.next_round());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn large_lambda_uses_normal_path() {
        let mut a = PoissonArrivals::new(100.0, 3);
        let n = 5_000;
        let total: u64 = (0..n).map(|_| u64::from(a.next_round())).sum();
        let mean = total as f64 / f64::from(n);
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }
}
