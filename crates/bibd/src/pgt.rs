//! The parity group table (PGT) of Section 4.1.
//!
//! Given an equal-replication design over the `d` disks, the PGT is an
//! `r × d` table whose column `i` lists the sets containing disk `i`.
//! Disk block `j` of disk `i` is mapped to `PGT[j mod r][i]`, and within
//! each *window* of `r` consecutive disk blocks, the blocks mapped to the
//! same set form a parity group. Parity rotates among the set's disks in
//! successive windows so parity load is uniform.
//!
//! The table also answers the two structural questions admission control
//! asks:
//!
//! * **Property 1 / column overlap** — for each column, how many *other*
//!   sets of the same column a set can collide with on another disk
//!   (exactly 0 for λ = 1 designs; bounded by λ_max − 1 otherwise).
//! * **Δ-offsets (Section 5)** — for each table cell, the circular disk
//!   distances to the other members of its set, used by the dynamic
//!   reservation scheme to place contingency holds.

use crate::design::{Design, DesignStats};
use std::collections::BTreeSet;

/// Identifier of a set (parity-group stencil) in the underlying design:
/// an index into [`Pgt::members`].
pub type SetId = usize;

/// The parity group table.
#[derive(Debug, Clone)]
pub struct Pgt {
    /// Number of disks `d` (= the design's `v`).
    d: u32,
    /// Number of rows `r` (= the design's replication).
    r: u32,
    /// Parity group size `k` (the design's `k`; individual sets may be
    /// smaller for fallback designs).
    k: u32,
    /// `cell[row * d + col]` = set id at (row, col).
    cell: Vec<SetId>,
    /// Set membership (sorted disk ids), indexed by [`SetId`].
    sets: Vec<Vec<u32>>,
    /// All `(row, col)` occurrences of each set.
    occurrences: Vec<Vec<(u32, u32)>>,
    /// Design balance statistics, retained for admission budgeting.
    stats: DesignStats,
}

impl Pgt {
    /// Builds the PGT from a design.
    ///
    /// # Panics
    ///
    /// Panics if the design does not have equal replication (the table
    /// would not be rectangular).
    #[must_use]
    pub fn new(design: &Design) -> Self {
        let stats = design.stats();
        assert!(
            stats.equal_replication(),
            "PGT needs equal replication, got r in {}..{}",
            stats.r_min,
            stats.r_max
        );
        let d = design.v;
        let r = stats.r_max;
        let mut cell = vec![usize::MAX; (r * d) as usize];
        for col in 0..d {
            for (row, set_id) in design.sets_containing(col).into_iter().enumerate() {
                cell[row * d as usize + col as usize] = set_id;
            }
        }
        debug_assert!(cell.iter().all(|&s| s != usize::MAX));
        let mut occurrences = vec![Vec::new(); design.num_sets()];
        for row in 0..r {
            for col in 0..d {
                occurrences[cell[(row * d + col) as usize]].push((row, col));
            }
        }
        Pgt {
            d,
            r,
            k: design.k,
            cell,
            sets: design.sets.clone(),
            occurrences,
            stats,
        }
    }

    /// Number of disks (columns).
    #[must_use]
    pub fn disks(&self) -> u32 {
        self.d
    }

    /// Number of rows `r`.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.r
    }

    /// Nominal parity group size `k`.
    #[must_use]
    pub fn group_size(&self) -> u32 {
        self.k
    }

    /// Balance statistics of the underlying design.
    #[must_use]
    pub fn stats(&self) -> &DesignStats {
        &self.stats
    }

    /// The set id at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= r` or `col >= d`.
    #[must_use]
    pub fn set_at(&self, row: u32, col: u32) -> SetId {
        assert!(row < self.r && col < self.d, "PGT index ({row},{col}) out of range");
        self.cell[(row * self.d + col) as usize]
    }

    /// The disks participating in `set` (sorted).
    #[must_use]
    pub fn members(&self, set: SetId) -> &[u32] {
        &self.sets[set]
    }

    /// Number of distinct sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// All `(row, col)` cells holding `set`. One entry per member disk.
    #[must_use]
    pub fn occurrences(&self, set: SetId) -> &[(u32, u32)] {
        &self.occurrences[set]
    }

    /// The set a given disk block belongs to: block `block_no` of disk
    /// `disk` maps to `PGT[block_no mod r][disk]` (Section 4.1).
    #[must_use]
    pub fn set_of_block(&self, disk: u32, block_no: u64) -> SetId {
        self.set_at((block_no % u64::from(self.r)) as u32, disk)
    }

    /// The window index of a disk block (blocks `n·r .. (n+1)·r − 1` form
    /// window `n`; parity groups live within one window).
    #[must_use]
    pub fn window_of_block(&self, block_no: u64) -> u64 {
        block_no / u64::from(self.r)
    }

    /// The disk that stores the *parity* block for `set` in window
    /// `window`: parity rotates among the set's members in successive
    /// windows ("in successive parity groups mapped to the same set,
    /// parity blocks are uniformly distributed among the disks in the
    /// set"). The rotation descends through the member list — the paper's
    /// worked example places S0 = {0, 1, 3} parity on disks 3, 1, 0 in
    /// windows 0, 1, 2.
    #[must_use]
    pub fn parity_disk(&self, set: SetId, window: u64) -> u32 {
        let members = &self.sets[set];
        let len = members.len() as u64;
        members[((len - 1 - (window % len)) % len) as usize]
    }

    /// Section 5's Δ-offset set for a cell: the circular distances
    /// `(m − j) mod d` from column `j` to every other column `m` holding
    /// the same set. Reserving contingency on disks `(j + δ) mod d` for
    /// all `δ` covers the rest of the cell's parity group.
    #[must_use]
    pub fn deltas(&self, row: u32, col: u32) -> Vec<u32> {
        let set = self.set_at(row, col);
        self.occurrences[set]
            .iter()
            .filter(|&&(_, m)| m != col)
            .map(|&(_, m)| (m + self.d - col) % self.d)
            .collect()
    }

    /// The union `Δ_i` of all Δ-offsets of row `i` across columns — the
    /// disks (relative to a clip's current disk) on which the dynamic
    /// scheme must hold contingency while serving a super-clip of row `i`.
    #[must_use]
    pub fn row_deltas(&self, row: u32) -> Vec<u32> {
        let mut union = BTreeSet::new();
        for col in 0..self.d {
            union.extend(self.deltas(row, col));
        }
        union.into_iter().collect()
    }

    /// The worst-case number of *additional* blocks disk `survivor` must
    /// serve per round if disk `failed` dies, assuming at most `per_row`
    /// blocks per (disk, row) are in flight (admission condition (b) of
    /// Section 4.2). This is `per_row ×` the number of rows in which the
    /// two disks share a set — exactly `per_row` for λ = 1 designs.
    #[must_use]
    pub fn reconstruction_overlap(&self, survivor: u32, failed: u32) -> u32 {
        if survivor == failed {
            return 0;
        }
        (0..self.r)
            .filter(|&row| {
                let set = self.set_at(row, failed);
                self.sets[set].binary_search(&survivor).is_ok()
            })
            .count() as u32
    }

    /// Maximum pair co-occurrence (λ_max): multiplies the contingency
    /// budget required by relaxed designs.
    #[must_use]
    pub fn lambda_max(&self) -> u32 {
        self.stats.lambda_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{best_design, DesignRequest};
    use crate::design::DesignSource;

    /// The paper's Example 1 design, verbatim.
    fn example1() -> Design {
        Design::new(
            7,
            3,
            vec![
                vec![0, 1, 3],
                vec![1, 2, 4],
                vec![2, 3, 5],
                vec![3, 4, 6],
                vec![4, 5, 0],
                vec![5, 6, 1],
                vec![6, 0, 2],
            ],
            DesignSource::ProjectivePlane,
        )
    }

    #[test]
    fn shape_matches_paper_example() {
        let pgt = Pgt::new(&example1());
        assert_eq!(pgt.disks(), 7);
        assert_eq!(pgt.rows(), 3);
        assert_eq!(pgt.num_sets(), 7);
        // Column 0 of the paper's table: S0, S4, S6 (top to bottom).
        assert_eq!(pgt.set_at(0, 0), 0);
        assert_eq!(pgt.set_at(1, 0), 4);
        assert_eq!(pgt.set_at(2, 0), 6);
        // Column 3: S0, S2, S3.
        assert_eq!(pgt.set_at(0, 3), 0);
        assert_eq!(pgt.set_at(1, 3), 2);
        assert_eq!(pgt.set_at(2, 3), 3);
    }

    #[test]
    fn each_set_occurs_once_per_member() {
        let pgt = Pgt::new(&example1());
        for set in 0..pgt.num_sets() {
            assert_eq!(pgt.occurrences(set).len(), pgt.members(set).len());
            let cols: BTreeSet<u32> = pgt.occurrences(set).iter().map(|&(_, c)| c).collect();
            let members: BTreeSet<u32> = pgt.members(set).iter().copied().collect();
            assert_eq!(cols, members, "set {set} occurs exactly in its member columns");
        }
    }

    #[test]
    fn block_mapping_follows_mod_r() {
        let pgt = Pgt::new(&example1());
        // Block 0 of disks 0, 1, 3 all map to S0 and form a parity group
        // (the paper's worked example).
        assert_eq!(pgt.set_of_block(0, 0), 0);
        assert_eq!(pgt.set_of_block(1, 0), 0);
        assert_eq!(pgt.set_of_block(3, 0), 0);
        // Blocks 0, 3, 6 of a disk map to the same set (j mod 3).
        assert_eq!(pgt.set_of_block(0, 0), pgt.set_of_block(0, 3));
        assert_eq!(pgt.set_of_block(0, 3), pgt.set_of_block(0, 6));
        assert_eq!(pgt.window_of_block(0), 0);
        assert_eq!(pgt.window_of_block(5), 1);
        assert_eq!(pgt.window_of_block(6), 2);
    }

    #[test]
    fn parity_rotates_across_windows() {
        let pgt = Pgt::new(&example1());
        // The paper's worked example: "in the three successive parity
        // groups mapped to set S0 (on disk blocks 0, 3 and 6), parity
        // blocks are stored on disks 3, 1 and 0 respectively."
        assert_eq!(pgt.parity_disk(0, 0), 3);
        assert_eq!(pgt.parity_disk(0, 1), 1);
        assert_eq!(pgt.parity_disk(0, 2), 0);
        // All members are hit within k windows; the rotation has period k.
        let members: BTreeSet<u32> = pgt.members(0).iter().copied().collect();
        let hit: BTreeSet<u32> = (0..3).map(|w| pgt.parity_disk(0, w)).collect();
        assert_eq!(hit, members);
        assert_eq!(pgt.parity_disk(0, 0), pgt.parity_disk(0, 3));
        // Window 0 of S1 = {1, 2, 4} puts parity on disk 4 (the paper's
        // P1, parity of D8 and D2).
        assert_eq!(pgt.parity_disk(1, 0), 4);
    }

    #[test]
    fn property1_lambda1_designs_have_unit_overlap() {
        // For a λ=1 design, a failed disk adds load to a survivor through
        // exactly one shared row.
        let pgt = Pgt::new(&example1());
        for failed in 0..7 {
            for survivor in 0..7 {
                if failed == survivor {
                    continue;
                }
                assert_eq!(
                    pgt.reconstruction_overlap(survivor, failed),
                    1,
                    "λ=1 ⇒ exactly one shared row ({survivor} vs {failed})"
                );
            }
        }
    }

    #[test]
    fn deltas_point_at_set_partners() {
        let pgt = Pgt::new(&example1());
        // S0 = {0,1,3}: from column 0 the partners are at +1 and +3.
        let mut d = pgt.deltas(0, 0);
        d.sort_unstable();
        assert_eq!(d, vec![1, 3]);
        // From column 1 (S0 is row 0 of column 1): partners at disks 0 and
        // 3 → offsets (0−1) mod 7 = 6 and (3−1) mod 7 = 2.
        let mut d = pgt.deltas(0, 1);
        d.sort_unstable();
        assert_eq!(d, vec![2, 6]);
    }

    #[test]
    fn row_deltas_cover_all_columns_offsets() {
        let pgt = Pgt::new(&example1());
        for row in 0..3 {
            let union = pgt.row_deltas(row);
            for col in 0..7 {
                for delta in pgt.deltas(row, col) {
                    assert!(union.contains(&delta), "row {row} col {col} δ {delta}");
                }
            }
            assert!(!union.contains(&0), "zero offset must be excluded");
        }
    }

    #[test]
    fn fallback_design_pgt_overlap_bounded_by_lambda() {
        let design = best_design(DesignRequest::new(32, 8)).unwrap();
        let pgt = Pgt::new(&design);
        let lambda = pgt.lambda_max();
        for failed in 0..32 {
            for survivor in 0..32 {
                assert!(
                    pgt.reconstruction_overlap(survivor, failed) <= lambda,
                    "overlap must be bounded by λ_max = {lambda}"
                );
            }
        }
    }

    #[test]
    fn trivial_design_single_row() {
        let design = best_design(DesignRequest::new(8, 8)).unwrap();
        let pgt = Pgt::new(&design);
        assert_eq!(pgt.rows(), 1);
        assert_eq!(pgt.num_sets(), 1);
        for disk in 0..8 {
            assert_eq!(pgt.set_of_block(disk, 12345), 0);
        }
        // Every survivor shares the single row with any failed disk.
        assert_eq!(pgt.reconstruction_overlap(0, 5), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let pgt = Pgt::new(&example1());
        let _ = pgt.set_at(3, 0);
    }

    #[test]
    #[should_panic(expected = "equal replication")]
    fn unequal_replication_rejected() {
        let mut d = example1();
        d.sets.pop();
        let _ = Pgt::new(&d);
    }
}
