//! Steiner triple systems — exact `(v, 3, 1)` BIBDs.
//!
//! An STS(v) exists iff `v ≡ 1 or 3 (mod 6)`. Two constructions:
//!
//! * **Bose (1939)** for `v = 6t + 3`: a closed-form construction over
//!   `Z_{2t+1} × {0, 1, 2}` using the idempotent commutative quasigroup
//!   `i ∘ j = (i + j)·(t + 1) mod (2t + 1)`. Deterministic and O(v²).
//! * **Stinson's hill-climbing (1985)** for any admissible `v`: grow a
//!   partial triple system, resolving collisions by evicting the covering
//!   triple. Randomized but in practice converges in O(v²) steps; we seed
//!   it deterministically so designs are reproducible.

use crate::design::{Design, DesignSource};

/// Tiny deterministic xorshift64* PRNG so this crate stays
/// dependency-free. Quality is ample for hill-climb tie-breaking.
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `0..bound`.
    pub(crate) fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.next_u64() % u64::from(bound)) as u32
    }
}

/// Is an STS(v) admissible (`v ≡ 1, 3 (mod 6)`)?
#[must_use]
pub fn sts_admissible(v: u32) -> bool {
    v >= 3 && (v % 6 == 1 || v % 6 == 3)
}

/// Builds a Steiner triple system on `v` points.
///
/// Uses Bose's construction when `v ≡ 3 (mod 6)` and hill-climbing
/// otherwise.
///
/// # Panics
///
/// Panics if `v` is not admissible.
#[must_use]
pub fn steiner_triple_system(v: u32, seed: u64) -> Design {
    assert!(sts_admissible(v), "no STS exists for v = {v}");
    if v % 6 == 3 {
        bose(v)
    } else {
        stinson(v, seed)
    }
}

/// Bose's construction for `v = 6t + 3`.
#[must_use]
pub fn bose(v: u32) -> Design {
    assert_eq!(v % 6, 3, "Bose needs v ≡ 3 (mod 6)");
    let t = (v - 3) / 6;
    let n = 2 * t + 1; // order of the quasigroup
    let point = |i: u32, level: u32| i + level * n;
    let op = |i: u32, j: u32| ((i + j) * (t + 1)) % n;

    let mut sets = Vec::with_capacity((v as usize * (v as usize - 1)) / 6);
    // Type 1: the three levels of each quasigroup element.
    for i in 0..n {
        sets.push(vec![point(i, 0), point(i, 1), point(i, 2)]);
    }
    // Type 2: two points on one level plus their quasigroup product on the
    // next level.
    for i in 0..n {
        for j in (i + 1)..n {
            for level in 0..3 {
                sets.push(vec![
                    point(i, level),
                    point(j, level),
                    point(op(i, j), (level + 1) % 3),
                ]);
            }
        }
    }
    Design::new(v, 3, sets, DesignSource::BoseSteiner)
}

/// Stinson's hill-climbing construction for any admissible `v`.
///
/// Invariant maintained throughout: the current set of triples is a
/// *partial* triple system (every pair covered at most once). Each step
/// either adds a triple covering three uncovered pairs (+1 triple) or
/// swaps one triple for another (±0) — the covered-pair count never
/// decreases by more than it gains, and in practice the system completes
/// in a few `v²` iterations.
#[must_use]
pub fn stinson(v: u32, seed: u64) -> Design {
    assert!(sts_admissible(v));
    let vs = v as usize;
    let target = vs * (vs - 1) / 6;
    let mut rng = XorShift64::new(seed ^ 0x0053_1750_u64.rotate_left(17));

    // cover[a*v+b] = id of the triple covering pair (a, b), or usize::MAX.
    const NONE: usize = usize::MAX;
    let mut cover = vec![NONE; vs * vs];
    let mut triples: Vec<[u32; 3]> = Vec::with_capacity(target);
    // degree[x] = number of points y such that (x, y) is covered.
    let mut degree = vec![0u32; vs];

    let pair = |a: u32, b: u32| -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo as usize * vs + hi as usize
    };

    // Free slots in `triples` from evictions, reused to keep ids dense.
    let mut free: Vec<usize> = Vec::new();
    let mut live_count = target; // triples still to place

    let add = |triples: &mut Vec<[u32; 3]>,
                   cover: &mut Vec<usize>,
                   degree: &mut Vec<u32>,
                   free: &mut Vec<usize>,
                   t: [u32; 3]| {
        let id = free.pop().unwrap_or_else(|| {
            triples.push([0; 3]);
            triples.len() - 1
        });
        triples[id] = t;
        for i in 0..3 {
            for j in (i + 1)..3 {
                cover[pair(t[i], t[j])] = id;
            }
            degree[t[i] as usize] += 2;
        }
        id
    };

    let mut steps: u64 = 0;
    let step_limit: u64 = 200_000_u64.max(u64::from(v) * u64::from(v) * 64);
    while live_count > 0 {
        steps += 1;
        assert!(
            steps < step_limit,
            "hill climbing failed to converge for v = {v} (seed {seed})"
        );
        // Pick a live point x (one with uncovered pairs).
        let x = loop {
            let cand = rng.below(v);
            if degree[cand as usize] < v - 1 {
                break cand;
            }
        };
        // Pick two distinct live partners y, z of x.
        let pick_partner = |rng: &mut XorShift64, cover: &[usize], exclude: u32| loop {
            let cand = rng.below(v);
            if cand != x && cand != exclude && cover[pair(x, cand)] == NONE {
                return cand;
            }
        };
        let y = pick_partner(&mut rng, &cover, x);
        let z = pick_partner(&mut rng, &cover, y);

        let yz = cover[pair(y, z)];
        if yz == NONE {
            add(&mut triples, &mut cover, &mut degree, &mut free, [x, y, z]);
            live_count -= 1;
        } else {
            // Evict the triple covering (y, z), then place {x, y, z}.
            let old = triples[yz];
            for i in 0..3 {
                for j in (i + 1)..3 {
                    cover[pair(old[i], old[j])] = NONE;
                }
                degree[old[i] as usize] -= 2;
            }
            free.push(yz);
            add(&mut triples, &mut cover, &mut degree, &mut free, [x, y, z]);
            // Net triples unchanged: one removed, one added.
        }
    }

    let sets = triples.into_iter().map(|t| t.to_vec()).collect();
    Design::new(v, 3, sets, DesignSource::StinsonSteiner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admissibility() {
        assert!(sts_admissible(3));
        assert!(sts_admissible(7));
        assert!(sts_admissible(9));
        assert!(sts_admissible(13));
        assert!(sts_admissible(15));
        assert!(!sts_admissible(5));
        assert!(!sts_admissible(6));
        assert!(!sts_admissible(8));
        assert!(!sts_admissible(11));
    }

    #[test]
    fn bose_v9_is_exact() {
        let d = bose(9);
        assert!(d.is_exact_bibd(1));
        assert_eq!(d.num_sets(), 12);
    }

    #[test]
    fn bose_v15_v21_are_exact() {
        for v in [15u32, 21, 27, 33] {
            let d = bose(v);
            assert!(d.is_exact_bibd(1), "v = {v}");
            assert_eq!(d.num_sets(), (v as usize * (v as usize - 1)) / 6);
        }
    }

    #[test]
    fn stinson_v7_is_exact() {
        let d = stinson(7, 42);
        assert!(d.is_exact_bibd(1));
        assert_eq!(d.num_sets(), 7);
    }

    #[test]
    fn stinson_v13_v19_v25_are_exact() {
        for v in [13u32, 19, 25, 31] {
            let d = stinson(v, 7);
            assert!(d.is_exact_bibd(1), "v = {v}");
        }
    }

    #[test]
    fn stinson_is_deterministic_per_seed() {
        let a = stinson(13, 99);
        let b = stinson(13, 99);
        assert_eq!(a, b);
        // Different seeds usually give different systems (not guaranteed,
        // but true for these seeds — a regression here means the seed is
        // being ignored).
        let c = stinson(13, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn dispatcher_picks_construction_by_residue() {
        assert_eq!(steiner_triple_system(9, 0).source, DesignSource::BoseSteiner);
        assert_eq!(steiner_triple_system(13, 0).source, DesignSource::StinsonSteiner);
    }

    #[test]
    #[should_panic(expected = "no STS exists")]
    fn inadmissible_v_panics() {
        let _ = steiner_triple_system(8, 0);
    }

    #[test]
    fn xorshift_below_is_in_range() {
        let mut rng = XorShift64::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
