//! Affine and projective planes over finite fields — the classic families
//! of exact `λ = 1` BIBDs with larger set sizes.
//!
//! * **Affine plane `AG(2, q)`**: points are `GF(q)²` (`v = q²`), lines are
//!   `y = m·x + c` plus the verticals `x = c` (`s = q² + q`, `k = q`,
//!   `r = q + 1`). The lines partition into `q + 1` parallel classes, which
//!   makes the design *resolvable* — each PGT row can be one parallel
//!   class, giving a perfectly regular declustering.
//! * **Projective plane `PG(2, q)`**: points are the 1-dimensional
//!   subspaces of `GF(q)³` (`v = q² + q + 1`), lines the 2-dimensional
//!   ones (`k = q + 1`, `r = q + 1`, `s = v`). The paper's Example 1
//!   (v = 7, k = 3) is `PG(2, 2)`, the Fano plane.

use crate::design::{Design, DesignSource};
use crate::gf::Gf;

/// Builds the affine plane `AG(2, q)` as a `(q², q, 1)` design, or `None`
/// if `q` is not a prime power.
///
/// Sets are emitted parallel class by parallel class (first all verticals,
/// then slope 0, slope 1, …), so consumers that want a resolvable layout
/// can chunk the set list into groups of `q`.
#[must_use]
pub fn affine_plane(q: u32) -> Option<Design> {
    let f = Gf::new(q)?;
    let v = q * q;
    let point = |x: u32, y: u32| x * q + y;
    let mut sets = Vec::with_capacity((q * (q + 1)) as usize);
    // Parallel class of verticals: x = c.
    for c in 0..q {
        sets.push((0..q).map(|y| point(c, y)).collect());
    }
    // One parallel class per slope m: y = m·x + c.
    for m in 0..q {
        for c in 0..q {
            sets.push((0..q).map(|x| point(x, f.mul_add(m, x, c))).collect());
        }
    }
    Some(Design::new(v, q, sets, DesignSource::AffinePlane))
}

/// Builds the projective plane `PG(2, q)` as a `(q² + q + 1, q + 1, 1)`
/// design, or `None` if `q` is not a prime power.
#[must_use]
pub fn projective_plane(q: u32) -> Option<Design> {
    let f = Gf::new(q)?;
    let v = q * q + q + 1;

    // Canonical representatives of 1-dim subspaces of GF(q)³:
    //   (1, a, b)  for a, b in GF(q)          — q² points
    //   (0, 1, a)  for a in GF(q)             — q points
    //   (0, 0, 1)                             — 1 point
    let mut points: Vec<[u32; 3]> = Vec::with_capacity(v as usize);
    for a in 0..q {
        for b in 0..q {
            points.push([1, a, b]);
        }
    }
    for a in 0..q {
        points.push([0, 1, a]);
    }
    points.push([0, 0, 1]);
    debug_assert_eq!(points.len(), v as usize);

    // A line is the set of points P with U·P = 0 for a dual representative
    // U (also ranging over the canonical representatives).
    let dot = |u: &[u32; 3], p: &[u32; 3]| {
        let mut acc = 0;
        for i in 0..3 {
            acc = f.add(acc, f.mul(u[i], p[i]));
        }
        acc
    };
    let mut sets = Vec::with_capacity(v as usize);
    for u in &points {
        let line: Vec<u32> = points
            .iter()
            .enumerate()
            .filter_map(|(idx, p)| (dot(u, p) == 0).then_some(idx as u32))
            .collect();
        debug_assert_eq!(line.len(), (q + 1) as usize);
        sets.push(line);
    }
    Some(Design::new(v, q + 1, sets, DesignSource::ProjectivePlane))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_planes_are_exact() {
        for q in [2u32, 3, 4, 5, 7, 8, 9] {
            let d = affine_plane(q).unwrap_or_else(|| panic!("AG(2,{q})"));
            assert!(d.is_exact_bibd(1), "AG(2,{q}) must be a ({},{q},1) BIBD", q * q);
            assert_eq!(d.num_sets() as u32, q * (q + 1));
            assert_eq!(d.stats().r_min, q + 1);
        }
    }

    #[test]
    fn affine_plane_parallel_classes_partition() {
        // Sets come out in q+1 chunks of q sets, each chunk a partition of
        // the point set — the resolvability property.
        let q = 4u32;
        let d = affine_plane(q).unwrap();
        for class in d.sets.chunks(q as usize) {
            let mut seen = vec![false; (q * q) as usize];
            for set in class {
                for &pt in set {
                    assert!(!seen[pt as usize], "parallel class must not repeat points");
                    seen[pt as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "parallel class must cover all points");
        }
    }

    #[test]
    fn projective_planes_are_exact() {
        for q in [2u32, 3, 4, 5, 7, 8] {
            let d = projective_plane(q).unwrap_or_else(|| panic!("PG(2,{q})"));
            assert!(
                d.is_exact_bibd(1),
                "PG(2,{q}) must be a ({},{},1) BIBD",
                q * q + q + 1,
                q + 1
            );
            assert_eq!(d.num_sets() as u32, q * q + q + 1);
        }
    }

    #[test]
    fn fano_plane_matches_paper_example_shape() {
        // PG(2,2) is the (7,3,1) system of the paper's Example 1 (up to
        // isomorphism): 7 sets, each point in 3.
        let d = projective_plane(2).unwrap();
        assert_eq!(d.v, 7);
        assert_eq!(d.k, 3);
        assert_eq!(d.num_sets(), 7);
        assert_eq!(d.stats().r_max, 3);
    }

    #[test]
    fn non_prime_power_orders_fail() {
        assert!(affine_plane(6).is_none());
        assert!(projective_plane(10).is_none());
    }
}
