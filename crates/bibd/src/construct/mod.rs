//! Design constructions: the replacement for Hall's 1986 BIBD tables.
//!
//! [`best_design`] dispatches `(v, k)` to the strongest available
//! construction:
//!
//! 1. `k == v` → [`trivial`],
//! 2. `k == 2` → [`pairs`] (exact, λ = 1, always exists),
//! 3. `k == 3`, `v ≡ 1, 3 (mod 6)` → [`steiner`] (Bose for `v ≡ 3`,
//!    Stinson hill-climbing otherwise),
//! 4. `v == k²`, `k` a prime power → affine plane ([`planes`]),
//! 5. `v == k² + k + 1`, `k − 1`… i.e. `k = q + 1` for a prime power `q`
//!    → projective plane ([`planes`]),
//! 6. anything else → [`fallback`] (greedy balanced partitions, relaxed
//!    λ but exact replication).
//!
//! Every exact path is verified by `Design::is_exact_bibd(1)` in tests;
//! the fallback is verified for equal replication and reported λ bounds.

pub mod fallback;
pub mod pairs;
pub mod planes;
pub mod steiner;
pub mod trivial;

use crate::design::Design;
use crate::gf::prime_power;

/// Parameters for requesting a design, with control over whether a relaxed
/// (non-λ=1) fallback is acceptable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignRequest {
    /// Number of objects (disks) `v`.
    pub v: u32,
    /// Set size (parity group size) `k`.
    pub k: u32,
    /// Permit the balanced-partition fallback when no exact construction
    /// applies. When `false`, [`best_design`] returns `None` in that case
    /// — mirroring the paper's "if a BIBD exists" guard in Figure 4.
    pub allow_fallback: bool,
    /// Seed for randomized constructions (Stinson hill-climbing, fallback
    /// tie-breaking). Same seed ⇒ same design.
    pub seed: u64,
}

impl DesignRequest {
    /// A request with fallback enabled and a fixed default seed.
    #[must_use]
    pub fn new(v: u32, k: u32) -> Self {
        DesignRequest { v, k, allow_fallback: true, seed: 0x5EED_CAFE }
    }

    /// Same, but requiring an exact λ = 1 design.
    #[must_use]
    pub fn exact(v: u32, k: u32) -> Self {
        DesignRequest { allow_fallback: false, ..Self::new(v, k) }
    }
}

/// Builds the best available design for the request. Returns `None` when
/// `(v, k)` is structurally invalid (`k < 2` or `k > v`) or when no exact
/// construction exists and the fallback is disallowed.
#[must_use]
pub fn best_design(req: DesignRequest) -> Option<Design> {
    let DesignRequest { v, k, allow_fallback, seed } = req;
    if k < 2 || k > v || v < 2 {
        return None;
    }
    if k == v {
        return Some(trivial::trivial(v));
    }
    if k == 2 {
        return Some(pairs::complete_pairs(v));
    }
    if k == 3 && (v % 6 == 1 || v % 6 == 3) {
        return Some(steiner::steiner_triple_system(v, seed));
    }
    if let Some(d) = try_plane(v, k) {
        return Some(d);
    }
    if allow_fallback {
        return Some(fallback::balanced_partitions(v, k, seed));
    }
    None
}

/// Affine plane when `v = k²` and `k` is a prime power; projective plane
/// when `v = k² − k + 1`... more precisely `k = q + 1`, `v = q² + q + 1`.
fn try_plane(v: u32, k: u32) -> Option<Design> {
    if v == k * k && prime_power(k).is_some() {
        return planes::affine_plane(k);
    }
    if k >= 3 {
        let q = k - 1;
        if v == q * q + q + 1 && prime_power(q).is_some() {
            return planes::projective_plane(q);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignSource;

    #[test]
    fn dispatch_trivial() {
        let d = best_design(DesignRequest::new(8, 8)).unwrap();
        assert_eq!(d.source, DesignSource::Trivial);
        assert_eq!(d.num_sets(), 1);
    }

    #[test]
    fn dispatch_pairs() {
        let d = best_design(DesignRequest::new(6, 2)).unwrap();
        assert_eq!(d.source, DesignSource::CompletePairs);
        assert!(d.is_exact_bibd(1));
    }

    #[test]
    fn dispatch_steiner() {
        let d = best_design(DesignRequest::new(9, 3)).unwrap();
        assert!(
            matches!(d.source, DesignSource::BoseSteiner | DesignSource::StinsonSteiner),
            "source = {:?}",
            d.source
        );
        assert!(d.is_exact_bibd(1));
    }

    #[test]
    fn dispatch_affine_plane() {
        let d = best_design(DesignRequest::new(16, 4)).unwrap();
        assert_eq!(d.source, DesignSource::AffinePlane);
        assert!(d.is_exact_bibd(1));
    }

    #[test]
    fn dispatch_projective_plane() {
        // q = 3: v = 13, k = 4.
        let d = best_design(DesignRequest::new(13, 4)).unwrap();
        assert_eq!(d.source, DesignSource::ProjectivePlane);
        assert!(d.is_exact_bibd(1));
    }

    #[test]
    fn dispatch_fallback_for_paper_config() {
        // The paper's own d = 32, p = 8 point has no exact λ=1 BIBD.
        let d = best_design(DesignRequest::new(32, 8)).unwrap();
        assert_eq!(d.source, DesignSource::BalancedFallback);
        assert!(d.stats().equal_replication());
    }

    #[test]
    fn exact_request_fails_where_no_bibd_exists() {
        assert!(best_design(DesignRequest::exact(32, 8)).is_none());
        assert!(best_design(DesignRequest::exact(32, 4)).is_none());
        // ... but succeeds where one does.
        assert!(best_design(DesignRequest::exact(7, 3)).is_some());
        assert!(best_design(DesignRequest::exact(32, 2)).is_some());
        assert!(best_design(DesignRequest::exact(32, 32)).is_some());
    }

    #[test]
    fn invalid_parameters_return_none() {
        assert!(best_design(DesignRequest::new(8, 1)).is_none());
        assert!(best_design(DesignRequest::new(8, 9)).is_none());
        assert!(best_design(DesignRequest::new(1, 1)).is_none());
    }

    #[test]
    fn determinism_same_seed_same_design() {
        let a = best_design(DesignRequest::new(32, 8)).unwrap();
        let b = best_design(DesignRequest::new(32, 8)).unwrap();
        assert_eq!(a, b);
    }
}
