//! The trivial design `k = v`: one set containing every object.
//!
//! This is the degenerate declustering where the whole array forms a
//! single RAID-5 cluster — the paper's `p = d` data point. It is an exact
//! BIBD with `λ = 1`, `r = 1`, `s = 1` (every pair co-occurs exactly once
//! because there is exactly one set).

use crate::design::{Design, DesignSource};

/// Builds the single-set design over `v` objects.
#[must_use]
pub fn trivial(v: u32) -> Design {
    Design::new(v, v, vec![(0..v).collect()], DesignSource::Trivial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_is_exact() {
        for v in [2u32, 3, 7, 32] {
            let d = trivial(v);
            assert!(d.is_exact_bibd(1), "v = {v}");
            let st = d.stats();
            assert_eq!(st.r_min, 1);
            assert_eq!(st.lambda_max, 1);
            assert_eq!(d.num_sets(), 1);
        }
    }
}
