//! The complete pair design: all `v·(v−1)/2` two-element subsets.
//!
//! This is the `k = 2` BIBD with `λ = 1` and `r = v − 1`; it exists for
//! every `v ≥ 2`. In the declustered-parity layout it corresponds to
//! mirrored blocks whose mirror partners are spread over *every* other
//! disk — exactly the doubly-striped mirroring of Mourad (1995) that the
//! paper's related-work section describes.
//!
//! Sets are emitted in an order that groups, per object, its pairs by
//! increasing partner distance; this makes the resulting PGT rows
//! correspond to "mirror on the disk `j` positions to the right", a
//! pleasantly regular layout.

use crate::design::{Design, DesignSource};

/// Builds the complete pair design over `v ≥ 2` objects.
#[must_use]
pub fn complete_pairs(v: u32) -> Design {
    let mut sets = Vec::with_capacity((v as usize * (v as usize - 1)) / 2);
    // Order by "distance" between the pair's members around the ring, so
    // that row j of the PGT roughly means "partner j+1 disks away".
    for dist in 1..v {
        for a in 0..v {
            let b = (a + dist) % v;
            if a < b {
                sets.push(vec![a, b]);
            }
        }
    }
    // The ring enumeration above emits each unordered pair exactly once
    // (only when a < b), but the guard is subtle — deduplicate defensively
    // and assert the count in debug builds.
    sets.sort();
    sets.dedup();
    debug_assert_eq!(sets.len(), (v as usize * (v as usize - 1)) / 2);
    Design::new(v, 2, sets, DesignSource::CompletePairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_is_exact_for_small_v() {
        for v in [2u32, 3, 4, 5, 8, 13, 32] {
            let d = complete_pairs(v);
            assert!(d.is_exact_bibd(1), "v = {v}");
            assert_eq!(d.num_sets() as u32, v * (v - 1) / 2);
            assert_eq!(d.stats().r_min, v - 1);
        }
    }

    #[test]
    fn every_pair_appears_exactly_once() {
        let d = complete_pairs(7);
        for a in 0..7 {
            for b in (a + 1)..7 {
                assert_eq!(d.lambda_of(a, b), 1, "pair ({a},{b})");
            }
        }
    }
}
