//! Greedy balanced-partition fallback for `(v, k)` pairs with no exact
//! `λ = 1` design — including the paper's own evaluation points
//! `(32, 4)`, `(32, 8)` and `(32, 16)`.
//!
//! The construction produces `r = ⌈(v−1)/(k−1)⌉` *rows*, each row a
//! partition of the objects into groups of size at most `k` (and at least
//! `⌊v/⌈v/k⌉⌋`). Two properties of exact designs are preserved exactly:
//!
//! * every object occurs in exactly `r` sets (one per row) — required for
//!   the parity group table's rectangular shape, and
//! * every set lives entirely within one row — so the declustered
//!   layout's Property 2 (row-following of consecutive blocks) holds.
//!
//! The third property — every pair co-occurring in at most one set — is
//! approximated: rows are built greedily, always grouping objects that
//! have co-occurred least so far, which empirically keeps `λ_max` at 1–2
//! for the configurations of interest. Admission control reads the
//! achieved `λ_max` from [`crate::design::DesignStats`] and budgets for it
//! exactly, so a relaxed design degrades capacity slightly instead of
//! breaking guarantees.

use super::steiner::XorShift64;
use crate::design::{Design, DesignSource};

/// Builds the balanced-partition design.
///
/// # Panics
///
/// Panics if `k < 3` or `k > v` (use the exact pair design for `k = 2`;
/// the dispatcher does).
#[must_use]
pub fn balanced_partitions(v: u32, k: u32, seed: u64) -> Design {
    assert!(k >= 3, "use the exact complete-pairs design for k = 2");
    assert!(k <= v);
    let rows = Design::ideal_replication(v, k);
    // Counting lower bound on λ_max: each object has r(k−1)-ish
    // co-occurrence slots spread over v−1 partners.
    let counting_bound = (rows * (k - 1)).div_ceil(v - 1).max(1);
    // Pigeonhole bound: with g groups per row over r rows there are g^r
    // distinct side-signatures; if fewer than v, two objects share every
    // row and λ_max ≥ r (e.g. (32, 16): 2³ = 8 < 32 ⇒ λ ≥ 3).
    let groups_per_row_u64 = u64::from(v.div_ceil(k));
    let signatures = groups_per_row_u64
        .checked_pow(rows)
        .unwrap_or(u64::MAX);
    let pigeonhole_bound = if signatures < u64::from(v) { rows } else { 1 };
    let lower_bound = counting_bound.max(pigeonhole_bound);

    let mut best: Option<(u32, u64, Design)> = None;
    for attempt in 0..12u64 {
        let d = balanced_partitions_once(v, k, seed.wrapping_add(attempt * 0x9E37_79B9));
        let st = d.stats();
        let sumsq: u64 = {
            let mut acc = 0u64;
            // recompute pair multiplicities for the tie-break metric
            let vs = v as usize;
            let mut pc = vec![0u32; vs * vs];
            for set in &d.sets {
                for (i, &a) in set.iter().enumerate() {
                    for &b in &set[i + 1..] {
                        pc[a as usize * vs + b as usize] += 1;
                    }
                }
            }
            for c in pc {
                acc += u64::from(c) * u64::from(c);
            }
            acc
        };
        let better = match &best {
            None => true,
            Some((bl, bs, _)) => (st.lambda_max, sumsq) < (*bl, *bs),
        };
        if better {
            let lmax = st.lambda_max;
            best = Some((lmax, sumsq, d));
            if lmax <= lower_bound {
                break;
            }
        }
    }
    best.expect("at least one attempt ran").2
}

fn balanced_partitions_once(v: u32, k: u32, seed: u64) -> Design {
    let rows = Design::ideal_replication(v, k);
    let vs = v as usize;
    let mut rng = XorShift64::new(seed ^ 0xFA11_BACC);
    let mut paircount = vec![0u32; vs * vs];
    let mut row_groups: Vec<Vec<Vec<u32>>> = Vec::with_capacity(rows as usize);

    let groups_per_row = v.div_ceil(k);
    // Spread sizes evenly so no group drops below 2 members.
    let base = v / groups_per_row;
    let extra = v % groups_per_row; // this many groups get base+1
    debug_assert!(base >= 2, "balanced sizing must not create singleton groups");
    debug_assert!(extra == 0 || base < k);

    for _row in 0..rows {
        let mut unassigned: Vec<u32> = (0..v).collect();
        // Shuffle for tie-breaking diversity across rows.
        for i in (1..unassigned.len()).rev() {
            let j = rng.below(i as u32 + 1) as usize;
            unassigned.swap(i, j);
        }
        let mut groups: Vec<Vec<u32>> = Vec::with_capacity(groups_per_row as usize);
        for g in 0..groups_per_row {
            let size = if g < extra { base + 1 } else { base } as usize;
            let mut group: Vec<u32> = Vec::with_capacity(size);
            // Seed the group with the unassigned object that currently has
            // the highest co-occurrence pressure (hardest to place later).
            let seed_pos = best_seed(&unassigned, &paircount, vs);
            group.push(unassigned.swap_remove(seed_pos));
            while group.len() < size {
                let pos = best_addition(&unassigned, &group, &paircount, vs);
                group.push(unassigned.swap_remove(pos));
            }
            // Commit pair counts.
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    paircount[lo as usize * vs + hi as usize] += 1;
                }
            }
            groups.push(group);
        }
        debug_assert!(unassigned.is_empty());
        row_groups.push(groups);
    }

    refine_by_swaps(&mut row_groups, &mut paircount, vs);
    let target = (rows * (k - 1)).div_ceil(v - 1).max(1);
    reduce_high_pairs(&mut row_groups, &mut paircount, vs, target, &mut rng);

    let sets = row_groups.into_iter().flatten().collect();
    Design::new(v, k, sets, DesignSource::BalancedFallback)
}

/// Second refinement stage: attack pairs whose multiplicity exceeds the
/// counting lower bound directly. For each over-covered pair, try swapping
/// one of its members against every member of the other groups in one of
/// the rows where they co-occur; accept a swap when it strictly reduces
/// `(number of pairs above target, Σ multiplicity²)` lexicographically.
fn reduce_high_pairs(
    row_groups: &mut [Vec<Vec<u32>>],
    paircount: &mut [u32],
    v: usize,
    target: u32,
    rng: &mut XorShift64,
) {
    let cell = |a: u32, b: u32| -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo as usize * v + hi as usize
    };
    // Metric deltas of swapping x (in group A) and y (in group B): pairs
    // (x, m) m∈A\{x} and (y, n) n∈B\{y} drop by one; (y, m) and (x, n)
    // rise by one.
    let swap_metrics = |paircount: &[u32], x: u32, y: u32, ga: &[u32], gb: &[u32]| -> (i64, i64) {
        let mut d_high = 0i64;
        let mut d_sq = 0i64;
        let drop = |pc: &[u32], a: u32, b: u32, dh: &mut i64, ds: &mut i64| {
            let c = i64::from(pc[cell(a, b)]);
            if c > i64::from(target) && c - 1 <= i64::from(target) {
                *dh -= 1;
            }
            *ds += (c - 1) * (c - 1) - c * c;
        };
        let raise = |pc: &[u32], a: u32, b: u32, dh: &mut i64, ds: &mut i64| {
            let c = i64::from(pc[cell(a, b)]);
            if c + 1 > i64::from(target) && c <= i64::from(target) {
                *dh += 1;
            }
            *ds += (c + 1) * (c + 1) - c * c;
        };
        for &m in ga {
            if m != x {
                drop(paircount, x, m, &mut d_high, &mut d_sq);
                raise(paircount, y, m, &mut d_high, &mut d_sq);
            }
        }
        for &n in gb {
            if n != y {
                drop(paircount, y, n, &mut d_high, &mut d_sq);
                raise(paircount, x, n, &mut d_high, &mut d_sq);
            }
        }
        (d_high, d_sq)
    };
    let apply_swap = |paircount: &mut [u32], x: u32, y: u32, ga: &[u32], gb: &[u32]| {
        for &m in ga {
            if m != x {
                paircount[cell(x, m)] -= 1;
                paircount[cell(y, m)] += 1;
            }
        }
        for &n in gb {
            if n != y {
                paircount[cell(y, n)] -= 1;
                paircount[cell(x, n)] += 1;
            }
        }
    };

    'outer: for _iter in 0..4000 {
        // Find a pair above target, starting from a random offset so we
        // do not hammer the same pair forever.
        let offset = rng.next_u64() as usize % (v * v);
        let mut high: Option<(u32, u32)> = None;
        for scan in 0..v * v {
            let idx = (offset + scan) % (v * v);
            if paircount[idx] > target {
                high = Some(((idx / v) as u32, (idx % v) as u32));
                break;
            }
        }
        let Some((a, b)) = high else {
            break; // nothing above target: done
        };
        // Pick a random row where a and b share a group.
        let co_rows: Vec<usize> = row_groups
            .iter()
            .enumerate()
            .filter(|(_, groups)| groups.iter().any(|g| g.contains(&a) && g.contains(&b)))
            .map(|(row, _)| row)
            .collect();
        if co_rows.is_empty() {
            continue;
        }
        let row = co_rows[rng.below(co_rows.len() as u32) as usize];
        let groups = &mut row_groups[row];
        let ga_idx = groups
            .iter()
            .position(|g| g.contains(&a) && g.contains(&b))
            .expect("co-occurring row");
        // Try moving a (or b) into every other group of this row.
        for &victim in &[a, b] {
            let xi = groups[ga_idx].iter().position(|&m| m == victim).expect("member");
            for gb_idx in 0..groups.len() {
                if gb_idx == ga_idx {
                    continue;
                }
                for yi in 0..groups[gb_idx].len() {
                    let y = groups[gb_idx][yi];
                    let (d_high, d_sq) =
                        swap_metrics(paircount, victim, y, &groups[ga_idx], &groups[gb_idx]);
                    if d_high < 0 || (d_high == 0 && d_sq < 0) {
                        apply_swap(paircount, victim, y, &groups[ga_idx], &groups[gb_idx]);
                        groups[ga_idx][xi] = y;
                        groups[gb_idx][yi] = victim;
                        continue 'outer;
                    }
                }
            }
        }
    }
}

/// Local improvement: repeatedly swap a pair of objects between two groups
/// of the same row when the swap lowers the sum-of-squares of pair
/// multiplicities (which penalizes λ above 1 quadratically). Preserves the
/// partition structure of each row, hence replication stays exact.
fn refine_by_swaps(row_groups: &mut [Vec<Vec<u32>>], paircount: &mut [u32], v: usize) {
    let pc = |paircount: &[u32], a: u32, b: u32| -> i64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        i64::from(paircount[lo as usize * v + hi as usize])
    };
    // Cost delta of removing (x, partner) pairs and adding (y, partner):
    // Σ((c−1)² − c²) + Σ((c'+1)² − c'²) = Σ(1 − 2c) + Σ(2c' + 1).
    let swap_delta = |paircount: &[u32], x: u32, y: u32, ga: &[u32], gb: &[u32]| -> i64 {
        let mut delta = 0i64;
        for &m in ga {
            if m != x {
                delta += 1 - 2 * pc(paircount, x, m); // remove (x, m)
                delta += 2 * pc(paircount, y, m) + 1; // add (y, m)
            }
        }
        for &m in gb {
            if m != y {
                delta += 1 - 2 * pc(paircount, y, m);
                delta += 2 * pc(paircount, x, m) + 1;
            }
        }
        delta
    };
    let apply = |paircount: &mut [u32], x: u32, sign_remove: bool, group: &[u32], skip: u32| {
        for &m in group {
            if m != skip {
                let (lo, hi) = if x < m { (x, m) } else { (m, x) };
                let cell = &mut paircount[lo as usize * v + hi as usize];
                if sign_remove {
                    *cell -= 1;
                } else {
                    *cell += 1;
                }
            }
        }
    };

    for _pass in 0..64 {
        let mut improved = false;
        for groups in row_groups.iter_mut() {
            for ga_idx in 0..groups.len() {
                for gb_idx in (ga_idx + 1)..groups.len() {
                    let mut xi = 0;
                    while xi < groups[ga_idx].len() {
                        let mut yi = 0;
                        let mut swapped = false;
                        while yi < groups[gb_idx].len() {
                            let x = groups[ga_idx][xi];
                            let y = groups[gb_idx][yi];
                            if swap_delta(paircount, x, y, &groups[ga_idx], &groups[gb_idx]) < 0 {
                                // Un-count x's and y's pairs, swap, re-count.
                                apply(paircount, x, true, &groups[ga_idx], x);
                                apply(paircount, y, true, &groups[gb_idx], y);
                                groups[ga_idx][xi] = y;
                                groups[gb_idx][yi] = x;
                                apply(paircount, y, false, &groups[ga_idx], y);
                                apply(paircount, x, false, &groups[gb_idx], x);
                                improved = true;
                                swapped = true;
                                break;
                            }
                            yi += 1;
                        }
                        if !swapped {
                            xi += 1;
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Index of the unassigned object with the largest accumulated pair count
/// (it constrains future choices most, so place it first).
fn best_seed(unassigned: &[u32], paircount: &[u32], v: usize) -> usize {
    let weight = |x: u32| -> u64 {
        (0..v as u32)
            .map(|y| {
                let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                u64::from(paircount[lo as usize * v + hi as usize])
            })
            .sum()
    };
    unassigned
        .iter()
        .enumerate()
        .max_by_key(|&(_, &x)| weight(x))
        .map(|(i, _)| i)
        .expect("unassigned must be non-empty")
}

/// Index of the unassigned object with the least co-occurrence with the
/// current group (ties broken by the earlier position, which is already
/// shuffled).
fn best_addition(unassigned: &[u32], group: &[u32], paircount: &[u32], v: usize) -> usize {
    let cost = |x: u32| -> (u32, u32) {
        let mut sum = 0;
        let mut max = 0;
        for &g in group {
            let (lo, hi) = if x < g { (x, g) } else { (g, x) };
            let c = paircount[lo as usize * v + hi as usize];
            sum += c;
            max = max.max(c);
        }
        (max, sum) // minimize the worst pair first, then the total
    };
    unassigned
        .iter()
        .enumerate()
        .min_by_key(|&(_, &x)| cost(x))
        .map(|(i, _)| i)
        .expect("unassigned must be non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_have_equal_replication() {
        for (v, k) in [(32u32, 4u32), (32, 8), (32, 16)] {
            let d = balanced_partitions(v, k, 1);
            let st = d.stats();
            assert!(st.equal_replication(), "(v={v}, k={k}): {st:?}");
            assert_eq!(st.r_min, Design::ideal_replication(v, k));
        }
    }

    #[test]
    fn rows_partition_the_objects() {
        let (v, k) = (32u32, 8u32);
        let d = balanced_partitions(v, k, 3);
        let groups_per_row = v.div_ceil(k) as usize;
        for row in d.sets.chunks(groups_per_row) {
            let mut seen = vec![false; v as usize];
            for set in row {
                for &x in set {
                    assert!(!seen[x as usize], "row repeats object {x}");
                    seen[x as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "row must cover all objects");
        }
    }

    #[test]
    fn lambda_stays_small_for_paper_configs() {
        // The whole point of declustering: pair multiplicity near 1. The
        // counting lower bound is ceil(r(k−1)/(v−1)); the greedy + swap
        // optimizer is allowed one above it.
        for (v, k) in [(32u32, 4u32), (32, 8), (32, 16)] {
            let d = balanced_partitions(v, k, 1);
            let st = d.stats();
            let r = Design::ideal_replication(v, k);
            let bound = (r * (k - 1)).div_ceil(v - 1).max(1) + 1;
            assert!(
                st.lambda_max <= bound,
                "(v={v}, k={k}) λ_max = {} > {bound}",
                st.lambda_max
            );
        }
    }

    #[test]
    fn group_sizes_are_bounded() {
        let d = balanced_partitions(30, 7, 5); // 7 ∤ 30: uneven sizes
        for set in &d.sets {
            assert!(set.len() >= 2);
            assert!(set.len() <= 7);
        }
        assert!(d.stats().equal_replication());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(balanced_partitions(32, 8, 9), balanced_partitions(32, 8, 9));
        assert_ne!(balanced_partitions(32, 8, 9), balanced_partitions(32, 8, 10));
    }

    #[test]
    fn works_for_odd_awkward_sizes() {
        for (v, k) in [(10u32, 3u32), (11, 4), (17, 5), (23, 7), (32, 31)] {
            let d = balanced_partitions(v, k, 2);
            assert!(d.stats().equal_replication(), "(v={v},k={k})");
        }
    }

    #[test]
    #[should_panic(expected = "complete-pairs")]
    fn k2_is_rejected() {
        let _ = balanced_partitions(9, 2, 0);
    }
}
