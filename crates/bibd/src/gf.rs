//! Small finite fields `GF(p^m)`.
//!
//! Affine and projective plane constructions need arithmetic over a finite
//! field of the plane's order. Orders here are tiny (the plane order is
//! the parity group size, so ≤ 64 in any realistic server), which lets us
//! build the field eagerly: elements are represented as polynomials over
//! `GF(p)` packed into a `u32` index, and full addition/multiplication
//! tables are materialized at construction time. Irreducible polynomials
//! are found by exhaustive search — instantaneous at these sizes.

/// A finite field `GF(p^m)` with precomputed operation tables.
///
/// Elements are `0..q` where `q = p^m`; element `e` encodes the polynomial
/// `c_0 + c_1·x + …` with `c_i = (e / p^i) % p`. Element `0` is the
/// additive identity and element `1` the multiplicative identity.
#[derive(Debug, Clone)]
pub struct Gf {
    /// Field characteristic (prime).
    p: u32,
    /// Extension degree.
    m: u32,
    /// Field order `q = p^m`.
    q: u32,
    add: Vec<u32>,
    mul: Vec<u32>,
    inv: Vec<u32>,
}

/// Is `n` a prime number?
#[must_use]
pub fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Decomposes `q` as `p^m` with `p` prime, if possible.
#[must_use]
pub fn prime_power(q: u32) -> Option<(u32, u32)> {
    if q < 2 {
        return None;
    }
    let mut p = 2;
    while p * p <= q {
        if q.is_multiple_of(p) {
            let mut n = q;
            let mut m = 0;
            while n.is_multiple_of(p) {
                n /= p;
                m += 1;
            }
            return (n == 1).then_some((p, m));
        }
        p += 1;
    }
    Some((q, 1))
}

impl Gf {
    /// Constructs `GF(q)` for a prime power `q`.
    ///
    /// Returns `None` if `q` is not a prime power or exceeds the supported
    /// bound (4096 — far beyond any plane order a CM server needs).
    #[must_use]
    pub fn new(q: u32) -> Option<Self> {
        if q > 4096 {
            return None;
        }
        let (p, m) = prime_power(q)?;
        let irreducible = find_irreducible(p, m);
        let qs = q as usize;
        let mut add = vec![0u32; qs * qs];
        let mut mul = vec![0u32; qs * qs];
        for a in 0..q {
            for b in 0..q {
                add[(a as usize) * qs + b as usize] = poly_add(a, b, p, m);
                mul[(a as usize) * qs + b as usize] = poly_mul_mod(a, b, p, m, &irreducible);
            }
        }
        let mut inv = vec![0u32; qs];
        for a in 1..q {
            for b in 1..q {
                if mul[(a as usize) * qs + b as usize] == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
            debug_assert_ne!(inv[a as usize], 0, "every nonzero element must have an inverse");
        }
        Some(Gf { p, m, q, add, mul, inv })
    }

    /// Field order `q`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.q
    }

    /// Field characteristic `p`.
    #[must_use]
    pub fn characteristic(&self) -> u32 {
        self.p
    }

    /// Extension degree `m` (so `q = p^m`).
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        self.add[(a as usize) * self.q as usize + b as usize]
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        self.mul[(a as usize) * self.q as usize + b as usize]
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self, a: u32) -> u32 {
        // Search-free: -a is the unique b with a + b = 0; for packed
        // base-p digits, negate each digit.
        let mut result = 0;
        let mut pow = 1;
        let mut x = a;
        for _ in 0..self.m {
            let digit = x % self.p;
            let neg = if digit == 0 { 0 } else { self.p - digit };
            result += neg * pow;
            pow *= self.p;
            x /= self.p;
        }
        result
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        self.add(a, self.neg(b))
    }

    /// Multiplicative inverse of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[must_use]
    pub fn invert(&self, a: u32) -> u32 {
        assert_ne!(a, 0, "zero has no multiplicative inverse");
        self.inv[a as usize]
    }

    /// `a·x + b` — the affine evaluation used by plane constructions.
    #[must_use]
    pub fn mul_add(&self, a: u32, x: u32, b: u32) -> u32 {
        self.add(self.mul(a, x), b)
    }
}

/// Digit-wise (coefficient-wise) addition of packed polynomials over GF(p).
fn poly_add(a: u32, b: u32, p: u32, m: u32) -> u32 {
    let mut result = 0;
    let mut pow = 1;
    let (mut x, mut y) = (a, b);
    for _ in 0..m {
        result += ((x % p + y % p) % p) * pow;
        pow *= p;
        x /= p;
        y /= p;
    }
    result
}

/// Multiplies packed polynomials and reduces modulo the irreducible
/// polynomial (given as coefficient vector of degree `m`, monic).
fn poly_mul_mod(a: u32, b: u32, p: u32, m: u32, irreducible: &[u32]) -> u32 {
    let deg = m as usize;
    let to_coeffs = |mut e: u32| {
        let mut c = vec![0u32; deg];
        for coeff in c.iter_mut() {
            *coeff = e % p;
            e /= p;
        }
        c
    };
    let ca = to_coeffs(a);
    let cb = to_coeffs(b);
    // Schoolbook product, degree up to 2m−2.
    let mut prod = vec![0u32; 2 * deg];
    for (i, &x) in ca.iter().enumerate() {
        for (j, &y) in cb.iter().enumerate() {
            prod[i + j] = (prod[i + j] + x * y) % p;
        }
    }
    // Reduce: x^m ≡ −(irreducible without leading term).
    for i in (deg..2 * deg).rev() {
        let coeff = prod[i];
        if coeff == 0 {
            continue;
        }
        prod[i] = 0;
        for j in 0..deg {
            let sub = (coeff * irreducible[j]) % p;
            prod[i - deg + j] = (prod[i - deg + j] + p - sub % p) % p;
        }
    }
    let mut result = 0;
    let mut pow = 1;
    for &c in prod.iter().take(deg) {
        result += c * pow;
        pow *= p;
    }
    result
}

/// Finds a monic irreducible polynomial of degree `m` over GF(p), returned
/// as its low coefficients `c_0..c_{m-1}` (the leading coefficient is 1).
fn find_irreducible(p: u32, m: u32) -> Vec<u32> {
    if m == 1 {
        // GF(p) itself: reduction is plain mod p; x ≡ 0 means c_0 = 0.
        return vec![0];
    }
    let deg = m as usize;
    let total: u64 = (u64::from(p)).pow(m);
    for packed in 0..total {
        let mut coeffs = vec![0u32; deg];
        let mut e = packed;
        for c in coeffs.iter_mut() {
            *c = (e % u64::from(p)) as u32;
            e /= u64::from(p);
        }
        if is_irreducible(&coeffs, p) {
            return coeffs;
        }
    }
    unreachable!("irreducible polynomials of every degree exist over every GF(p)")
}

/// Tests whether the monic polynomial `x^m + Σ c_i x^i` is irreducible over
/// GF(p) by exhaustive trial division with all monic polynomials of degree
/// `1..=m/2`.
fn is_irreducible(low_coeffs: &[u32], p: u32) -> bool {
    let m = low_coeffs.len();
    let mut full = low_coeffs.to_vec();
    full.push(1); // monic leading term
    for dd in 1..=(m / 2) {
        let count = (u64::from(p)).pow(dd as u32);
        for packed in 0..count {
            let mut divisor = vec![0u32; dd + 1];
            let mut e = packed;
            for c in divisor.iter_mut().take(dd) {
                *c = (e % u64::from(p)) as u32;
                e /= u64::from(p);
            }
            divisor[dd] = 1; // monic
            if poly_divides(&divisor, &full, p) {
                return false;
            }
        }
    }
    true
}

/// Does `divisor` divide `poly` exactly over GF(p)? Both monic.
fn poly_divides(divisor: &[u32], poly: &[u32], p: u32) -> bool {
    let mut rem = poly.to_vec();
    let dd = divisor.len() - 1;
    while rem.len() > dd {
        let lead = *rem.last().expect("non-empty");
        let shift = rem.len() - 1 - dd;
        if lead != 0 {
            for (i, &c) in divisor.iter().enumerate() {
                let idx = shift + i;
                rem[idx] = (rem[idx] + p - (lead * c) % p) % p;
            }
        }
        rem.pop();
    }
    rem.iter().all(|&c| c == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_detection() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(31));
        assert!(!is_prime(1));
        assert!(!is_prime(32));
        assert!(!is_prime(49 * 2));
    }

    #[test]
    fn prime_power_decomposition() {
        assert_eq!(prime_power(8), Some((2, 3)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(7), Some((7, 1)));
        assert_eq!(prime_power(32), Some((2, 5)));
        assert_eq!(prime_power(12), None);
        assert_eq!(prime_power(1), None);
    }

    /// Exhaustive field-axiom check for one order.
    fn check_field_axioms(q: u32) {
        let f = Gf::new(q).unwrap_or_else(|| panic!("GF({q}) must exist"));
        assert_eq!(f.order(), q);
        for a in 0..q {
            // identities
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
            // additive inverse
            assert_eq!(f.add(a, f.neg(a)), 0);
            if a != 0 {
                assert_eq!(f.mul(a, f.invert(a)), 1, "inverse of {a} in GF({q})");
            }
            for b in 0..q {
                // commutativity
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..q {
                    // associativity & distributivity
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn gf2_gf3_gf5_are_fields() {
        check_field_axioms(2);
        check_field_axioms(3);
        check_field_axioms(5);
    }

    #[test]
    fn gf4_gf8_are_fields() {
        check_field_axioms(4);
        check_field_axioms(8);
    }

    #[test]
    fn gf9_is_a_field() {
        check_field_axioms(9);
    }

    #[test]
    fn gf16_has_correct_structure() {
        let f = Gf::new(16).unwrap();
        assert_eq!(f.characteristic(), 2);
        assert_eq!(f.degree(), 4);
        // In characteristic 2, every element is its own additive inverse.
        for a in 0..16 {
            assert_eq!(f.add(a, a), 0);
            assert_eq!(f.neg(a), a);
        }
        // The multiplicative group has order 15: a^15 = 1 for a != 0.
        for a in 1..16 {
            let mut acc = 1;
            for _ in 0..15 {
                acc = f.mul(acc, a);
            }
            assert_eq!(acc, 1, "a = {a}");
        }
    }

    #[test]
    fn non_prime_power_is_rejected() {
        assert!(Gf::new(6).is_none());
        assert!(Gf::new(12).is_none());
        assert!(Gf::new(0).is_none());
        assert!(Gf::new(1).is_none());
    }

    #[test]
    fn sub_is_add_neg() {
        let f = Gf::new(9).unwrap();
        for a in 0..9 {
            for b in 0..9 {
                assert_eq!(f.add(f.sub(a, b), b), a);
            }
        }
    }

    #[test]
    fn mul_add_matches_components() {
        let f = Gf::new(8).unwrap();
        for a in 0..8 {
            for x in 0..8 {
                for b in 0..8 {
                    assert_eq!(f.mul_add(a, x, b), f.add(f.mul(a, x), b));
                }
            }
        }
    }
}
