//! # cms-bibd — balanced incomplete block designs and the parity group table
//!
//! Section 4.1 of the paper determines the declustered-parity layout from a
//! *balanced incomplete block design* (BIBD): an arrangement of `v` objects
//! (disks) into `s` sets of exactly `k` objects (parity-group stencils)
//! such that each object occurs in exactly `r` sets and every pair of
//! objects co-occurs in exactly `λ` sets. For `λ = 1` the two counting
//! identities `r·(k−1) = λ·(v−1)` and `s·k = v·r` pin down `r` and `s`.
//!
//! The paper defers to Hall's 1986 tables for concrete designs. This crate
//! replaces the tables with *constructions*:
//!
//! * the trivial design `k = v` (one set containing every disk),
//! * the complete pair design for `k = 2` (λ = 1, r = v−1),
//! * Steiner triple systems for `k = 3` (Bose's construction for
//!   `v ≡ 3 (mod 6)`, Stinson's hill-climbing algorithm for any admissible
//!   `v`),
//! * affine planes `AG(2, q)` over finite fields (`v = q²`, `k = q`),
//! * projective planes `PG(2, q)` (`v = q² + q + 1`, `k = q + 1`),
//! * and, because exact `λ = 1` designs do not exist for most `(v, k)` —
//!   including the paper's own `d = 32`, `p ∈ {4, 8, 16}` evaluation
//!   points — a greedy *balanced-partition fallback* that keeps the
//!   replication exact and drives the pair imbalance (`λ_max`) as close to
//!   the ideal as possible.
//!
//! [`Pgt`] then rewrites any equal-replication design into the paper's
//! *parity group table* — `r` rows by `v` columns, column `i` listing the
//! sets containing disk `i` — which is the structure the layout and
//! admission crates actually consume.
//!
//! ```
//! use cms_bibd::{best_design, DesignRequest, Pgt};
//!
//! // An exact (7, 3, 1) design — the paper's Example 1 dimensions.
//! let design = best_design(DesignRequest::new(7, 3)).unwrap();
//! assert!(design.is_exact_bibd(1));
//!
//! let pgt = Pgt::new(&design);
//! assert_eq!((pgt.rows(), pgt.disks()), (3, 7));
//! // Disk block 5 of disk 2 maps to the set in row 5 mod 3 = 2.
//! let set = pgt.set_of_block(2, 5);
//! assert!(pgt.members(set).contains(&2));
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod construct;
pub mod design;
pub mod gf;
pub mod pgt;

pub use construct::{best_design, DesignRequest};
pub use design::{Design, DesignSource, DesignStats};
pub use gf::Gf;
pub use pgt::{Pgt, SetId};
