//! The [`Design`] type: a family of sets over `v` objects, with exact
//! verification of the BIBD axioms and balance statistics for relaxed
//! designs.

use std::fmt;

/// Which construction produced a design. Recorded so layouts and reports
/// can state whether the declustering is exact (`λ = 1`) or a balanced
/// approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignSource {
    /// `k = v`: the single set containing every object (plain RAID-5
    /// cluster spanning the array).
    Trivial,
    /// Complete pair design, `k = 2`.
    CompletePairs,
    /// Bose's Steiner-triple construction, `v ≡ 3 (mod 6)`.
    BoseSteiner,
    /// Stinson hill-climbing Steiner triple system, `v ≡ 1, 3 (mod 6)`.
    StinsonSteiner,
    /// Affine plane `AG(2, q)`, `v = q²`, `k = q`.
    AffinePlane,
    /// Projective plane `PG(2, q)`, `v = q² + q + 1`, `k = q + 1`.
    ProjectivePlane,
    /// Greedy balanced-partition fallback (relaxed λ).
    BalancedFallback,
}

impl fmt::Display for DesignSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DesignSource::Trivial => "trivial (k = v)",
            DesignSource::CompletePairs => "complete pairs",
            DesignSource::BoseSteiner => "Bose Steiner triple system",
            DesignSource::StinsonSteiner => "Stinson Steiner triple system",
            DesignSource::AffinePlane => "affine plane",
            DesignSource::ProjectivePlane => "projective plane",
            DesignSource::BalancedFallback => "balanced-partition fallback",
        };
        f.write_str(s)
    }
}

/// Balance statistics of a design: replication counts and pair
/// co-occurrence multiplicities. For an exact BIBD the replication is the
/// same for all objects and `λ_min = λ_max`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignStats {
    /// Minimum number of sets any object occurs in.
    pub r_min: u32,
    /// Maximum number of sets any object occurs in.
    pub r_max: u32,
    /// Minimum pair co-occurrence count over all object pairs.
    pub lambda_min: u32,
    /// Maximum pair co-occurrence count over all object pairs.
    pub lambda_max: u32,
}

impl DesignStats {
    /// `true` when every object occurs in the same number of sets — the
    /// precondition for building a parity group table.
    #[must_use]
    pub fn equal_replication(&self) -> bool {
        self.r_min == self.r_max
    }

    /// `true` when the design satisfies the exact BIBD pair axiom with
    /// `λ = lambda_max = lambda_min`.
    #[must_use]
    pub fn exact_lambda(&self) -> bool {
        self.lambda_min == self.lambda_max
    }
}

/// A family of sets (the BIBD's "blocks"; the paper calls them *sets* to
/// avoid clashing with disk blocks, and so do we) over objects
/// `0..v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// Number of objects (disks) `v`.
    pub v: u32,
    /// Set size `k` (the parity group size `p`).
    pub k: u32,
    /// The sets; each inner vector is sorted and has length `k` (the
    /// fallback construction may produce a few shorter sets when `k ∤ v`,
    /// see [`Design::min_set_len`]).
    pub sets: Vec<Vec<u32>>,
    /// Construction provenance.
    pub source: DesignSource,
}

impl Design {
    /// Builds a design after normalizing (sorting) each set and validating
    /// membership bounds.
    ///
    /// # Panics
    ///
    /// Panics if a set references an object `>= v`, contains duplicates,
    /// has fewer than 2 or more than `k` members, or `v == 0`. These are
    /// programmer errors in a construction, not runtime conditions.
    #[must_use]
    pub fn new(v: u32, k: u32, mut sets: Vec<Vec<u32>>, source: DesignSource) -> Self {
        assert!(v >= 2, "need at least two objects");
        assert!((2..=v).contains(&k), "need 2 <= k <= v");
        for set in &mut sets {
            set.sort_unstable();
            assert!(set.len() >= 2, "sets must have at least 2 members");
            assert!(set.len() <= k as usize, "sets must have at most k members");
            assert!(set.windows(2).all(|w| w[0] < w[1]), "duplicate member in set");
            assert!(*set.last().expect("non-empty") < v, "member out of range");
        }
        Design { v, k, sets, source }
    }

    /// Number of sets `s`.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Length of the shortest set (equal to `k` for every exact
    /// construction; possibly smaller for the fallback when `k ∤ v`).
    #[must_use]
    pub fn min_set_len(&self) -> usize {
        self.sets.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// The ideal replication `r = λ(v−1)/(k−1)` for λ = 1, rounded up —
    /// what an exact design would give.
    #[must_use]
    pub fn ideal_replication(v: u32, k: u32) -> u32 {
        (v - 1).div_ceil(k - 1)
    }

    /// Does an exact `λ = 1` BIBD's arithmetic work out for `(v, k)`?
    /// Necessary (not sufficient) conditions: `(k−1) | (v−1)` and
    /// `k(k−1) | v(v−1)`.
    #[must_use]
    pub fn lambda1_admissible(v: u32, k: u32) -> bool {
        let v = u64::from(v);
        let k = u64::from(k);
        (v - 1) % (k - 1) == 0 && (v * (v - 1)) % (k * (k - 1)) == 0
    }

    /// Computes replication and pair-multiplicity statistics.
    #[must_use]
    pub fn stats(&self) -> DesignStats {
        let v = self.v as usize;
        let mut repl = vec![0u32; v];
        let mut pairs = vec![0u32; v * v];
        for set in &self.sets {
            for (a_pos, &a) in set.iter().enumerate() {
                repl[a as usize] += 1;
                for &b in &set[a_pos + 1..] {
                    pairs[a as usize * v + b as usize] += 1;
                }
            }
        }
        let (r_min, r_max) = (
            *repl.iter().min().expect("v >= 2"),
            *repl.iter().max().expect("v >= 2"),
        );
        let mut lambda_min = u32::MAX;
        let mut lambda_max = 0;
        for a in 0..v {
            for b in (a + 1)..v {
                let l = pairs[a * v + b];
                lambda_min = lambda_min.min(l);
                lambda_max = lambda_max.max(l);
            }
        }
        DesignStats { r_min, r_max, lambda_min, lambda_max }
    }

    /// Pair co-occurrence count for a specific pair of objects.
    #[must_use]
    pub fn lambda_of(&self, a: u32, b: u32) -> u32 {
        self.sets
            .iter()
            .filter(|s| s.binary_search(&a).is_ok() && s.binary_search(&b).is_ok())
            .count() as u32
    }

    /// Full BIBD verification for given `λ`: every set has exactly `k`
    /// members, every object occurs in exactly `r = λ(v−1)/(k−1)` sets,
    /// every pair occurs in exactly `λ` sets, and `s·k = v·r`.
    #[must_use]
    pub fn is_exact_bibd(&self, lambda: u32) -> bool {
        if self.sets.iter().any(|s| s.len() != self.k as usize) {
            return false;
        }
        if !(self.v - 1).is_multiple_of(self.k - 1) {
            return false;
        }
        let r = lambda * (self.v - 1) / (self.k - 1);
        let stats = self.stats();
        stats.r_min == r
            && stats.r_max == r
            && stats.lambda_min == lambda
            && stats.lambda_max == lambda
            && self.num_sets() as u64 * u64::from(self.k) == u64::from(self.v) * u64::from(r)
    }

    /// The sets containing object `obj`, as indices into [`Design::sets`].
    #[must_use]
    pub fn sets_containing(&self, obj: u32) -> Vec<usize> {
        self.sets
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.binary_search(&obj).is_ok().then_some(i))
            .collect()
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.stats();
        write!(
            f,
            "design v={} k={} s={} r={}..{} λ={}..{} [{}]",
            self.v,
            self.k,
            self.num_sets(),
            st.r_min,
            st.r_max,
            st.lambda_min,
            st.lambda_max,
            self.source
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 1: the Fano-plane-like (7, 3, 1) design.
    pub(crate) fn example1() -> Design {
        Design::new(
            7,
            3,
            vec![
                vec![0, 1, 3],
                vec![1, 2, 4],
                vec![2, 3, 5],
                vec![3, 4, 6],
                vec![4, 5, 0],
                vec![5, 6, 1],
                vec![6, 0, 2],
            ],
            DesignSource::ProjectivePlane,
        )
    }

    #[test]
    fn example1_is_exact_7_3_1() {
        let d = example1();
        assert!(d.is_exact_bibd(1));
        let st = d.stats();
        assert_eq!(st.r_min, 3);
        assert_eq!(st.r_max, 3);
        assert_eq!(st.lambda_min, 1);
        assert_eq!(st.lambda_max, 1);
        assert_eq!(d.num_sets(), 7);
    }

    #[test]
    fn example1_counting_identities() {
        // r(k−1) = λ(v−1) → 3·2 = 1·6; s·k = v·r → 7·3 = 7·3.
        let d = example1();
        assert_eq!(3 * (d.k - 1), d.v - 1);
        assert_eq!(d.num_sets() as u32 * d.k, d.v * 3);
    }

    #[test]
    fn lambda_of_specific_pairs() {
        let d = example1();
        assert_eq!(d.lambda_of(0, 1), 1);
        assert_eq!(d.lambda_of(3, 4), 1);
        assert_eq!(d.lambda_of(0, 5), 1);
    }

    #[test]
    fn sets_containing_matches_paper_pgt_columns() {
        let d = example1();
        // Column 0 of the paper's PGT: S0, S4, S6.
        assert_eq!(d.sets_containing(0), vec![0, 4, 6]);
        // Column 3: S0, S2, S3.
        assert_eq!(d.sets_containing(3), vec![0, 2, 3]);
    }

    #[test]
    fn broken_designs_fail_verification() {
        // Drop one set: replication becomes unequal.
        let mut d = example1();
        d.sets.pop();
        assert!(!d.is_exact_bibd(1));
        assert!(!d.stats().equal_replication());
    }

    #[test]
    fn lambda1_admissibility_arithmetic() {
        assert!(Design::lambda1_admissible(7, 3));
        assert!(Design::lambda1_admissible(9, 3));
        assert!(Design::lambda1_admissible(13, 4));
        assert!(Design::lambda1_admissible(16, 4)); // affine plane AG(2,4)
        assert!(!Design::lambda1_admissible(32, 4)); // 31 not divisible by 3
        assert!(!Design::lambda1_admissible(32, 8));
        assert!(!Design::lambda1_admissible(32, 16));
        assert!(Design::lambda1_admissible(32, 2)); // pairs always work
    }

    #[test]
    fn ideal_replication_rounds_up() {
        assert_eq!(Design::ideal_replication(7, 3), 3);
        assert_eq!(Design::ideal_replication(32, 4), 11); // ceil(31/3)
        assert_eq!(Design::ideal_replication(32, 8), 5); // ceil(31/7)
        assert_eq!(Design::ideal_replication(32, 16), 3); // ceil(31/15)
        assert_eq!(Design::ideal_replication(32, 32), 1);
    }

    #[test]
    #[should_panic(expected = "member out of range")]
    fn out_of_range_member_panics() {
        let _ = Design::new(4, 2, vec![vec![0, 7]], DesignSource::CompletePairs);
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_member_panics() {
        let _ = Design::new(4, 3, vec![vec![1, 1, 2]], DesignSource::Trivial);
    }

    #[test]
    fn display_summarizes() {
        let s = example1().to_string();
        assert!(s.contains("v=7"), "{s}");
        assert!(s.contains("λ=1..1"), "{s}");
    }
}
