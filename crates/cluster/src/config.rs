//! Cluster configuration: the gateway's knobs plus a per-node engine
//! template.

use cms_core::CmsError;
use cms_fault::FaultSchedule;
use cms_sim::SimConfig;
use cms_trace::TraceSpec;

/// Full configuration of one cluster run.
///
/// The `node` field is a **template**: every node gets a clone of it
/// with its catalog sized by the placement map, a node-specific seed,
/// one service thread (cluster parallelism happens at the node level)
/// and tracing off (the gateway owns the cluster trace). The template
/// must therefore be *quiet* — no workload of its own, no disk-level
/// fault schedule — and [`ClusterConfig::validate`] enforces exactly
/// that.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of server nodes `N`.
    pub nodes: u32,
    /// Replication degree `r`: each cluster clip is stored on `r`
    /// distinct nodes.
    pub replication: u32,
    /// Cluster catalog size `K` (the gateway routes over these; each
    /// node stores its placement-assigned subset).
    pub catalog_clips: u64,
    /// Per-node engine template (scheme, geometry, budgets). Its
    /// `catalog_clips`, `seed`, `threads`, `rounds` and `trace` fields
    /// are overridden per node.
    pub node: SimConfig,
    /// Mean Poisson arrivals per round at the gateway.
    pub arrival_rate: f64,
    /// Zipf exponent for clip choice; 0 = uniform.
    pub zipf_theta: f64,
    /// Cluster rounds to simulate.
    pub rounds: u64,
    /// Blocks per round shipped to a rebuilding node by its peers.
    pub rebuild_rate: u32,
    /// How many source replicas share one round's rebuild shipment.
    pub rebuild_fanout: u32,
    /// Node-scoped fault schedule (`fail-node` / `repair-node` only).
    pub faults: Option<FaultSchedule>,
    /// RNG seed: placement permutation, gateway arrivals, clip choice
    /// and the per-node engine seeds all derive from it.
    pub seed: u64,
    /// Worker threads for the node-stepping phase. `0` uses available
    /// parallelism; results are bit-identical at any setting.
    pub threads: usize,
    /// Gateway event tracing (node events, migrations, rebuild reads,
    /// cluster arrivals/refusals). Node engines never trace.
    pub trace: TraceSpec,
}

impl ClusterConfig {
    /// Sets the node-stepping worker count (a wall-clock knob only).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a node-scoped fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the gateway tracing mode.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }

    /// Validates structural requirements.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for degenerate cluster
    /// shapes, a noisy node template, or a fault schedule that is not
    /// purely node-scoped.
    pub fn validate(&self) -> Result<(), CmsError> {
        if self.nodes < 2 {
            return Err(CmsError::invalid_params("a cluster needs at least 2 nodes"));
        }
        if self.replication == 0 || self.replication > self.nodes {
            return Err(CmsError::invalid_params("replication must be in 1..=nodes"));
        }
        if self.catalog_clips == 0 {
            return Err(CmsError::invalid_params("cluster catalog must be non-empty"));
        }
        if self.catalog_clips * u64::from(self.replication) < u64::from(self.nodes) {
            return Err(CmsError::invalid_params(
                "catalog_clips * replication must be >= nodes so every node stores a clip",
            ));
        }
        if self.rounds == 0 {
            return Err(CmsError::invalid_params("cluster duration must be >= 1 round"));
        }
        if self.arrival_rate < 0.0 || !self.arrival_rate.is_finite() {
            return Err(CmsError::invalid_params("arrival rate must be finite and >= 0"));
        }
        if self.rebuild_rate == 0 || self.rebuild_fanout == 0 {
            return Err(CmsError::invalid_params(
                "rebuild_rate and rebuild_fanout must be >= 1",
            ));
        }
        // The node template must be quiet: the gateway is the only
        // source of arrivals and faults, and replica consistency needs
        // uniform clip lengths across nodes.
        if self.node.arrival_rate != 0.0 {
            return Err(CmsError::invalid_params(
                "node template must have arrival_rate = 0 (the gateway generates all arrivals)",
            ));
        }
        if self.node.faults.is_some() || self.node.failure.is_some() {
            return Err(CmsError::invalid_params(
                "node template must not carry disk-level faults; use the cluster schedule",
            ));
        }
        if self.node.clip_len_spread != 0 {
            return Err(CmsError::invalid_params(
                "node template needs clip_len_spread = 0 so replicas agree on clip lengths",
            ));
        }
        // Validate the template geometry with a stand-in catalog (the
        // real per-node catalogs come from the placement map).
        let mut probe = self.node.clone();
        probe.catalog_clips = 1;
        probe.rounds = self.rounds;
        probe.validate()?;
        if let Some(faults) = &self.faults {
            faults.validate_cluster(self.nodes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::Scheme;
    use cms_fault::FaultSchedule;

    fn node_template() -> SimConfig {
        let mut node = SimConfig::sigmod96(
            Scheme::DeclusteredParity,
            &cms_model::CapacityPoint {
                scheme: Scheme::DeclusteredParity,
                p: 4,
                m: 1,
                block_bytes: 1 << 20,
                q: 8,
                f: 2,
                r: 1,
                total_clips: 64,
            },
            8,
        );
        node.arrival_rate = 0.0;
        node.catalog_clips = 16;
        node.clip_len = 20;
        node
    }

    fn base() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            catalog_clips: 16,
            node: node_template(),
            arrival_rate: 6.0,
            zipf_theta: 0.0,
            rounds: 40,
            rebuild_rate: 16,
            rebuild_fanout: 2,
            faults: None,
            seed: 42,
            threads: 1,
            trace: TraceSpec::off(),
        }
    }

    #[test]
    fn base_validates() {
        base().validate().unwrap();
    }

    #[test]
    fn rejects_degenerate_shapes() {
        let mut c = base();
        c.nodes = 1;
        assert!(c.validate().is_err());

        let mut c = base();
        c.replication = 5;
        assert!(c.validate().is_err());

        let mut c = base();
        c.catalog_clips = 1;
        assert!(c.validate().is_err(), "1 clip * r=2 < 4 nodes leaves empty nodes");

        let mut c = base();
        c.rebuild_rate = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_noisy_node_templates() {
        let mut c = base();
        c.node.arrival_rate = 5.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.node.faults = Some(FaultSchedule::parse("@5 fail 0\n").unwrap());
        assert!(c.validate().is_err());

        let mut c = base();
        c.node.clip_len_spread = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_schedule_must_be_node_scoped_and_in_range() {
        let mut c = base();
        c.faults = Some(FaultSchedule::parse("@10 fail-node 2\n@30 repair-node 2\n").unwrap());
        c.validate().unwrap();

        let mut c = base();
        c.faults = Some(FaultSchedule::parse("@10 fail 2\n").unwrap());
        assert!(c.validate().is_err(), "disk-scoped events are rejected");

        let mut c = base();
        c.faults = Some(FaultSchedule::parse("@10 fail-node 9\n").unwrap());
        assert!(c.validate().is_err(), "node 9 outside a 4-node cluster");
    }
}
