//! # cms-cluster — the cluster-of-servers tier
//!
//! The paper's fault-tolerant schemes (§4–§7) harden **one** d-disk
//! array. A deployment serves millions of streams from **many** such
//! arrays behind a gateway, and that composition is its own
//! fault-tolerance problem: which nodes hold which clips, where a
//! request is admitted, and what happens when a *whole node* — not a
//! disk — goes dark.
//!
//! This crate composes `N` independent [`cms_sim::Simulator`] instances
//! (each a complete engine: scheme + layout + admission + disks) behind
//! a deterministic gateway:
//!
//! * **Placement** ([`Placement`]): every cluster clip is replicated on
//!   `r` of the `N` nodes via a seeded node permutation striped
//!   round-robin — exactly balanced, O(1) to query, and invertible, so
//!   the model crate can check the catalog bound in closed form.
//! * **Routing + cluster admission** ([`ClusterSim`]): arrivals are
//!   generated at the gateway (Poisson × uniform/Zipf over the cluster
//!   catalog) and routed to the least-loaded surviving replica. Per-node
//!   capacities roll up to a cluster cap; while nodes are dark or
//!   lending bandwidth to a rebuild, the cap shrinks and the gateway
//!   load-sheds instead of overcommitting.
//! * **Node failure** (`fail-node` / `repair-node` in the `cms-fault`
//!   grammar): a failing node is evacuated and each of its streams is
//!   migrated to a surviving replica of its clip, resuming at the
//!   group-aligned offset it had reached ([`cms_sim::Simulator::submit_at`]).
//!   Streams with no surviving replica are declared lost, never
//!   silently dropped.
//! * **Cross-node rebuild**: a repaired node returns blank and must
//!   re-source its blocks from replica peers; the shipped blocks are
//!   charged against the sources' streaming bandwidth, so a rebuild
//!   visibly depresses the cluster admission cap until it completes.
//!
//! ## Determinism
//!
//! The node is the unit of parallelism, exactly as the disk is inside
//! the engine: node stepping fans out over scoped worker threads on
//! disjoint slices, every per-node result lands in a pre-sized slot,
//! and the merge — metrics roll-up and trace emission — runs
//! sequentially in node-ID order. No locks, no atomics, no wall clock:
//! a 64-node campaign replays bit-identical at any `threads` setting
//! (`tests/cluster_determinism.rs` enforces it).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod metrics;
pub mod placement;
pub mod sim;

pub use config::ClusterConfig;
pub use metrics::{ClusterMetrics, ClusterRoundReport};
pub use placement::Placement;
pub use sim::{ClusterRun, ClusterSim, NodeState};
