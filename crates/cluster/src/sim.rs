//! The cluster simulator: a deterministic gateway over `N` engine nodes.
//!
//! Each round runs five phases, in this order:
//!
//! 1. **Fault drain** (sequential): `fail-node` evacuates the node and
//!    migrates its streams to surviving replicas; `repair-node` starts a
//!    cross-node rebuild sized by the node's stored blocks.
//! 2. **Rebuild transfers** (sequential): rebuilding nodes pull blocks
//!    from up peers; shipped blocks are charged against the sources'
//!    capacity this round.
//! 3. **Gateway arrivals** (sequential): Poisson arrivals over the
//!    cluster catalog, shed against the rolled-up cluster cap, routed to
//!    the least-loaded surviving replica.
//! 4. **Node stepping** (parallel): every non-dark node executes one
//!    engine round. Nodes are the unit of parallelism: scoped workers
//!    step disjoint node slices and write into pre-sized result slots.
//! 5. **Merge** (sequential, node-ID order): per-node round reports roll
//!    up into one [`ClusterRoundReport`], so metrics and trace bytes are
//!    identical at any worker count.

use std::collections::BTreeMap;

use cms_core::{ClipId, CmsError, NodeId, RequestId};
use cms_fault::FaultEvent;
use cms_sim::{Metrics, RoundReport, Simulator};
use cms_trace::{EventKind, TraceSink, TraceSummary, Tracer};
use cms_workload::{ClipChoice, PoissonArrivals};

use crate::config::ClusterConfig;
use crate::metrics::{ClusterMetrics, ClusterRoundReport};
use crate::placement::Placement;

/// Availability state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving and routable.
    Up,
    /// Dark: failed and not yet repaired. Holds no sessions (they were
    /// migrated or lost at failure time) and does not step.
    Down,
    /// Returned from repair but still re-sourcing its blocks from
    /// replica peers; steps (so its clock advances) but is not routable
    /// until the debt reaches zero.
    Rebuilding {
        /// Blocks still to be shipped from peers.
        debt: u64,
    },
}

/// One server node: a complete single-server engine plus the gateway's
/// bookkeeping about it.
struct Node {
    sim: Simulator,
    state: NodeState,
    /// Node-local request id → cluster stream id. Entries for completed
    /// streams go stale harmlessly; the map is consulted (and cleared)
    /// only when the node is evacuated.
    sessions: BTreeMap<RequestId, u64>,
}

/// Everything a finished cluster run reports.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Cluster-level roll-up.
    pub metrics: ClusterMetrics,
    /// Final engine metrics per node, in node-ID order.
    pub node_metrics: Vec<Metrics>,
    /// One merged report per round.
    pub reports: Vec<ClusterRoundReport>,
    /// Trace summary, when tracing was enabled.
    pub summary: Option<TraceSummary>,
}

/// Emits through a disjoint borrow so loops over node slices can still
/// trace.
#[inline]
fn emit(tracer: &mut Option<Tracer>, round: u64, kind: EventKind) {
    if let Some(tr) = tracer.as_mut() {
        tr.emit(round, kind);
    }
}

/// The deterministic multi-node simulator. See the crate docs for the
/// architecture and [`ClusterSim::step`] for the per-round pipeline.
pub struct ClusterSim {
    cfg: ClusterConfig,
    placement: Placement,
    nodes: Vec<Node>,
    arrivals: PoissonArrivals,
    choice: ClipChoice,
    /// Per-round rebuild bandwidth charged to each node, reset in phase 2.
    charges: Vec<u64>,
    /// Reusable scratch for the rebuild-source node set (phase 2), so
    /// steady-state rounds stay allocation-free.
    rebuild_sources: Vec<NodeId>,
    /// Scratch slots the parallel phase writes per-node reports into.
    slots: Vec<Option<RoundReport>>,
    workers: usize,
    fault_cursor: usize,
    t: u64,
    next_stream: u64,
    metrics: ClusterMetrics,
    tracer: Option<Tracer>,
}

impl ClusterSim {
    /// Builds the cluster: placement map, one engine per node (catalog
    /// sized by the placement, node-derived seed, single-threaded,
    /// trace off), and the gateway workload generators.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration fails
    /// [`ClusterConfig::validate`] or a node engine rejects its derived
    /// configuration.
    pub fn new(cfg: ClusterConfig) -> Result<Self, CmsError> {
        cfg.validate()?;
        let placement =
            Placement::new(cfg.nodes, cfg.replication, cfg.catalog_clips, cfg.seed);
        let mut nodes = Vec::with_capacity(cfg.nodes as usize);
        for n in 0..cfg.nodes {
            let mut node_cfg = cfg.node.clone();
            node_cfg.catalog_clips = placement.node_clips(NodeId(n));
            node_cfg.seed = cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(n) + 1);
            node_cfg.rounds = cfg.rounds;
            node_cfg.threads = 1;
            node_cfg.trace = cms_trace::TraceSpec::off();
            nodes.push(Node {
                sim: Simulator::new(node_cfg)?,
                state: NodeState::Up,
                sessions: BTreeMap::new(),
            });
        }
        let workers = match cfg.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
        .clamp(1, cfg.nodes as usize);
        let tracer = cfg.trace.build().map_err(|e| {
            CmsError::invalid_params(format!("cannot open trace output: {e}"))
        })?;
        Ok(ClusterSim {
            arrivals: PoissonArrivals::new(cfg.arrival_rate, cfg.seed ^ 0xA11_000),
            choice: if cfg.zipf_theta > 0.0 {
                ClipChoice::zipf(cfg.catalog_clips, cfg.zipf_theta, cfg.seed ^ 0xC11_000)
            } else {
                ClipChoice::uniform(cfg.catalog_clips, cfg.seed ^ 0xC11_000)
            },
            charges: vec![0; cfg.nodes as usize],
            rebuild_sources: Vec::with_capacity(cfg.nodes as usize),
            slots: vec![None; cfg.nodes as usize],
            workers,
            placement,
            nodes,
            fault_cursor: 0,
            t: 0,
            next_stream: 0,
            metrics: ClusterMetrics::default(),
            tracer,
            cfg,
        })
    }

    /// The placement map the gateway routes by.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Cluster rounds executed so far.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Running cluster metrics.
    #[must_use]
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Availability state of `node` (`None` when out of range).
    #[must_use]
    pub fn node_state(&self, node: NodeId) -> Option<NodeState> {
        self.nodes.get(node.idx()).map(|n| n.state)
    }

    /// Installs a trace sink mid-stream (replacing whatever `cfg.trace`
    /// set up), e.g. a `SharedBuffer`-backed JSONL sink whose handle the
    /// caller keeps.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.tracer = Some(Tracer::new(sink));
    }

    /// The running trace summary, when tracing is enabled.
    #[must_use]
    pub fn trace_summary(&self) -> Option<&TraceSummary> {
        self.tracer.as_ref().map(Tracer::summary)
    }

    /// Flushes the trace sink without consuming the simulator.
    pub fn flush_trace(&mut self) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.finish();
        }
    }

    /// The cluster admission cap currently in force: the sum over
    /// routable nodes of nominal capacity minus the rebuild bandwidth
    /// they lent *last computed round* (phase 2 refreshes the charges).
    #[must_use]
    pub fn cluster_capacity(&self) -> u64 {
        self.nodes
            .iter()
            .zip(&self.charges)
            .filter(|(n, _)| n.state == NodeState::Up)
            .map(|(n, charge)| n.sim.nominal_capacity().saturating_sub(*charge))
            .sum()
    }

    /// Streams the cluster is currently committed to: active plus queued
    /// sessions on routable nodes.
    #[must_use]
    pub fn committed_streams(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Up)
            .map(|n| (n.sim.active_clients() + n.sim.pending_requests()) as u64)
            .sum()
    }

    /// Runs the configured number of rounds and returns the full report.
    #[must_use]
    pub fn run(mut self) -> ClusterRun {
        let mut reports = Vec::with_capacity(self.cfg.rounds as usize);
        for _ in 0..self.cfg.rounds {
            reports.push(self.step());
        }
        let summary = self.tracer.map(|mut tr| {
            tr.finish();
            tr.summary().clone()
        });
        ClusterRun {
            metrics: self.metrics,
            node_metrics: self.nodes.iter().map(|n| n.sim.metrics().clone()).collect(),
            reports,
            summary,
        }
    }

    /// Executes one cluster round (the five-phase pipeline in the module
    /// docs) and returns the merged report.
    pub fn step(&mut self) -> ClusterRoundReport {
        let mut report = ClusterRoundReport { round: self.t, ..ClusterRoundReport::default() };

        self.drain_fault_events(&mut report);
        self.rebuild_transfers(&mut report);
        self.gateway_arrivals(&mut report);
        self.step_nodes();
        self.merge(&mut report);

        self.metrics.absorb(&report);
        self.t += 1;
        report
    }

    /// Phase 1: applies this round's node-scoped fault events.
    fn drain_fault_events(&mut self, report: &mut ClusterRoundReport) {
        loop {
            // Re-borrow the schedule each iteration so the handlers can
            // take `&mut self`; the cursor makes the scan O(events) total.
            let Some(faults) = self.cfg.faults.as_ref() else { return };
            let Some(&cms_fault::ScheduledEvent { round, event }) =
                faults.events().get(self.fault_cursor)
            else {
                return;
            };
            if round > self.t {
                return;
            }
            self.fault_cursor += 1;
            if round < self.t {
                continue;
            }
            match event {
                FaultEvent::FailNode(node) => self.fail_node(node, report),
                FaultEvent::RepairNode(node) => self.repair_node(node),
                // Disk-scoped events are rejected by validate_cluster.
                _ => {}
            }
        }
    }

    /// Evacuates a failing node and migrates its streams to surviving
    /// replicas (resuming at their group-aligned offsets); streams with
    /// no surviving replica are declared lost.
    fn fail_node(&mut self, node: NodeId, report: &mut ClusterRoundReport) {
        let idx = node.idx();
        if self.nodes[idx].state == NodeState::Down {
            return;
        }
        let exports = self.nodes[idx].sim.export_sessions();
        self.nodes[idx].sim.evacuate();
        let mut sessions = std::mem::take(&mut self.nodes[idx].sessions);
        self.nodes[idx].state = NodeState::Down;
        self.metrics.node_failures += 1;
        emit(&mut self.tracer, self.t, EventKind::NodeFailure { node: node.raw() });

        for export in exports {
            // A session the gateway never recorded would be a routing bug;
            // surface it as a lost stream rather than a panic.
            let stream = sessions.remove(&export.request).unwrap_or(u64::MAX);
            let Some(clip) = self.placement.cluster_clip(node, export.clip) else {
                continue;
            };
            let target = self.route_target(clip, Some(node));
            if let Some(target) = target {
                let local = self
                    .placement
                    .local_id(clip, target)
                    // lint: allow(P001) route_target only returns replica holders
                    .expect("route_target only returns replica holders");
                if let Ok(id) = self.nodes[target.idx()].sim.submit_at(local, export.offset) {
                    self.nodes[target.idx()].sessions.insert(id, stream);
                    report.migrations += 1;
                    emit(
                        &mut self.tracer,
                        self.t,
                        EventKind::StreamMigrated {
                            request: stream,
                            from: node.raw(),
                            to: target.raw(),
                        },
                    );
                    continue;
                }
            }
            report.lost_streams += 1;
            emit(
                &mut self.tracer,
                self.t,
                EventKind::StreamLost { request: stream, block: export.offset },
            );
        }
    }

    /// Marks a repaired node rebuilding, with a debt equal to every block
    /// its layout stores (the node returns blank).
    fn repair_node(&mut self, node: NodeId) {
        let idx = node.idx();
        if self.nodes[idx].state != NodeState::Down {
            return;
        }
        let d = self.nodes[idx].sim.config().d;
        let debt: u64 = (0..d)
            .map(|disk| self.nodes[idx].sim.layout_blocks_used(cms_core::DiskId(disk)))
            .sum();
        self.metrics.node_repairs += 1;
        emit(&mut self.tracer, self.t, EventKind::NodeRepair { node: node.raw() });
        if debt == 0 {
            self.nodes[idx].state = NodeState::Up;
            self.finish_rebuild(node);
        } else {
            self.nodes[idx].state = NodeState::Rebuilding { debt };
        }
    }

    fn finish_rebuild(&mut self, node: NodeId) {
        self.metrics.node_rebuilds_completed += 1;
        emit(&mut self.tracer, self.t, EventKind::NodeRebuildComplete { node: node.raw() });
    }

    /// Phase 2: ships rebuild blocks from up peers to rebuilding nodes,
    /// charging the shipment against the sources' capacity this round.
    fn rebuild_transfers(&mut self, report: &mut ClusterRoundReport) {
        self.charges.iter_mut().for_each(|c| *c = 0);
        if !self.nodes.iter().any(|n| matches!(n.state, NodeState::Rebuilding { .. })) {
            return; // steady state: keep the round allocation-free
        }
        self.rebuild_sources.clear();
        self.rebuild_sources.extend(
            self.nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.state == NodeState::Up)
                .map(|(i, _)| NodeId(i as u32)),
        );
        let sources = std::mem::take(&mut self.rebuild_sources);
        for idx in 0..self.nodes.len() {
            let NodeState::Rebuilding { debt } = self.nodes[idx].state else { continue };
            if sources.is_empty() {
                continue; // nobody to pull from; the debt waits
            }
            let node = NodeId(idx as u32);
            let ship = u64::from(self.cfg.rebuild_rate).min(debt);
            let fanout = (self.cfg.rebuild_fanout as usize).min(sources.len());
            // Rotate the source set by round so the charge spreads over
            // peers instead of always taxing the lowest node ids.
            let start = (self.t as usize) % sources.len();
            let base = ship / fanout as u64;
            let rem = (ship % fanout as u64) as usize;
            for k in 0..fanout {
                let share = base + u64::from(k < rem);
                if share == 0 {
                    continue;
                }
                let src = sources[(start + k) % sources.len()];
                self.charges[src.idx()] += share;
                report.rebuild_blocks += share;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::CrossNodeRebuildRead {
                        node: node.raw(),
                        source: src.raw(),
                        blocks: share as u32,
                    },
                );
            }
            let left = debt - ship;
            if left == 0 {
                self.nodes[idx].state = NodeState::Up;
                self.finish_rebuild(node);
            } else {
                self.nodes[idx].state = NodeState::Rebuilding { debt: left };
            }
        }
        self.rebuild_sources = sources;
    }

    /// The least-loaded up node holding a replica of `clip`, node id as
    /// tie-break, excluding `not` (the failing node during migration).
    fn route_target(&self, clip: ClipId, not: Option<NodeId>) -> Option<NodeId> {
        let mut best: Option<(usize, NodeId)> = None;
        for candidate in self.placement.replicas(clip) {
            if Some(candidate) == not {
                continue;
            }
            let n = &self.nodes[candidate.idx()];
            if n.state != NodeState::Up {
                continue;
            }
            let load = n.sim.active_clients() + n.sim.pending_requests();
            let better = match best {
                None => true,
                Some((best_load, best_id)) => {
                    load < best_load || (load == best_load && candidate < best_id)
                }
            };
            if better {
                best = Some((load, candidate));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Phase 3: generates this round's arrivals at the gateway, sheds
    /// against the cluster cap, and routes the rest.
    fn gateway_arrivals(&mut self, report: &mut ClusterRoundReport) {
        let cap = self.cluster_capacity();
        report.cluster_cap = cap;
        let mut committed = self.committed_streams();
        let n_arrivals = self.arrivals.next_round();
        for _ in 0..n_arrivals {
            let stream = self.next_stream;
            self.next_stream += 1;
            let clip = self.choice.next_clip();
            report.arrivals += 1;
            emit(
                &mut self.tracer,
                self.t,
                EventKind::Arrival { request: stream, clip: clip.raw() },
            );
            if committed >= cap {
                // Terminal shed: unlike node-level refusals (which keep
                // the request queued), the gateway turns it away.
                report.cluster_refusals += 1;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::DegradedRefusal { request: stream, clip: clip.raw() },
                );
                continue;
            }
            let Some(target) = self.route_target(clip, None) else {
                report.unroutable += 1;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::Rejection { request: stream, clip: clip.raw() },
                );
                continue;
            };
            let local = self
                .placement
                .local_id(clip, target)
                // lint: allow(P001) route_target only returns replica holders
                .expect("route_target only returns replica holders");
            if let Ok(id) = self.nodes[target.idx()].sim.submit(local) {
                self.nodes[target.idx()].sessions.insert(id, stream);
                report.routed += 1;
                committed += 1;
            } else {
                report.unroutable += 1;
                emit(
                    &mut self.tracer,
                    self.t,
                    EventKind::Rejection { request: stream, clip: clip.raw() },
                );
            }
        }
    }

    /// Phase 4: steps every non-dark node one engine round. Nodes are
    /// the unit of parallelism — scoped workers own disjoint node
    /// slices and write into pre-sized slots; no locks, no atomics.
    fn step_nodes(&mut self) {
        let n = self.nodes.len();
        let workers = self.workers.min(n);
        if workers == 1 {
            for (node, slot) in self.nodes.iter_mut().zip(self.slots.iter_mut()) {
                *slot = (node.state != NodeState::Down).then(|| node.sim.step_report());
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        let nodes = &mut self.nodes[..];
        let slots = &mut self.slots[..];
        std::thread::scope(|scope| {
            for (node_chunk, slot_chunk) in
                nodes.chunks_mut(chunk).zip(slots.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for (node, slot) in node_chunk.iter_mut().zip(slot_chunk.iter_mut()) {
                        *slot =
                            (node.state != NodeState::Down).then(|| node.sim.step_report());
                    }
                });
            }
        });
    }

    /// Phase 5: merges per-node reports in node-ID order.
    fn merge(&mut self, report: &mut ClusterRoundReport) {
        for (node, slot) in self.nodes.iter().zip(self.slots.iter()) {
            match node.state {
                NodeState::Down => report.down_nodes += 1,
                NodeState::Rebuilding { .. } => report.rebuilding_nodes += 1,
                NodeState::Up => {}
            }
            let Some(r) = slot else { continue };
            report.admissions += r.admissions;
            report.completions += r.completions;
            report.blocks_served += r.blocks_served;
            report.hiccups += r.hiccups;
            report.active += r.active;
            report.pending += r.pending;
            // Node-internal stream losses (second disk failure inside a
            // node) are impossible here — the template carries no disk
            // faults — but account for them separately if they appear.
            self.metrics.node_lost_streams += r.lost_streams;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use cms_core::Scheme;
    use cms_fault::FaultSchedule;
    use cms_sim::SimConfig;
    use cms_trace::TraceSpec;

    fn node_template() -> SimConfig {
        let mut node = SimConfig::sigmod96(
            Scheme::DeclusteredParity,
            &cms_model::CapacityPoint {
                scheme: Scheme::DeclusteredParity,
                p: 4,
                m: 1,
                block_bytes: 1 << 20,
                q: 8,
                f: 2,
                r: 1,
                total_clips: 64,
            },
            8,
        );
        node.arrival_rate = 0.0;
        node.clip_len = 15;
        node
    }

    fn base() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            catalog_clips: 16,
            node: node_template(),
            arrival_rate: 5.0,
            zipf_theta: 0.0,
            rounds: 60,
            rebuild_rate: 64,
            rebuild_fanout: 2,
            faults: None,
            seed: 42,
            threads: 1,
            trace: TraceSpec::off(),
        }
    }

    #[test]
    fn healthy_cluster_routes_and_conserves() {
        let run = ClusterSim::new(base()).unwrap().run();
        let m = &run.metrics;
        assert_eq!(m.rounds, 60);
        assert!(m.arrivals > 0, "Poisson at 5/round must arrive");
        assert_eq!(m.arrivals, m.routed + m.cluster_refusals + m.unroutable);
        assert_eq!(m.unroutable, 0, "healthy cluster with r=2 routes everything");
        assert_eq!(m.lost_streams + m.node_lost_streams, 0);
        assert_eq!(m.hiccups, 0, "guarantee scheme keeps its rate promises");
        // Conservation: every routed arrival (plus nothing else — no
        // migrations here) arrived at exactly one node.
        let node_arrivals: u64 = run.node_metrics.iter().map(|m| m.arrivals).sum();
        assert_eq!(node_arrivals, m.routed + m.migrations);
        let node_admitted: u64 = run.node_metrics.iter().map(|m| m.admitted).sum();
        assert_eq!(node_admitted, m.admissions);
    }

    #[test]
    fn node_failure_migrates_streams_to_surviving_replicas() {
        let mut cfg = base();
        cfg.rounds = 80;
        cfg.faults =
            Some(FaultSchedule::parse("@30 fail-node 1\n@50 repair-node 1\n").unwrap());
        let run = ClusterSim::new(cfg).unwrap().run();
        let m = &run.metrics;
        assert_eq!(m.node_failures, 1);
        assert_eq!(m.node_repairs, 1);
        assert!(m.migrations > 0, "node 1 had streams to hand off");
        assert_eq!(m.lost_streams, 0, "r=2: every clip survives one node failure");
        assert_eq!(m.hiccups, 0, "migrated streams resume at group boundaries");
        assert!(m.cross_node_rebuild_blocks > 0, "repair re-sources blocks from peers");
        // The round reports show the outage window and the rebuild.
        assert!(run.reports[30].migrations > 0);
        assert_eq!(run.reports[30].down_nodes, 1);
        assert!(run.reports[50].rebuilding_nodes == 1 || run.reports[50].down_nodes == 0);
        let node_arrivals: u64 = run.node_metrics.iter().map(|m| m.arrivals).sum();
        assert_eq!(node_arrivals, m.routed + m.migrations);
    }

    #[test]
    fn rebuild_charge_depresses_the_cluster_cap() {
        let mut cfg = base();
        cfg.rounds = 80;
        cfg.rebuild_rate = 8; // slow rebuild: visible for many rounds
        cfg.faults =
            Some(FaultSchedule::parse("@10 fail-node 0\n@20 repair-node 0\n").unwrap());
        let run = ClusterSim::new(cfg).unwrap().run();
        let healthy_cap = run.reports[5].cluster_cap;
        let dark_cap = run.reports[15].cluster_cap;
        let rebuilding_cap = run.reports[21].cluster_cap;
        assert!(dark_cap < healthy_cap, "a dark node removes its capacity");
        assert!(
            rebuilding_cap < healthy_cap,
            "rebuild charge keeps the cap below healthy until completion"
        );
        assert!(run.reports[21].rebuild_blocks > 0);
    }

    #[test]
    fn unreplicated_clips_lose_streams_on_node_failure() {
        let mut cfg = base();
        cfg.replication = 1;
        cfg.arrival_rate = 8.0;
        cfg.rounds = 60;
        cfg.faults = Some(FaultSchedule::parse("@30 fail-node 2\n").unwrap());
        let run = ClusterSim::new(cfg).unwrap().run();
        let m = &run.metrics;
        assert_eq!(m.migrations, 0, "r=1: nowhere to migrate to");
        assert!(m.lost_streams > 0, "node 2 carried streams at round 30");
        assert!(m.unroutable > 0, "node 2's catalog is unroutable afterwards");
    }

    #[test]
    fn completed_rebuild_restores_routability() {
        let mut cfg = base();
        cfg.rounds = 100;
        cfg.rebuild_rate = 1 << 14; // fast: finishes in a few rounds
        cfg.faults =
            Some(FaultSchedule::parse("@20 fail-node 3\n@30 repair-node 3\n").unwrap());
        let sim = ClusterSim::new(cfg).unwrap();
        let run = sim.run();
        assert_eq!(run.metrics.node_rebuilds_completed, 1);
        let last = run.reports.last().unwrap();
        assert_eq!(last.down_nodes, 0);
        assert_eq!(last.rebuilding_nodes, 0);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut cfg = base();
        cfg.rounds = 50;
        cfg.faults =
            Some(FaultSchedule::parse("@20 fail-node 1\n@35 repair-node 1\n").unwrap());
        let a = ClusterSim::new(cfg.clone().with_threads(1)).unwrap().run();
        let b = ClusterSim::new(cfg.clone().with_threads(3)).unwrap().run();
        let c = ClusterSim::new(cfg.with_threads(0)).unwrap().run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics, c.metrics);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.node_metrics, b.node_metrics);
        assert_eq!(a.node_metrics, c.node_metrics);
    }

    #[test]
    fn trace_captures_node_lifecycle() {
        use cms_trace::{JsonlSink, SharedBuffer};
        let mut cfg = base();
        cfg.rounds = 70;
        cfg.rebuild_rate = 1 << 14;
        cfg.faults =
            Some(FaultSchedule::parse("@20 fail-node 1\n@40 repair-node 1\n").unwrap());
        let mut sim = ClusterSim::new(cfg).unwrap();
        let buf = SharedBuffer::new();
        sim.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
        let run = sim.run();
        let summary = run.summary.expect("tracing was on");
        assert_eq!(summary.node_failures, 1);
        assert_eq!(summary.node_repairs, 1);
        assert_eq!(summary.stream_migrations, run.metrics.migrations);
        assert!(summary.node_failure_to_rebuild_complete().is_some());
        let text = String::from_utf8(buf.contents()).unwrap();
        assert!(text.contains("\"event\":\"node_failure\""));
        assert!(text.contains("\"event\":\"stream_migrated\""));
        assert!(text.contains("\"event\":\"cross_node_rebuild_read\""));
        assert!(text.contains("\"event\":\"node_rebuild_complete\""));
        // Every line round-trips through the parser.
        for line in text.lines() {
            assert!(
                cms_trace::TraceEvent::parse_jsonl(line).is_some(),
                "unparseable trace line: {line}"
            );
        }
    }

    #[test]
    fn gateway_sheds_when_over_cluster_cap() {
        let mut cfg = base();
        cfg.arrival_rate = 500.0; // far beyond 4 small nodes
        cfg.rounds = 30;
        let run = ClusterSim::new(cfg).unwrap().run();
        assert!(run.metrics.cluster_refusals > 0, "overload must shed at the gateway");
        // The cap was honored: committed streams never exceeded it.
        for r in &run.reports {
            assert!(r.active + r.pending <= r.cluster_cap, "round {}: overcommitted", r.round);
        }
    }
}
