//! Replica placement: which nodes hold which cluster clips.
//!
//! Every cluster clip `c` is stored on `r` of the `N` nodes. The map is
//! a seeded node permutation striped round-robin: replica `j` of clip
//! `c` lands on the node at permutation position `(c·r + j) mod N`.
//! Because the values `c·r + j` enumerate the consecutive integers
//! `0..K·r`, the assignment is **exactly balanced** (every node holds
//! `⌈K·r/N⌉` or `⌊K·r/N⌋` clips), the `r` replicas of one clip are
//! **distinct** whenever `r ≤ N`, and the node-local catalog index of a
//! replica is the closed form `(c·r + j) / N` — dense `0..` per node,
//! no lookup tables on the hot path. The seeded permutation plays the
//! role of the paper's `disk(C)`/`row(C)` jitter one tier up: it
//! decorrelates which *nodes* co-host which clips without disturbing
//! the balance arithmetic.

use cms_core::{ClipId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The cluster placement map. Cheap to clone; all queries are O(r) or
/// better and allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    nodes: u32,
    replication: u32,
    clips: u64,
    /// Permutation position → node id.
    perm: Vec<u32>,
    /// Node id → permutation position (inverse of `perm`).
    inv: Vec<u32>,
}

impl Placement {
    /// Builds the placement map for `clips` cluster clips over `nodes`
    /// nodes with `replication`-way replication, shuffled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `replication` is not in
    /// `1..=nodes` — [`crate::ClusterConfig::validate`] rejects such
    /// configurations before a `Placement` is ever built.
    #[must_use]
    pub fn new(nodes: u32, replication: u32, clips: u64, seed: u64) -> Self {
        assert!(nodes > 0, "placement needs at least one node");
        assert!(
            replication >= 1 && replication <= nodes,
            "replication must be in 1..=nodes"
        );
        let mut perm: Vec<u32> = (0..nodes).collect();
        // Fisher–Yates with a seeded generator: deterministic for a given
        // (nodes, seed) pair, independent of replication and catalog.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x706c_6163_656d_656e);
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut inv = vec![0u32; nodes as usize];
        for (pos, &node) in perm.iter().enumerate() {
            inv[node as usize] = pos as u32;
        }
        Placement { nodes, replication, clips, perm, inv }
    }

    /// Number of nodes `N`.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Replication degree `r`.
    #[must_use]
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Cluster catalog size `K`.
    #[must_use]
    pub fn clips(&self) -> u64 {
        self.clips
    }

    /// The node holding replica `j` of cluster clip `c`.
    #[must_use]
    pub fn replica(&self, clip: ClipId, j: u32) -> NodeId {
        debug_assert!(j < self.replication);
        let v = clip.raw() * u64::from(self.replication) + u64::from(j);
        NodeId(self.perm[(v % u64::from(self.nodes)) as usize])
    }

    /// Iterates the `r` replica nodes of `clip`, in replica order
    /// (distinct nodes whenever `r ≤ N`).
    pub fn replicas(&self, clip: ClipId) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.replication).map(move |j| self.replica(clip, j))
    }

    /// The node-local catalog index of `clip` on `node`, or `None` when
    /// that node holds no replica of it.
    #[must_use]
    pub fn local_id(&self, clip: ClipId, node: NodeId) -> Option<ClipId> {
        let pos = u64::from(*self.inv.get(node.idx())?);
        let n = u64::from(self.nodes);
        let r = u64::from(self.replication);
        for j in 0..r {
            let v = clip.raw() * r + j;
            if v % n == pos {
                return Some(ClipId(v / n));
            }
        }
        None
    }

    /// The cluster clip whose replica sits at node-local index `local`
    /// on `node`, or `None` when the slot is beyond the node's catalog.
    #[must_use]
    pub fn cluster_clip(&self, node: NodeId, local: ClipId) -> Option<ClipId> {
        let pos = u64::from(*self.inv.get(node.idx())?);
        let v = local.raw() * u64::from(self.nodes) + pos;
        let c = v / u64::from(self.replication);
        (c < self.clips).then_some(ClipId(c))
    }

    /// Number of clips stored on `node` — `⌈K·r/N⌉` or `⌊K·r/N⌋`,
    /// exactly balanced across the cluster.
    #[must_use]
    pub fn node_clips(&self, node: NodeId) -> u64 {
        let Some(&pos) = self.inv.get(node.idx()) else { return 0 };
        let total = self.clips * u64::from(self.replication);
        let pos = u64::from(pos);
        if total > pos {
            (total - pos - 1) / u64::from(self.nodes) + 1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn replicas_are_distinct_and_in_range() {
        let p = Placement::new(8, 3, 40, 7);
        for c in 0..40 {
            let set: BTreeSet<NodeId> = p.replicas(ClipId(c)).collect();
            assert_eq!(set.len(), 3, "clip{c} replicas collide");
            assert!(set.iter().all(|n| n.raw() < 8));
        }
    }

    #[test]
    fn assignment_is_exactly_balanced() {
        let p = Placement::new(8, 3, 40, 7);
        let counts: Vec<u64> = (0..8).map(|n| p.node_clips(NodeId(n))).collect();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 40 * 3, "every replica is assigned exactly once");
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "balance within one clip: {counts:?}");
    }

    #[test]
    fn local_ids_are_dense_and_invertible() {
        let p = Placement::new(5, 2, 17, 3);
        for node in 0..5u32 {
            let node = NodeId(node);
            let mut locals = Vec::new();
            for c in 0..17 {
                if let Some(local) = p.local_id(ClipId(c), node) {
                    // Round-trip back to the cluster clip.
                    assert_eq!(p.cluster_clip(node, local), Some(ClipId(c)));
                    locals.push(local.raw());
                }
            }
            locals.sort_unstable();
            let expect: Vec<u64> = (0..p.node_clips(node)).collect();
            assert_eq!(locals, expect, "{node} locals must be dense 0..count");
        }
    }

    #[test]
    fn local_id_is_none_off_replica() {
        let p = Placement::new(6, 2, 12, 11);
        for c in 0..12 {
            let clip = ClipId(c);
            let replicas: BTreeSet<NodeId> = p.replicas(clip).collect();
            for n in 0..6 {
                let node = NodeId(n);
                assert_eq!(p.local_id(clip, node).is_some(), replicas.contains(&node));
            }
        }
    }

    #[test]
    fn seed_changes_the_permutation_not_the_balance() {
        let a = Placement::new(16, 2, 64, 1);
        let b = Placement::new(16, 2, 64, 2);
        assert_ne!(a, b, "different seeds give different shuffles");
        assert_eq!(a, Placement::new(16, 2, 64, 1), "same seed replays");
        for n in 0..16 {
            assert_eq!(a.node_clips(NodeId(n)), b.node_clips(NodeId(n)));
        }
    }

    #[test]
    fn single_replica_and_full_replication_edge_cases() {
        let single = Placement::new(4, 1, 8, 0);
        for c in 0..8 {
            assert_eq!(single.replicas(ClipId(c)).count(), 1);
        }
        let full = Placement::new(4, 4, 8, 0);
        for c in 0..8 {
            let set: BTreeSet<NodeId> = full.replicas(ClipId(c)).collect();
            assert_eq!(set.len(), 4, "full replication hits every node");
            assert_eq!(full.node_clips(NodeId(0)), 8);
        }
    }
}
