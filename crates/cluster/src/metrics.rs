//! Cluster-level observability: the per-round report the gateway merges
//! in node-ID order, and the whole-run roll-up.

use serde::{Deserialize, Serialize};

/// What happened in one cluster round. Gateway counters (arrivals,
/// routing, migration, rebuild traffic) are recorded where they happen —
/// on the sequential gateway thread — and the per-node counters are the
/// node-ID-order sum of each stepped node's
/// [`cms_sim::RoundReport`], so the record is bit-identical at any
/// worker-thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterRoundReport {
    /// The cluster round that just executed (0-based).
    pub round: u64,
    /// Requests that arrived at the gateway this round.
    pub arrivals: u64,
    /// Arrivals routed to a replica node this round.
    pub routed: u64,
    /// Arrivals shed by the cluster-level cap this round (terminal:
    /// unlike node-level refusals, the gateway does not queue).
    pub cluster_refusals: u64,
    /// Arrivals with no routable replica this round (all `r` replicas
    /// dark or rebuilding).
    pub unroutable: u64,
    /// Streams migrated off a failing node this round.
    pub migrations: u64,
    /// Streams lost this round (node failed and no surviving replica).
    pub lost_streams: u64,
    /// Cross-node rebuild blocks shipped this round.
    pub rebuild_blocks: u64,
    /// Admissions across all nodes this round.
    pub admissions: u64,
    /// Completions across all nodes this round.
    pub completions: u64,
    /// Blocks served across all node arrays this round.
    pub blocks_served: u64,
    /// Playback glitches across all nodes this round.
    pub hiccups: u64,
    /// Active playback sessions across all nodes at end of round.
    pub active: u64,
    /// Requests queued inside nodes at end of round.
    pub pending: u64,
    /// Nodes dark this round (failed, not yet repaired).
    pub down_nodes: u64,
    /// Nodes rebuilding this round (returned but not yet routable).
    pub rebuilding_nodes: u64,
    /// The cluster admission cap in force this round: the sum of
    /// routable nodes' nominal capacities minus the bandwidth lent to
    /// cross-node rebuilds.
    pub cluster_cap: u64,
}

/// Whole-run cluster metrics. The per-node engine metrics are reported
/// alongside (see [`crate::ClusterRun::node_metrics`]); the aggregate
/// fields here are accumulated from the merged per-round reports, which
/// is exactly what the conformance conservation invariant cross-checks
/// against the per-node totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Cluster rounds simulated.
    pub rounds: u64,
    /// Requests that arrived at the gateway.
    pub arrivals: u64,
    /// Arrivals routed to a node.
    pub routed: u64,
    /// Arrivals shed by the cluster-level cap.
    pub cluster_refusals: u64,
    /// Arrivals with no routable replica.
    pub unroutable: u64,
    /// Streams migrated off failing nodes.
    pub migrations: u64,
    /// Streams lost to node failure (no surviving replica).
    pub lost_streams: u64,
    /// `fail-node` events applied.
    pub node_failures: u64,
    /// `repair-node` events applied.
    pub node_repairs: u64,
    /// Cross-node rebuilds completed.
    pub node_rebuilds_completed: u64,
    /// Total cross-node rebuild blocks shipped.
    pub cross_node_rebuild_blocks: u64,
    /// Admissions across all nodes.
    pub admissions: u64,
    /// Completions across all nodes.
    pub completions: u64,
    /// Blocks served across all node arrays.
    pub blocks_served: u64,
    /// Playback glitches across all nodes (0 for guarantee schemes under
    /// node failure too: migrated streams resume at a group boundary).
    pub hiccups: u64,
    /// Streams declared lost *inside* nodes (second disk failure); kept
    /// separate from `lost_streams`, which counts node-level losses.
    pub node_lost_streams: u64,
    /// Highest concurrently active stream count across the cluster.
    pub peak_active: u64,
}

impl ClusterMetrics {
    /// Folds one merged round report into the totals.
    pub fn absorb(&mut self, r: &ClusterRoundReport) {
        self.rounds += 1;
        self.arrivals += r.arrivals;
        self.routed += r.routed;
        self.cluster_refusals += r.cluster_refusals;
        self.unroutable += r.unroutable;
        self.migrations += r.migrations;
        self.lost_streams += r.lost_streams;
        self.cross_node_rebuild_blocks += r.rebuild_blocks;
        self.admissions += r.admissions;
        self.completions += r.completions;
        self.blocks_served += r.blocks_served;
        self.hiccups += r.hiccups;
        self.peak_active = self.peak_active.max(r.active);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_and_tracks_peak() {
        let mut m = ClusterMetrics::default();
        m.absorb(&ClusterRoundReport {
            round: 0,
            arrivals: 5,
            routed: 4,
            cluster_refusals: 1,
            admissions: 3,
            active: 3,
            ..ClusterRoundReport::default()
        });
        m.absorb(&ClusterRoundReport {
            round: 1,
            arrivals: 2,
            routed: 2,
            admissions: 2,
            active: 5,
            completions: 1,
            ..ClusterRoundReport::default()
        });
        assert_eq!(m.rounds, 2);
        assert_eq!(m.arrivals, 7);
        assert_eq!(m.routed, 6);
        assert_eq!(m.cluster_refusals, 1);
        assert_eq!(m.admissions, 5);
        assert_eq!(m.completions, 1);
        assert_eq!(m.peak_active, 5);
    }
}
