//! # cms-model — the analytical capacity model of Section 7
//!
//! For every scheme, the paper derives two coupled constraints:
//!
//! * the **continuity-of-playback** constraint (Equation 1, or its
//!   streaming-RAID variant), which caps the per-disk, per-round retrieval
//!   budget `q` given a block size `b`, and
//! * a **buffer constraint**, which caps `b` given `q` (and the scheme's
//!   per-clip buffer footprint).
//!
//! Substituting the buffer-optimal `b(q)` into the continuity constraint
//! yields the largest feasible `q`; sweeping the contingency reservation
//! `f` (where applicable) and the parity group size `p` then maximizes the
//! number of concurrently serviceable clips. [`optimal::compute_optimal`]
//! is the paper's Figure 4 procedure; [`capacity::capacity`] evaluates a
//! single `(scheme, p)` point — the generator of every curve in Figure 5.
//!
//! ```
//! use cms_core::Scheme;
//! use cms_model::{capacity, compute_optimal, ModelInput};
//!
//! let input = ModelInput::sigmod96(256 << 20); // the paper's 256 MB server
//! let point = capacity(Scheme::DeclusteredParity, &input, 4).unwrap();
//! assert!(point.total_clips > 500);
//!
//! // Figure 4: the capacity-maximizing parity group size.
//! let best = compute_optimal(Scheme::DeclusteredParity, &input, 2, false).unwrap();
//! assert!(best.total_clips >= point.total_clips);
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod capacity;
pub mod cluster;
pub mod contract;
pub mod optimal;
pub mod reliability;

pub use capacity::{
    capacity, capacity_with_lambda, capacity_with_redundancy, CapacityPoint, ModelInput,
};
pub use cluster::{
    clip_concurrency_bound, cluster_capacity_bound, cluster_rebuild_rounds,
    degraded_cluster_capacity_bound, max_catalog_clips,
};
pub use contract::{capacity_bound, capacity_tolerance, rebuild_window_rounds};
pub use optimal::{
    compute_optimal, p_min, tuned_optimal, tuned_point, tuned_point_with_redundancy,
};
pub use reliability::{array_mttf_hours, mttdl_hours};
