//! Array reliability: the arithmetic behind the paper's motivation.
//!
//! The introduction argues from disk MTTF: "For a single disk, the mean
//! time to failure (MTTF) is about 300,000 hours. Thus, a server with,
//! say, 200 disks has an MTTF of 1500 hours or about 60 days." This
//! module provides that calculation plus the standard Markov-model mean
//! time to *data loss* (MTTDL) for single-failure-tolerant arrays
//! (Patterson/Gibson/Katz 1988), which quantifies what the paper's
//! schemes buy: with parity and a rebuild that takes `T_r`, data is lost
//! only when a *second* disk of the same parity group fails during the
//! rebuild window.

use cms_core::CmsError;

/// Hours in a (non-leap) year, for convenience conversions.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Mean time to the *first* disk failure in an array of `d` disks with
/// per-disk MTTF `mttf_hours` (exponential failures): `MTTF / d`.
///
/// The paper's example: 300,000 h disks, 200 of them → 1,500 h.
#[must_use]
pub fn array_mttf_hours(mttf_hours: f64, d: u32) -> f64 {
    if d == 0 {
        return f64::INFINITY;
    }
    mttf_hours / f64::from(d)
}

/// Mean time to data loss for a single-failure-tolerant array: after any
/// first failure (rate `d/MTTF`), data is lost only if one of the failed
/// disk's `g − 1` parity-group partners fails within the repair/rebuild
/// time `repair_hours`. The standard two-state Markov approximation
/// (PGK88):
///
/// ```text
/// MTTDL ≈ MTTF² / (d · (g − 1) · T_repair)
/// ```
///
/// `g` is the number of disks a failure exposes: `p` for clustered
/// schemes; for declustered parity every disk shares a group with every
/// other, so pass `g = d` (and enjoy the much shorter `T_repair` that
/// declustering buys — the A3 experiment measures it).
///
/// # Errors
///
/// Returns [`CmsError::InvalidParams`] for non-positive times or `d < 2`
/// or `g < 2`.
pub fn mttdl_hours(mttf_hours: f64, d: u32, g: u32, repair_hours: f64) -> Result<f64, CmsError> {
    // `<=` would be wrong for NaN (incomparable must also be rejected).
    if mttf_hours.is_nan() || repair_hours.is_nan() || mttf_hours <= 0.0 || repair_hours <= 0.0 {
        return Err(CmsError::invalid_params("MTTF and repair time must be positive"));
    }
    if d < 2 || g < 2 || g > d {
        return Err(CmsError::invalid_params("need d >= 2 and 2 <= g <= d"));
    }
    Ok(mttf_hours * mttf_hours / (f64::from(d) * f64::from(g - 1) * repair_hours))
}

/// Converts a simulated rebuild duration in *rounds* to hours, given the
/// round length in seconds — glue between the A3 rebuild experiment and
/// [`mttdl_hours`].
#[must_use]
pub fn rounds_to_hours(rounds: u64, round_seconds: f64) -> f64 {
    rounds as f64 * round_seconds / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_motivating_example() {
        // "a server with, say, 200 disks has an MTTF of 1500 hours or
        // about 60 days."
        let mttf = array_mttf_hours(300_000.0, 200);
        assert!((mttf - 1_500.0).abs() < 1e-9);
        assert!((mttf / 24.0 - 62.5).abs() < 1.0, "≈ 60 days");
    }

    #[test]
    fn parity_buys_orders_of_magnitude() {
        // 32 disks, clustered p = 4, 1-hour rebuild.
        let unprotected = array_mttf_hours(300_000.0, 32);
        let protected = mttdl_hours(300_000.0, 32, 4, 1.0).unwrap();
        assert!(protected / unprotected > 1e4, "redundancy must dominate");
        // Concretely: 9.375e8 / 96 hours ≈ 10⁸ years-ish scale.
        assert!((protected - 300_000.0f64.powi(2) / 96.0).abs() < 1.0);
    }

    #[test]
    fn declustering_tradeoff_is_visible() {
        // Declustered (g = d) exposes more disks per failure, but its
        // rebuild is much faster (the A3 measurement: ~10× at p = 16).
        let clustered = mttdl_hours(300_000.0, 32, 16, 10.0).unwrap();
        let declustered = mttdl_hours(300_000.0, 32, 32, 1.0).unwrap();
        assert!(
            declustered > clustered,
            "fast rebuild more than offsets the wider exposure"
        );
    }

    #[test]
    fn conversions_and_validation() {
        // A 1.4-second round, 1000 rounds ≈ 0.39 h.
        let h = rounds_to_hours(1000, 1.398);
        assert!((h - 0.3883).abs() < 1e-3);
        assert!(mttdl_hours(0.0, 32, 4, 1.0).is_err());
        assert!(mttdl_hours(3e5, 1, 4, 1.0).is_err());
        assert!(mttdl_hours(3e5, 32, 1, 1.0).is_err());
        assert!(mttdl_hours(3e5, 32, 64, 1.0).is_err());
        assert_eq!(array_mttf_hours(3e5, 0), f64::INFINITY);
    }
}
