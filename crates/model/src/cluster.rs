//! Cluster-tier capacity bounds, after the Scalable Distributed VoD
//! analysis (Viennot et al., INRIA RR-6496): a catalog of `K` videos
//! replicated over `N` servers, each with a stream (upload) capacity and
//! a storage capacity, can satisfy a demand only within three coupled
//! ceilings —
//!
//! * a **bandwidth bound**: total concurrent streams never exceed the
//!   sum of the servers' stream capacities ([`cluster_capacity_bound`],
//!   and [`degraded_cluster_capacity_bound`] once nodes go dark);
//! * a **placement bound**: concurrent streams of *one* video never
//!   exceed its replica count times the per-server capacity
//!   ([`clip_concurrency_bound`]) — replication, not raw bandwidth, caps
//!   how hot a single title may run;
//! * a **storage bound**: `K · r` replica copies must fit in the
//!   servers' aggregate storage ([`max_catalog_clips`]).
//!
//! `cms-cluster`'s gateway enforces the first two operationally; the
//! conformance harness and the paper-claims tests hold the simulated
//! cluster to all three. The per-node stream capacity fed into these
//! functions is the single-server model's number — the admission
//! controller's `nominal_capacity()`, itself bounded by
//! [`crate::capacity_bound`] — so the cluster bounds compose the §7
//! analysis instead of replacing it.

/// Bandwidth bound: the whole cluster can carry at most
/// `nodes × node_capacity` concurrent streams (every stream occupies a
/// slot on exactly one node).
#[must_use]
pub fn cluster_capacity_bound(node_capacity: u64, nodes: u32) -> u64 {
    node_capacity.saturating_mul(u64::from(nodes))
}

/// Bandwidth bound with `down_nodes` dark (failed or still rebuilding):
/// their capacity is simply gone, so the surviving bound is
/// `(nodes − down) × node_capacity`. The gateway's rolled-up admission
/// cap must sit at or below this line whenever nodes are out.
#[must_use]
pub fn degraded_cluster_capacity_bound(node_capacity: u64, nodes: u32, down_nodes: u32) -> u64 {
    cluster_capacity_bound(node_capacity, nodes.saturating_sub(down_nodes))
}

/// Placement bound: one clip replicated on `replication` nodes can be
/// streamed at most `replication × node_capacity` times concurrently —
/// only its replica holders can serve it, whatever the rest of the
/// cluster is doing. This is the VoD paper's core observation: catalog
/// placement, not aggregate bandwidth, limits single-title demand.
#[must_use]
pub fn clip_concurrency_bound(node_capacity: u64, replication: u32) -> u64 {
    node_capacity.saturating_mul(u64::from(replication))
}

/// Storage bound: the largest catalog `K` such that `K · replication`
/// clip copies of `clip_blocks` blocks each fit into `nodes` servers
/// with `node_storage_blocks` blocks of storage apiece.
///
/// Returns 0 when a single copy does not fit (degenerate geometry).
#[must_use]
pub fn max_catalog_clips(
    nodes: u32,
    replication: u32,
    clip_blocks: u64,
    node_storage_blocks: u64,
) -> u64 {
    let copy_cost = clip_blocks.saturating_mul(u64::from(replication.max(1)));
    if copy_cost == 0 {
        return 0;
    }
    node_storage_blocks.saturating_mul(u64::from(nodes)) / copy_cost
}

/// Exact duration, in rounds, of a cross-node rebuild that must re-source
/// `debt_blocks` blocks at `rebuild_rate` blocks per round (the
/// cluster-tier analogue of [`crate::rebuild_window_rounds`]; exact
/// rather than a window because the cluster rebuild is rate-limited by
/// construction, provided at least one source node stays up throughout).
#[must_use]
pub fn cluster_rebuild_rounds(debt_blocks: u64, rebuild_rate: u32) -> u64 {
    debt_blocks.div_ceil(u64::from(rebuild_rate.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_scales_with_nodes_and_degrades_linearly() {
        assert_eq!(cluster_capacity_bound(24, 64), 1536);
        assert_eq!(degraded_cluster_capacity_bound(24, 64, 0), 1536);
        assert_eq!(degraded_cluster_capacity_bound(24, 64, 2), 1488);
        assert_eq!(degraded_cluster_capacity_bound(24, 4, 4), 0);
        assert_eq!(degraded_cluster_capacity_bound(24, 4, 9), 0, "saturates, no underflow");
    }

    #[test]
    fn placement_bound_interpolates_between_one_node_and_the_cluster() {
        let node_cap = 24;
        let nodes = 16;
        for r in 1..=nodes {
            let clip = clip_concurrency_bound(node_cap, r);
            assert!(clip <= cluster_capacity_bound(node_cap, nodes));
            assert_eq!(clip, u64::from(r) * node_cap);
        }
        // Full replication is the only way a single title can use the
        // whole cluster.
        assert_eq!(
            clip_concurrency_bound(node_cap, nodes),
            cluster_capacity_bound(node_cap, nodes)
        );
    }

    #[test]
    fn storage_bound_trades_catalog_against_replication() {
        // 8 nodes × 1200 blocks, clips of 60 blocks.
        assert_eq!(max_catalog_clips(8, 1, 60, 1200), 160);
        assert_eq!(max_catalog_clips(8, 2, 60, 1200), 80);
        assert_eq!(max_catalog_clips(8, 4, 60, 1200), 40);
        assert_eq!(max_catalog_clips(8, 2, 0, 1200), 0, "zero-length clips degenerate");
    }

    #[test]
    fn rebuild_rounds_are_exact_ceiling_division() {
        assert_eq!(cluster_rebuild_rounds(0, 64), 0);
        assert_eq!(cluster_rebuild_rounds(1, 64), 1);
        assert_eq!(cluster_rebuild_rounds(64, 64), 1);
        assert_eq!(cluster_rebuild_rounds(65, 64), 2);
        assert_eq!(cluster_rebuild_rounds(100, 0), 100, "rate clamps to 1");
    }
}
