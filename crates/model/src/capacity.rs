//! Per-scheme capacity evaluation: one `(scheme, p)` point of Figure 5.

use cms_bibd::Design;
use cms_core::units::BitsPerSec;
use cms_core::{ContinuityBudget, CmsError, DiskParams, Scheme};
use serde::{Deserialize, Serialize};

/// Server-level inputs to the analytical model (the paper's Section 8
/// configuration: `d = 32`, Figure 1 disk, MPEG-1 playback, buffer `B`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInput {
    /// Number of disks `d`.
    pub d: u32,
    /// Total RAM buffer `B` in bytes.
    pub buffer_bytes: u64,
    /// Playback rate `r_p` in bits per second.
    pub playback_rate: BitsPerSec,
    /// Physical disk model.
    pub disk: DiskParams,
    /// Clip-library size in *blocks*, if the block size must also satisfy
    /// the §7 storage constraint `S ≤ (p−1)/p · d·C_d` (with
    /// `S = storage_blocks · b`). `None` leaves block sizing to the
    /// buffer constraint alone, as the paper's Figure 5 does.
    pub storage_blocks: Option<u64>,
    /// Charge the §3 footnote-2 extra seek: a disk failing *mid-round*
    /// can force one additional C-SCAN sweep to pick up reconstruction
    /// reads, so Equation 1 pays `3·t_seek` instead of `2·t_seek`.
    pub mid_round_failure: bool,
}

impl ModelInput {
    /// The paper's evaluation configuration with the given buffer size.
    #[must_use]
    pub fn sigmod96(buffer_bytes: u64) -> Self {
        ModelInput {
            d: 32,
            buffer_bytes,
            playback_rate: cms_core::units::mbps(1.5),
            disk: DiskParams::sigmod96(),
            storage_blocks: None,
            mid_round_failure: false,
        }
    }

    /// Enables the footnote-2 mid-round-failure seek charge.
    #[must_use]
    pub fn with_mid_round_failure(mut self) -> Self {
        self.mid_round_failure = true;
        self
    }

    /// Adds the storage constraint for a library of `blocks` stripe units.
    #[must_use]
    pub fn with_storage_blocks(mut self, blocks: u64) -> Self {
        self.storage_blocks = Some(blocks);
        self
    }

    /// Largest block size storable for parity overhead `(p−1)/p`, or
    /// `u64::MAX` when no storage constraint is set.
    fn storage_block_cap(&self, p: u32) -> u64 {
        self.storage_block_cap_m(p, 1)
    }

    /// [`Self::storage_block_cap`] with `m` redundancy shards per group:
    /// only `p − m` of every `p` disk blocks hold data.
    fn storage_block_cap_m(&self, p: u32, m: u32) -> u64 {
        match self.storage_blocks {
            None => u64::MAX,
            Some(blocks) => {
                let data_capacity =
                    u64::from(self.d) * self.disk.capacity / u64::from(p) * u64::from(p - m);
                (data_capacity / blocks.max(1)).max(1)
            }
        }
    }
}

/// A solved capacity point: the parameters that maximize concurrent
/// clips for one `(scheme, p)` combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// The scheme.
    pub scheme: Scheme,
    /// Parity group size `p`.
    pub p: u32,
    /// Redundancy shards per parity group `m`: 1 is the paper's XOR
    /// parity; the clustered parity-disk schemes can trade data disks for
    /// extra Reed–Solomon shards (`m >= 2`) to survive multi-disk
    /// failures. Serialized only when it departs from 1, so single-parity
    /// reports keep their historical byte layout.
    pub m: u32,
    /// Chosen block size `b` in bytes.
    pub block_bytes: u64,
    /// Per-disk (per-cluster for streaming RAID) round budget `q`.
    pub q: u32,
    /// Contingency reservation `f` (0 for schemes without one).
    pub f: u32,
    /// PGT rows `r` (declustered family; 0 otherwise).
    pub r: u32,
    /// Total concurrently serviceable clips, server-wide.
    pub total_clips: u32,
}

// Hand-rolled (de)serialization: `m` is emitted only when it departs from
// 1 and defaults to 1 on read, so every single-parity report and golden
// keeps its historical byte layout (the vendored derive has no
// `#[serde(default/skip_serializing_if)]`).
impl Serialize for CapacityPoint {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![
            ("scheme".to_string(), self.scheme.serialize()),
            ("p".to_string(), self.p.serialize()),
        ];
        if self.m != 1 {
            fields.push(("m".to_string(), self.m.serialize()));
        }
        fields.push(("block_bytes".to_string(), self.block_bytes.serialize()));
        fields.push(("q".to_string(), self.q.serialize()));
        fields.push(("f".to_string(), self.f.serialize()));
        fields.push(("r".to_string(), self.r.serialize()));
        fields.push(("total_clips".to_string(), self.total_clips.serialize()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for CapacityPoint {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for CapacityPoint"))?;
        let m = match fields.iter().find(|(k, _)| k == "m") {
            Some(_) => serde::from_field(fields, "m")?,
            None => 1,
        };
        Ok(CapacityPoint {
            scheme: serde::from_field(fields, "scheme")?,
            p: serde::from_field(fields, "p")?,
            m,
            block_bytes: serde::from_field(fields, "block_bytes")?,
            q: serde::from_field(fields, "q")?,
            f: serde::from_field(fields, "f")?,
            r: serde::from_field(fields, "r")?,
            total_clips: serde::from_field(fields, "total_clips")?,
        })
    }
}

/// Ceiling on any per-disk `q`: the disk streaming limit `r_d / r_p`.
fn q_ceiling(input: &ModelInput) -> u32 {
    (input.disk.transfer_rate / input.playback_rate).floor() as u32
}

/// Evaluates the capacity of `scheme` at parity group size `p`,
/// maximizing over block size and (where applicable) contingency `f`.
///
/// # Errors
///
/// Returns [`CmsError::InvalidParams`] for structurally impossible
/// combinations (`p > d`, streaming/clustered schemes with `p ∤ d`, flat
/// scheme with `p − 1 ≥ d`) and [`CmsError::InfeasibleConfig`] when no
/// block size supports even one clip.
pub fn capacity(scheme: Scheme, input: &ModelInput, p: u32) -> Result<CapacityPoint, CmsError> {
    capacity_with_lambda(scheme, input, p, 1)
}

/// Like [`capacity`], but accounts for a relaxed declustering design's
/// pair multiplicity `λ_max`: the per-disk contingency reserve becomes
/// `λ_max·f` (a failed disk can push reconstruction reads through up to
/// `λ_max` shared rows). `λ = 1` reproduces the paper's math exactly; the
/// simulator passes the *achieved* λ of the design it actually built so
/// its `(q, f, b)` choice matches what admission control can honor.
/// Ignored by schemes without a PGT.
///
/// # Errors
///
/// As for [`capacity`].
pub fn capacity_with_lambda(
    scheme: Scheme,
    input: &ModelInput,
    p: u32,
    lambda: u32,
) -> Result<CapacityPoint, CmsError> {
    if p < 2 || p > input.d {
        return Err(CmsError::invalid_params("need 2 <= p <= d"));
    }
    if lambda == 0 {
        return Err(CmsError::invalid_params("λ must be >= 1"));
    }
    match scheme {
        Scheme::DeclusteredParity | Scheme::DynamicReservation => {
            declustered(scheme, input, p, lambda)
        }
        Scheme::PrefetchFlat => prefetch_flat(input, p),
        Scheme::PrefetchParityDisks => prefetch_parity_disks(input, p, 1),
        Scheme::StreamingRaid => streaming_raid(input, p, 1),
        Scheme::NonClustered => non_clustered(input, p),
    }
}

/// Like [`capacity`], but with `m` Reed–Solomon redundancy shards per
/// group instead of the paper's single XOR parity: each `p`-disk cluster
/// keeps `k = p − m` data disks and survives any `m` concurrent disk
/// losses. `m = 1` reproduces [`capacity`] exactly (same integer
/// arithmetic, same chosen `(q, b)`); `m >= 2` is defined only for the
/// clustered parity-disk schemes (pre-fetching with parity disks,
/// streaming RAID).
///
/// # Errors
///
/// As for [`capacity`], plus [`CmsError::InvalidParams`] when `m` is out
/// of range (`1 <= m < p`) or the scheme cannot carry multiple shards.
pub fn capacity_with_redundancy(
    scheme: Scheme,
    input: &ModelInput,
    p: u32,
    m: u32,
) -> Result<CapacityPoint, CmsError> {
    if m == 0 || m >= p {
        return Err(CmsError::invalid_params("need 1 <= m < p"));
    }
    if m == 1 {
        return capacity(scheme, input, p);
    }
    match scheme {
        Scheme::PrefetchParityDisks => prefetch_parity_disks(input, p, m),
        Scheme::StreamingRaid => streaming_raid(input, p, m),
        _ => Err(CmsError::invalid_params(format!(
            "{scheme} supports only single-parity groups (m = 1)"
        ))),
    }
}

/// §7.1: buffer constraint `2(q−f)(d−1)·b + (q−f)·p·b ≤ B`; Equation 1 for
/// continuity; `f` swept from 1 until `r·f ≥ q − f`; maximize `q − f`.
///
/// The dynamic-reservation scheme shares this capacity math: it reserves
/// the same worst-case contingency, just lazily, so its *analytical*
/// ceiling coincides (its advantage is responsiveness under partial load,
/// which the simulator measures).
fn declustered(
    scheme: Scheme,
    input: &ModelInput,
    p: u32,
    lambda: u32,
) -> Result<CapacityPoint, CmsError> {
    let d = input.d;
    let r = Design::ideal_replication(d, p);
    let mut best: Option<CapacityPoint> = None;
    // Sweep f; stop once the row constraint r·f ≥ q−λf is satisfiable for
    // the best q seen (the paper's inner repeat loop).
    for f in 1..=q_ceiling(input) {
        // b is largest under the buffer constraint given (q, f):
        // b ≤ B / ((q−λf)(2(d−1)+p)).
        let denom_per_clip = u64::from(2 * (d - 1) + p);
        let Some((q, b)) = best_q(input, p, |q| {
            let clips = q.checked_sub(lambda * f)?;
            if clips == 0 {
                return None;
            }
            Some(input.buffer_bytes / (u64::from(clips) * denom_per_clip))
        }) else {
            continue;
        };
        let clips = q - lambda * f;
        // Row-capacity requirement: at most f clips per (disk, row), so a
        // disk can host at most r·f clips.
        if r * f < clips {
            continue;
        }
        let point = CapacityPoint {
            scheme,
            p,
            m: 1,
            block_bytes: b,
            q,
            f,
            r,
            total_clips: clips * d,
        };
        if best.is_none_or(|bst| point.total_clips > bst.total_clips) {
            best = Some(point);
        }
    }
    best.ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("declustered p={p}: no feasible (q, f)"),
    })
}

/// §7.2, flat parity: buffer `p/2·b·(q−f)·d ≤ B` (staggered-group
/// optimization); `f` swept until `f·(d−(p−1)) ≥ q−f`.
fn prefetch_flat(input: &ModelInput, p: u32) -> Result<CapacityPoint, CmsError> {
    let d = input.d;
    if p > d {
        return Err(CmsError::invalid_params("flat scheme needs p−1 < d"));
    }
    let mut best: Option<CapacityPoint> = None;
    for f in 1..=q_ceiling(input) {
        let Some((q, b)) = best_q(input, p, |q| {
            let clips = q.checked_sub(f)?;
            if clips == 0 {
                return None;
            }
            // b ≤ 2B / (p·(q−f)·d)
            Some(2 * input.buffer_bytes / (u64::from(p) * u64::from(clips) * u64::from(d)))
        }) else {
            continue;
        };
        let clips = q - f;
        // Parity-collision constraint: at most f clips per parity-target
        // disk; each disk is parity target for d−(p−1) distinct residues.
        if f * (d - (p - 1)) < clips {
            continue;
        }
        let point = CapacityPoint {
            scheme: Scheme::PrefetchFlat,
            p,
            m: 1,
            block_bytes: b,
            q,
            f,
            r: 0,
            total_clips: clips * d,
        };
        if best.is_none_or(|bst| point.total_clips > bst.total_clips) {
            best = Some(point);
        }
    }
    best.ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("prefetch-flat p={p}: no feasible (q, f)"),
    })
}

/// §7.2, dedicated parity disks, generalized to `m` redundancy disks per
/// cluster: effective data disks `d·k/p` with `k = p − m`, buffer
/// `(k+m)/2·b·q·d·k/p ≤ B` (each clip's group holds `k` data blocks read
/// a window ahead, plus `m` shard reads charged on failure), no
/// contingency. `m = 1` is the paper's formula, term for term.
fn prefetch_parity_disks(input: &ModelInput, p: u32, m: u32) -> Result<CapacityPoint, CmsError> {
    let d = input.d;
    if !d.is_multiple_of(p) {
        return Err(CmsError::invalid_params("parity-disk scheme needs p | d"));
    }
    let k = p - m;
    let data_disks = u64::from(d) * u64::from(k) / u64::from(p);
    let (q, b) = best_q(input, p, |q| {
        if q == 0 {
            return None;
        }
        // b ≤ 2B / ((k+m)·q·d·k/p); m = 1 collapses to the paper's
        // 2B / (q·d·(p−1)) since d·k/p is exact (p | d).
        Some(2 * input.buffer_bytes / (u64::from(k + m) * u64::from(q) * data_disks))
    })
    .ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("prefetch-parity-disks p={p} m={m}: infeasible"),
    })?;
    Ok(CapacityPoint {
        scheme: Scheme::PrefetchParityDisks,
        p,
        m,
        block_bytes: b,
        q,
        f: 0,
        r: 0,
        total_clips: (u64::from(q) * data_disks) as u32,
    })
}

/// §7.3, streaming RAID, generalized to `m` redundancy disks per cluster
/// (`k = p − m` data disks): clusters of `p` act as a logical disk serving
/// `q` clips over long rounds of `k·b/r_p`; buffer `2k·b·q·d/p ≤ B`.
/// `m = 1` is the paper's formula, term for term.
fn streaming_raid(input: &ModelInput, p: u32, m: u32) -> Result<CapacityPoint, CmsError> {
    let d = input.d;
    if !d.is_multiple_of(p) {
        return Err(CmsError::invalid_params("streaming RAID needs p | d"));
    }
    let k = p - m;
    let clusters = u64::from(d / p);
    // Continuity: 2·t_seek + q·(t_rot + t_settle + b/r_d) ≤ k·b/r_p.
    // With b(q) from the buffer bound, find max q by downward scan.
    let disk = &input.disk;
    let cap = input.storage_block_cap_m(p, m);
    let mut best: Option<(u32, u64)> = None;
    for q in 1..=q_ceiling(input) * p {
        let b = (input.buffer_bytes * u64::from(p)
            / (2 * u64::from(k) * u64::from(q) * u64::from(d)))
        .min(cap);
        if b == 0 {
            break;
        }
        let long_round =
            u64::from(k) as f64 * cms_core::units::transfer_time(b, input.playback_rate);
        let per_block = disk.block_service_time(b);
        let seeks = if input.mid_round_failure { 3.0 } else { 2.0 };
        let lhs = seeks * disk.seek_worst + f64::from(q) * per_block;
        if lhs <= long_round && best.is_none_or(|(bq, _)| q > bq) {
            best = Some((q, b));
        }
    }
    let (q, b) = best.ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("streaming RAID p={p} m={m}: infeasible"),
    })?;
    Ok(CapacityPoint {
        scheme: Scheme::StreamingRaid,
        p,
        m,
        block_bytes: b,
        q,
        f: 0,
        r: 0,
        total_clips: (u64::from(q) * clusters) as u32,
    })
}

/// §7.4, non-clustered: parity-disk placement but double buffering in
/// normal mode; on failure the failed cluster's clips grow to `p/2·b`.
/// Buffer: `2b·q·(d/p − 1)(p−1) + p/2·b·q·(p−1) ≤ B`.
fn non_clustered(input: &ModelInput, p: u32) -> Result<CapacityPoint, CmsError> {
    let d = input.d;
    if !d.is_multiple_of(p) {
        return Err(CmsError::invalid_params("non-clustered needs p | d"));
    }
    let data_disks = u64::from(d) * u64::from(p - 1) / u64::from(p);
    // Per the buffer constraint, with q clips per data disk:
    //   b ≤ 2B / (q(p−1)·(4(d/p − 1) + p))
    // (multiplying the constraint through by 2 to stay in integers).
    let weight = u64::from(p - 1) * (4 * (u64::from(d / p) - 1) + u64::from(p));
    let (q, b) = best_q(input, p, |q| {
        if q == 0 || weight == 0 {
            return None;
        }
        Some(2 * input.buffer_bytes / (u64::from(q) * weight))
    })
    .ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("non-clustered p={p}: infeasible"),
    })?;
    Ok(CapacityPoint {
        scheme: Scheme::NonClustered,
        p,
        m: 1,
        block_bytes: b,
        q,
        f: 0,
        r: 0,
        total_clips: (u64::from(q) * data_disks) as u32,
    })
}

/// Finds the largest `q` for which Equation 1 holds when the block size is
/// `block_for(q)` (the buffer-constraint bound). Returns `(q, b)`.
///
/// The interaction is monotone in the right direction — growing `q`
/// shrinks `b`, which shrinks the round faster than the retrieval load —
/// but we scan exhaustively anyway; `q` is bounded by `r_d / r_p ≈ 30`.
fn best_q(
    input: &ModelInput,
    p: u32,
    block_for: impl Fn(u32) -> Option<u64>,
) -> Option<(u32, u64)> {
    let cap = input.storage_block_cap(p);
    let mut best = None;
    for q in 1..=q_ceiling(input) {
        let Some(b) = block_for(q).map(|b| b.min(cap)) else { continue };
        if b == 0 {
            continue;
        }
        let solved = if input.mid_round_failure {
            ContinuityBudget::with_mid_round_failure(&input.disk, b, input.playback_rate)
        } else {
            ContinuityBudget::solve(&input.disk, b, input.playback_rate)
        };
        match solved {
            Ok(budget) if budget.q >= q => best = Some((q, b)),
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::units::{gib, mib};

    fn small() -> ModelInput {
        ModelInput::sigmod96(mib(256))
    }

    fn large() -> ModelInput {
        ModelInput::sigmod96(gib(2))
    }

    const PAPER_PS: [u32; 5] = [2, 4, 8, 16, 32];

    #[test]
    fn all_schemes_solve_at_paper_points() {
        for p in PAPER_PS {
            for scheme in Scheme::FIGURE_SCHEMES {
                let point = capacity(scheme, &small(), p)
                    .unwrap_or_else(|e| panic!("{scheme} p={p}: {e}"));
                assert!(point.total_clips > 0, "{scheme} p={p}");
                assert!(point.block_bytes > 0);
                assert!(point.q > 0);
            }
        }
    }

    #[test]
    fn declustered_declines_with_p() {
        // Figure 5: both declustered and prefetch-flat serve fewer clips
        // as p grows.
        for input in [small(), large()] {
            let clips: Vec<u32> = PAPER_PS
                .iter()
                .map(|&p| capacity(Scheme::DeclusteredParity, &input, p).unwrap().total_clips)
                .collect();
            for w in clips.windows(2) {
                assert!(w[1] <= w[0], "declustered must decline: {clips:?}");
            }
        }
    }

    #[test]
    fn prefetch_flat_declines_with_p() {
        for input in [small(), large()] {
            let clips: Vec<u32> = PAPER_PS
                .iter()
                .map(|&p| capacity(Scheme::PrefetchFlat, &input, p).unwrap().total_clips)
                .collect();
            for w in clips.windows(2) {
                assert!(w[1] <= w[0], "prefetch-flat must decline: {clips:?}");
            }
        }
    }

    #[test]
    fn parity_disk_schemes_rise_then_fall() {
        // Figure 5: streaming RAID / prefetch-with-parity-disk /
        // non-clustered rise from p = 2 (half the disks idle as parity) to
        // a peak near p = 8..16, then fall as buffers dominate.
        for scheme in [
            Scheme::StreamingRaid,
            Scheme::PrefetchParityDisks,
            Scheme::NonClustered,
        ] {
            for input in [small(), large()] {
                let clips: Vec<u32> = PAPER_PS
                    .iter()
                    .map(|&p| capacity(scheme, &input, p).unwrap().total_clips)
                    .collect();
                assert!(
                    clips[1] > clips[0],
                    "{scheme}: p=4 must beat p=2, got {clips:?}"
                );
                let peak = clips.iter().copied().max().unwrap();
                assert!(
                    clips[4] < peak,
                    "{scheme}: p=32 must be below the peak, got {clips:?}"
                );
            }
        }
    }

    #[test]
    fn declustered_wins_small_buffer_flat_wins_large() {
        // The paper's headline: declustered best at 256 MB; at 2 GB the
        // prefetch-without-parity-disk scheme overtakes it.
        let at = |scheme, input: &ModelInput, p| capacity(scheme, input, p).unwrap().total_clips;
        // Small buffer, small p: declustered ahead of the parity-disk
        // schemes.
        assert!(at(Scheme::DeclusteredParity, &small(), 4) > at(Scheme::StreamingRaid, &small(), 4));
        assert!(
            at(Scheme::DeclusteredParity, &small(), 4)
                > at(Scheme::PrefetchParityDisks, &small(), 4)
        );
        // Large buffer: prefetch-flat beats declustered (bandwidth, not
        // buffer, becomes the binding constraint).
        assert!(
            at(Scheme::PrefetchFlat, &large(), 8) > at(Scheme::DeclusteredParity, &large(), 8),
            "flat {} vs declustered {}",
            at(Scheme::PrefetchFlat, &large(), 8),
            at(Scheme::DeclusteredParity, &large(), 8)
        );
    }

    #[test]
    fn non_clustered_peaks_at_16() {
        // "the non-clustered and the pre-fetching with parity disk schemes
        // perform the best for a parity group size of 16".
        let clips: Vec<u32> = PAPER_PS
            .iter()
            .map(|&p| capacity(Scheme::NonClustered, &small(), p).unwrap().total_clips)
            .collect();
        let peak_idx = clips
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            PAPER_PS[peak_idx] == 16 || PAPER_PS[peak_idx] == 8,
            "non-clustered peak at p={} ({clips:?})",
            PAPER_PS[peak_idx]
        );
    }

    #[test]
    fn larger_buffer_never_hurts() {
        for scheme in Scheme::FIGURE_SCHEMES {
            for p in PAPER_PS {
                let s = capacity(scheme, &small(), p).unwrap().total_clips;
                let l = capacity(scheme, &large(), p).unwrap().total_clips;
                assert!(l >= s, "{scheme} p={p}: 2GB ({l}) < 256MB ({s})");
            }
        }
    }

    #[test]
    fn dynamic_reservation_matches_declustered_analytically() {
        for p in PAPER_PS {
            let a = capacity(Scheme::DeclusteredParity, &small(), p).unwrap();
            let b = capacity(Scheme::DynamicReservation, &small(), p).unwrap();
            assert_eq!(a.total_clips, b.total_clips);
            assert_eq!(a.block_bytes, b.block_bytes);
        }
    }

    #[test]
    fn row_constraint_is_respected() {
        for p in PAPER_PS {
            let pt = capacity(Scheme::DeclusteredParity, &small(), p).unwrap();
            assert!(
                pt.r * pt.f >= pt.q - pt.f,
                "p={p}: r·f = {} < q−f = {}",
                pt.r * pt.f,
                pt.q - pt.f
            );
        }
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(capacity(Scheme::DeclusteredParity, &small(), 1).is_err());
        assert!(capacity(Scheme::DeclusteredParity, &small(), 33).is_err());
        assert!(capacity(Scheme::StreamingRaid, &small(), 12).is_err()); // 12 ∤ 32
        assert!(capacity(Scheme::PrefetchParityDisks, &small(), 6).is_err());
    }

    #[test]
    fn mid_round_failure_charge_never_helps() {
        for scheme in Scheme::FIGURE_SCHEMES {
            for p in PAPER_PS {
                let normal = capacity(scheme, &small(), p).unwrap();
                let strict =
                    capacity(scheme, &small().with_mid_round_failure(), p).unwrap();
                assert!(
                    strict.total_clips <= normal.total_clips,
                    "{scheme} p={p}: extra seek must not increase capacity"
                );
            }
        }
        // ... and it actually bites somewhere (q is seek-sensitive at
        // small blocks).
        let any_drop = Scheme::FIGURE_SCHEMES.iter().any(|&s| {
            PAPER_PS.iter().any(|&p| {
                let a = capacity(s, &small(), p).map(|x| x.total_clips).unwrap_or(0);
                let b = capacity(s, &small().with_mid_round_failure(), p)
                    .map(|x| x.total_clips)
                    .unwrap_or(0);
                b < a
            })
        });
        assert!(any_drop, "the charge should be measurable somewhere");
    }

    #[test]
    fn points_serialize() {
        let pt = capacity(Scheme::DeclusteredParity, &small(), 4).unwrap();
        let json = serde_json::to_string(&pt).unwrap();
        let back: CapacityPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pt);
    }
}
