//! The conformance contract: the model-side bounds the fuzz harness
//! holds the engine to (DESIGN.md §11).
//!
//! Three accessors, all deliberately conservative in the direction that
//! makes a violation meaningful:
//!
//! * [`capacity_bound`] — a hard ceiling on concurrently active streams.
//!   The engine exceeding it is a bug, full stop.
//! * [`capacity_tolerance`] — the fraction of that ceiling a *saturated,
//!   fault-free* run must actually reach. The engine falling below it
//!   means admission is leaving paper-guaranteed capacity on the table.
//! * [`rebuild_window_rounds`] — how long a light-load rebuild may take.
//!   The engine finishing later means rebuild is starved beyond what the
//!   slack-bandwidth analysis allows.

use crate::capacity::CapacityPoint;
use cms_core::Scheme;

/// Hard upper bound on concurrently active streams for an engine run at
/// this capacity point on a `d`-disk array.
///
/// For five of the six schemes this is exactly the analytical clip count
/// ([`CapacityPoint::total_clips`]) — their admission controllers
/// enforce the same per-disk/per-group arithmetic the model evaluates,
/// so measured capacity can meet but never exceed it. Dynamic
/// reservation is the exception the paper calls out: it reserves
/// contingency lazily, so favorable phase mixes can beat the static
/// worst-case count; its ceiling is the structural `d · (q − 1)` (one
/// slot per disk is always held back for the worst-case contingency
/// round).
#[must_use]
pub fn capacity_bound(point: &CapacityPoint, d: u32) -> u64 {
    match point.scheme {
        Scheme::DynamicReservation => {
            u64::from(d) * u64::from(point.q.saturating_sub(1))
        }
        _ => u64::from(point.total_clips),
    }
}

/// Fraction of [`capacity_bound`] a saturated fault-free run must reach
/// (measured as peak simultaneously-active streams).
///
/// Why not 1.0: the engine admits whole clips from a finite catalog with
/// randomized start-disk jitter, so a saturated run fragments — phase
/// classes fill unevenly and the last few slots of the analytical count
/// are only reachable by a perfectly balanced mix. The stated tolerances
/// are calibrated against saturated runs across the generator's geometry
/// range and ratcheted as tight as those runs support; a measurement
/// below the tolerance is a real admission regression, not noise.
///
/// Dynamic reservation gets the loosest bound: its ceiling is the
/// structural `d · (q − 1)`, which the static analysis itself says is
/// only approachable, not reachable, under worst-case mixes.
#[must_use]
pub fn capacity_tolerance(scheme: Scheme) -> f64 {
    match scheme {
        Scheme::DeclusteredParity => 0.50,
        Scheme::DynamicReservation => 0.35,
        Scheme::PrefetchParityDisks => 0.50,
        Scheme::PrefetchFlat => 0.50,
        Scheme::StreamingRaid => 0.50,
        Scheme::NonClustered => 0.50,
    }
}

/// Upper bound, in rounds, on how long the background rebuild of a disk
/// holding `blocks` blocks may run under *light load* (the only regime
/// where the model guarantees slack; clustered schemes reserve no
/// contingency bandwidth, so a saturated array may starve rebuild
/// indefinitely and the harness does not assert this invariant there).
///
/// The engine keeps at most `2·d` rebuild blocks in flight and each
/// block needs `p − 1` survivor reads, served from the `d − 1` healthy
/// disks' per-round budget `q`. A lightly loaded array therefore
/// rebuilds at least `min(2·d, (d−1)·q/(p−1))` blocks per round; the
/// window is that rate's ceiling-division with a 4× safety margin plus a
/// flat start-up allowance (queue priming, EDF slack: rebuild reads
/// carry the lowest deadline priority, so they only drain after every
/// real fetch).
#[must_use]
pub fn rebuild_window_rounds(point: &CapacityPoint, d: u32, blocks: u64) -> u64 {
    let survivors = u64::from(d.saturating_sub(1)).max(1);
    let reads_per_block = u64::from(point.p.saturating_sub(1)).max(1);
    let by_bandwidth = survivors * u64::from(point.q) / reads_per_block;
    let by_window = 2 * u64::from(d);
    let rate = by_bandwidth.min(by_window).max(1);
    let base = blocks.div_ceil(rate);
    4 * base + 8 * u64::from(d) + 32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{capacity, ModelInput};

    fn input() -> ModelInput {
        let mut inp = ModelInput::sigmod96(256 << 20);
        inp.d = 8;
        inp
    }

    #[test]
    fn bound_is_total_clips_for_static_schemes() {
        for scheme in [
            Scheme::DeclusteredParity,
            Scheme::PrefetchParityDisks,
            Scheme::PrefetchFlat,
            Scheme::StreamingRaid,
            Scheme::NonClustered,
        ] {
            let point = capacity(scheme, &input(), 4).unwrap();
            assert_eq!(capacity_bound(&point, 8), u64::from(point.total_clips), "{scheme}");
        }
    }

    #[test]
    fn dynamic_bound_is_structural_and_dominates_static() {
        let point = capacity(Scheme::DynamicReservation, &input(), 4).unwrap();
        let bound = capacity_bound(&point, 8);
        assert_eq!(bound, 8 * u64::from(point.q - 1));
        assert!(bound >= u64::from(point.total_clips));
    }

    #[test]
    fn tolerances_are_proper_fractions() {
        for scheme in Scheme::ALL {
            let t = capacity_tolerance(scheme);
            assert!(t > 0.0 && t <= 1.0, "{scheme}: {t}");
        }
    }

    #[test]
    fn rebuild_window_grows_with_blocks_and_never_zero() {
        let point = capacity(Scheme::DeclusteredParity, &input(), 4).unwrap();
        let w0 = rebuild_window_rounds(&point, 8, 0);
        let w1 = rebuild_window_rounds(&point, 8, 500);
        let w2 = rebuild_window_rounds(&point, 8, 5_000);
        assert!(w0 > 0);
        assert!(w1 > w0);
        assert!(w2 > w1);
    }
}
