//! The paper's Figure 4: `computeOptimal` — choosing the parity group
//! size `p`, block size `b` and contingency `f` that maximize the number
//! of concurrently serviceable clips.

use crate::capacity::{
    capacity, capacity_with_lambda, capacity_with_redundancy, CapacityPoint, ModelInput,
};
use cms_bibd::{best_design, Design, DesignRequest};
use cms_core::{CmsError, Scheme};

/// The storage-driven lower bound on the parity group size: only
/// `(p−1)/p` of the array holds data, so storing `storage_bytes` of clips
/// on `d` disks of capacity `cd` requires
/// `p ≥ d·C_d / (d·C_d − S)` (Section 7).
///
/// Returns `None` when the clips do not fit even without parity.
#[must_use]
pub fn p_min(d: u32, cd: u64, storage_bytes: u64) -> Option<u32> {
    let total = u64::from(d) * cd;
    if storage_bytes >= total {
        return None;
    }
    let free = total - storage_bytes;
    // ceil(total / free), clamped to at least 2 (a parity group needs a
    // data and a parity block).
    Some((total.div_ceil(free) as u32).max(2))
}

/// Figure 4's `computeOptimal`: sweeps `p` from `p_min` to `d` and returns
/// the capacity-maximizing point for `scheme`. `exact_designs_only`
/// reproduces the paper's "if a BIBD exists" guard for the declustered
/// family (skipping `p` values with no exact λ = 1 design); with it off,
/// the balanced fallback makes every `p` admissible.
///
/// # Errors
///
/// Returns [`CmsError::InfeasibleConfig`] when no `p` in range yields a
/// feasible configuration.
pub fn compute_optimal(
    scheme: Scheme,
    input: &ModelInput,
    p_lower: u32,
    exact_designs_only: bool,
) -> Result<CapacityPoint, CmsError> {
    let mut best: Option<CapacityPoint> = None;
    for p in p_lower.max(2)..=input.d {
        if scheme.needs_pgt() && exact_designs_only && !Design::lambda1_admissible(input.d, p) {
            continue;
        }
        let Ok(point) = capacity(scheme, input, p) else {
            continue;
        };
        if best.is_none_or(|b| point.total_clips > b.total_clips) {
            best = Some(point);
        }
    }
    best.ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("{scheme}: no feasible p in {}..={}", p_lower.max(2), input.d),
    })
}

/// Solves the capacity point a *simulated/deployed* server should use for
/// `(scheme, p)`: for the declustered family it first constructs the
/// actual design (seeded) and feeds its achieved pair multiplicity
/// `λ_max` into the capacity math, so the chosen `(q, f, b)` are exactly
/// honorable by admission control. Other schemes are unaffected.
///
/// # Errors
///
/// Propagates [`capacity_with_lambda`]'s errors; additionally returns
/// [`CmsError::DesignUnavailable`] when no design exists for `(d, p)`.
pub fn tuned_point(
    scheme: Scheme,
    input: &ModelInput,
    p: u32,
    seed: u64,
) -> Result<CapacityPoint, CmsError> {
    let lambda = if scheme.needs_pgt() {
        best_design(DesignRequest { v: input.d, k: p, allow_fallback: true, seed })
            .ok_or_else(|| CmsError::DesignUnavailable {
                reason: format!("no design for (d = {}, p = {p})", input.d),
            })?
            .stats()
            .lambda_max
    } else {
        1
    };
    capacity_with_lambda(scheme, input, p, lambda)
}

/// [`tuned_point`] with `m` Reed–Solomon redundancy shards per group.
/// `m = 1` defers to [`tuned_point`] exactly; `m >= 2` is defined only
/// for the clustered parity-disk schemes (which have no PGT, so the λ
/// tuning is moot and [`capacity_with_redundancy`] applies directly).
///
/// # Errors
///
/// As for [`tuned_point`] and [`capacity_with_redundancy`].
pub fn tuned_point_with_redundancy(
    scheme: Scheme,
    input: &ModelInput,
    p: u32,
    m: u32,
    seed: u64,
) -> Result<CapacityPoint, CmsError> {
    if m == 1 {
        return tuned_point(scheme, input, p, seed);
    }
    capacity_with_redundancy(scheme, input, p, m)
}

/// `tuned_point` maximized over `p` (the deployable analogue of
/// [`compute_optimal`]).
///
/// # Errors
///
/// Returns [`CmsError::InfeasibleConfig`] when no `p` is feasible.
pub fn tuned_optimal(
    scheme: Scheme,
    input: &ModelInput,
    seed: u64,
) -> Result<CapacityPoint, CmsError> {
    let mut best: Option<CapacityPoint> = None;
    for p in 2..=input.d {
        let Ok(point) = tuned_point(scheme, input, p, seed) else { continue };
        if best.is_none_or(|b| point.total_clips > b.total_clips) {
            best = Some(point);
        }
    }
    best.ok_or_else(|| CmsError::InfeasibleConfig {
        reason: format!("{scheme}: no feasible p in 2..={}", input.d),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::units::{gib, mib};

    #[test]
    fn p_min_matches_formula() {
        // d·C_d = 64 GB. Storing 32 GB leaves half free → p ≥ 2.
        assert_eq!(p_min(32, gib(2), gib(32)), Some(2));
        // Storing 48 GB leaves a quarter free → p ≥ 4.
        assert_eq!(p_min(32, gib(2), gib(48)), Some(4));
        // Storing 62 GB leaves 2 GB free → p ≥ 32.
        assert_eq!(p_min(32, gib(2), gib(62)), Some(32));
        // Does not fit.
        assert_eq!(p_min(32, gib(2), gib(64)), None);
        assert_eq!(p_min(32, gib(2), gib(65)), None);
        // Tiny library: clamped to 2.
        assert_eq!(p_min(32, gib(2), gib(1)), Some(2));
    }

    #[test]
    fn optimal_beats_or_matches_every_single_point() {
        let input = ModelInput::sigmod96(mib(256));
        for scheme in Scheme::FIGURE_SCHEMES {
            let best = compute_optimal(scheme, &input, 2, false).unwrap();
            for p in [2u32, 4, 8, 16, 32] {
                if let Ok(pt) = capacity(scheme, &input, p) {
                    assert!(
                        best.total_clips >= pt.total_clips,
                        "{scheme}: optimal {} < point p={p} {}",
                        best.total_clips,
                        pt.total_clips
                    );
                }
            }
        }
    }

    #[test]
    fn exact_guard_restricts_declustered_choices() {
        let input = ModelInput::sigmod96(mib(256));
        let exact = compute_optimal(Scheme::DeclusteredParity, &input, 2, true).unwrap();
        // Only p = 2 and p = 32 admit exact designs at d = 32; the guard
        // must pick one of them.
        assert!(
            exact.p == 2 || exact.p == 32,
            "exact-only optimal picked p = {}",
            exact.p
        );
        let relaxed = compute_optimal(Scheme::DeclusteredParity, &input, 2, false).unwrap();
        assert!(relaxed.total_clips >= exact.total_clips);
    }

    #[test]
    fn p_lower_bound_is_respected() {
        let input = ModelInput::sigmod96(gib(2));
        let best = compute_optimal(Scheme::StreamingRaid, &input, 8, false).unwrap();
        assert!(best.p >= 8);
    }

    #[test]
    fn tuned_point_respects_achieved_lambda() {
        let input = ModelInput::sigmod96(mib(256));
        let paper = capacity(Scheme::DeclusteredParity, &input, 8).unwrap();
        let tuned = tuned_point(Scheme::DeclusteredParity, &input, 8, 1).unwrap();
        assert!(tuned.total_clips <= paper.total_clips);
        // λ = 1 exists at p = 2: identical results.
        let a = capacity(Scheme::DeclusteredParity, &input, 2).unwrap();
        let b = tuned_point(Scheme::DeclusteredParity, &input, 2, 1).unwrap();
        assert_eq!(a.total_clips, b.total_clips);
    }

    #[test]
    fn tuned_optimal_picks_best_p() {
        let input = ModelInput::sigmod96(mib(256));
        for scheme in Scheme::ALL {
            let best = tuned_optimal(scheme, &input, 1).unwrap();
            assert!(best.total_clips > 0, "{scheme}");
        }
    }

    #[test]
    fn infeasible_range_errors() {
        let mut input = ModelInput::sigmod96(mib(256));
        input.buffer_bytes = 1024; // can't buffer anything
        assert!(compute_optimal(Scheme::DeclusteredParity, &input, 2, false).is_err());
    }
}
