//! Cluster-tier conformance: random small clusters (2–4 nodes) held to
//! the **cluster conservation contract** — per-node engine metrics must
//! sum exactly to the gateway's cluster-level accounting, under healthy
//! runs, node failures, migrations and cross-node rebuilds alike.
//!
//! The single-node families (DESIGN.md §11) hold one engine to the
//! analytical model; this module holds the *composition* to itself:
//!
//! * every gateway arrival is routed, shed by the cluster cap, or
//!   unroutable — nothing vanishes;
//! * every routed arrival (plus every migration) lands on exactly one
//!   node, so `Σ node.arrivals == routed + migrations`;
//! * node-level admissions, completions, hiccups, stream losses and
//!   served blocks roll up exactly to the cluster metrics;
//! * the per-round report stream sums to the final metrics; and
//! * the whole run is invariant under the node-stepping worker count.

use crate::invariants::{InvariantId, Violation};
use cms_cluster::{ClusterConfig, ClusterRun, ClusterSim};
use cms_core::{CmsError, Scheme};
use cms_core::NodeId;
use cms_fault::{FaultEvent, FaultSchedule, ScheduledEvent};
use cms_sim::SimConfig;
use proptest::{Strategy, TestRng};

/// One generated cluster conformance case: a 2–4 node cluster of the
/// standard small engine geometry behind the gateway, with an optional
/// node-scoped fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCase {
    /// Nodes in the cluster (2–4: the smallest clusters where routing,
    /// replication and migration are all non-trivial).
    pub nodes: u32,
    /// Replication degree (1..=nodes).
    pub replication: u32,
    /// Cluster catalog size in clips.
    pub clips: u64,
    /// Clip length in blocks.
    pub clip_len: u64,
    /// Gateway Poisson rate in milli-arrivals per round.
    pub arrival_milli: u64,
    /// Cluster rounds to simulate.
    pub rounds: u64,
    /// Placement / workload / node seed.
    pub seed: u64,
    /// Blocks per round shipped to a rebuilding node.
    pub rebuild_rate: u32,
    /// Node-stepping worker threads.
    pub workers: usize,
    /// Node-scoped fault schedule (`fail-node` / `repair-node` only).
    pub faults: FaultSchedule,
}

impl ClusterCase {
    /// Builds the ready-to-run cluster configuration.
    #[must_use]
    pub fn to_config(&self) -> ClusterConfig {
        let node = SimConfig {
            scheme: Scheme::DeclusteredParity,
            d: 8,
            p: 4,
            m: 1,
            q: 8,
            f: 2,
            block_bytes: 1 << 20,
            catalog_clips: 1, // overridden per node by the placement map
            clip_len: self.clip_len,
            clip_len_spread: 0,
            arrival_rate: 0.0, // the gateway generates all arrivals
            zipf_theta: 0.0,
            rounds: self.rounds,
            failure: None,
            faults: None,
            degraded_admission: false,
            verify_parity: false,
            content_bytes: 256,
            seed: self.seed,
            admission_scan: 64,
            aging_limit: 200,
            auto_rebuild: false,
            threads: 1,
            trace: cms_sim::TraceSpec::off(),
        };
        ClusterConfig {
            nodes: self.nodes,
            replication: self.replication,
            catalog_clips: self.clips,
            node,
            arrival_rate: self.arrival_milli as f64 / 1000.0,
            zipf_theta: 0.0,
            rounds: self.rounds,
            rebuild_rate: self.rebuild_rate,
            rebuild_fanout: 2,
            faults: (!self.faults.is_empty()).then(|| self.faults.clone()),
            seed: self.seed,
            threads: self.workers,
            trace: cms_sim::TraceSpec::off(),
        }
    }

    /// The same case with a different worker count — the determinism
    /// replays.
    #[must_use]
    pub fn with_workers(&self, workers: usize) -> Self {
        ClusterCase { workers, ..self.clone() }
    }
}

/// A [`Strategy`] producing [`ClusterCase`]s: 2–4 nodes, replication up
/// to the node count (biased toward `r >= 2` so migration is usually
/// possible), and a fail/repair pair on a random node in most cases.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterCaseStrategy;

impl Strategy for ClusterCaseStrategy {
    type Value = ClusterCase;

    fn sample(&self, rng: &mut TestRng) -> ClusterCase {
        let nodes = 2 + u32::try_from(rng.below(3)).unwrap_or(0); // 2..=4
        // 3:1 bias toward a replicated catalog; r = 1 keeps the
        // stream-loss accounting honest.
        let replication = if rng.below(4) == 0 { 1 } else { 2 + u32::try_from(rng.below(u64::from(nodes - 1))).unwrap_or(0) };
        let rounds = 60 + rng.below(60);
        let mut events = Vec::new();
        if rng.below(100) < 80 {
            let victim = NodeId(u32::try_from(rng.below(u64::from(nodes))).unwrap_or(0));
            let fail = rounds / 3 + rng.below(10);
            events.push(ScheduledEvent { round: fail, event: FaultEvent::FailNode(victim) });
            if rng.below(100) < 60 {
                events.push(ScheduledEvent {
                    round: fail + 5 + rng.below(rounds / 3),
                    event: FaultEvent::RepairNode(victim),
                });
            }
        }
        ClusterCase {
            nodes,
            replication,
            // `clips >= nodes * r / r = nodes` keeps every node non-empty;
            // the validator requires `clips * r >= nodes`.
            clips: u64::from(nodes) * (2 + rng.below(6)),
            clip_len: 8 + rng.below(8),
            arrival_milli: 1_000 + rng.below(12_000),
            rounds,
            seed: rng.next_u64() >> 1,
            rebuild_rate: 16 + u32::try_from(rng.below(64)).unwrap_or(0),
            workers: 1,
            faults: FaultSchedule::new(events),
        }
    }
}

fn conservation(msg: String) -> Violation {
    Violation { invariant: InvariantId::Conservation, detail: msg }
}

/// Runs one cluster case and checks the cluster conservation contract.
/// Returns the violations found (empty = conformant).
///
/// # Errors
///
/// Returns construction/validation errors for an inconsistent case —
/// distinct from a contract violation in a run that constructed.
pub fn check_cluster_case(case: &ClusterCase) -> Result<Vec<Violation>, CmsError> {
    let run = ClusterSim::new(case.to_config())?.run();
    let mut violations = Vec::new();
    let m = &run.metrics;

    // Gateway accounting: every arrival has exactly one fate.
    if m.arrivals != m.routed + m.cluster_refusals + m.unroutable {
        violations.push(conservation(format!(
            "gateway leak: {} arrivals != {} routed + {} refused + {} unroutable",
            m.arrivals, m.routed, m.cluster_refusals, m.unroutable
        )));
    }

    // Node roll-ups: the per-node engines must account for exactly what
    // the gateway handed them.
    let sum = |f: fn(&cms_sim::Metrics) -> u64| run.node_metrics.iter().map(f).sum::<u64>();
    let checks: [(&str, u64, u64); 5] = [
        ("arrivals", sum(|n| n.arrivals), m.routed + m.migrations),
        ("admissions", sum(|n| n.admitted), m.admissions),
        ("completions", sum(|n| n.completed), m.completions),
        ("hiccups", sum(|n| n.hiccups), m.hiccups),
        ("blocks", sum(|n| n.blocks_fetched), m.blocks_served),
    ];
    for (what, node_sum, cluster) in checks {
        if node_sum != cluster {
            violations.push(conservation(format!(
                "node {what} don't roll up: sum over nodes {node_sum} != cluster {cluster}"
            )));
        }
    }

    // The round-report stream must sum to the final metrics.
    let report_sum = |f: fn(&cms_cluster::ClusterRoundReport) -> u64| {
        run.reports.iter().map(f).sum::<u64>()
    };
    let deltas: [(&str, u64, u64); 4] = [
        ("arrivals", report_sum(|r| r.arrivals), m.arrivals),
        ("routed", report_sum(|r| r.routed), m.routed),
        ("migrations", report_sum(|r| r.migrations), m.migrations),
        ("rebuild blocks", report_sum(|r| r.rebuild_blocks), m.cross_node_rebuild_blocks),
    ];
    for (what, reports, metrics) in deltas {
        if reports != metrics {
            violations.push(conservation(format!(
                "report deltas for {what} sum to {reports}, final metrics say {metrics}"
            )));
        }
    }

    // Replication promise: with r >= 2 a single node failure migrates
    // rather than loses (double failures may legally lose streams).
    let node_failures =
        case.faults.events().iter().filter(|e| matches!(e.event, FaultEvent::FailNode(_))).count();
    if case.replication >= 2 && node_failures <= 1 && m.lost_streams > 0 {
        violations.push(conservation(format!(
            "r = {} must mask a single node failure, yet {} streams were lost",
            case.replication, m.lost_streams
        )));
    }

    Ok(violations)
}

/// Replays a case at several worker counts and verifies the runs are
/// identical — the cluster determinism contract at conformance scale.
///
/// # Errors
///
/// Propagates construction errors from any replay.
pub fn replay_at_worker_counts(
    case: &ClusterCase,
    workers: &[usize],
) -> Result<Vec<Violation>, CmsError> {
    let mut baseline: Option<ClusterRun> = None;
    let mut violations = Vec::new();
    for &w in workers {
        let run = ClusterSim::new(case.with_workers(w).to_config())?.run();
        match &baseline {
            None => baseline = Some(run),
            Some(base) => {
                if base.metrics != run.metrics || base.reports != run.reports {
                    violations.push(conservation(format!(
                        "run diverges at workers={w}: cluster results must be \
                         worker-count-invariant"
                    )));
                }
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> ClusterCase {
        ClusterCaseStrategy.sample(&mut TestRng::seed_from_u64(seed))
    }

    #[test]
    fn sampling_is_deterministic_and_valid() {
        for seed in 0..24u64 {
            let a = sample(seed);
            assert_eq!(a, sample(seed), "seed {seed}: sampling must be deterministic");
            assert!((2..=4).contains(&a.nodes));
            assert!(a.replication >= 1 && a.replication <= a.nodes);
            a.to_config().validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_clusters_conserve() {
        for seed in 0..12u64 {
            let case = sample(seed);
            let violations = check_cluster_case(&case).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn worker_counts_do_not_change_a_fuzzed_run() {
        let case = sample(3);
        let violations = replay_at_worker_counts(&case, &[1, 2, 4]).expect("replays construct");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_cooked_leak_is_reported() {
        // An unreplicated cluster losing streams is legal; the same
        // losses under r = 2 with one failure would be a violation. Cook
        // the discriminating case directly.
        let mut case = sample(1);
        case.replication = 1;
        case.faults = FaultSchedule::new(vec![ScheduledEvent {
            round: 20,
            event: FaultEvent::FailNode(NodeId(0)),
        }]);
        case.arrival_milli = 8_000;
        let ok = check_cluster_case(&case).expect("constructs");
        assert!(ok.is_empty(), "r = 1 losses are legal: {ok:?}");
    }
}
