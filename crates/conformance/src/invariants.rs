//! The five invariant families and the checker that holds one engine
//! run to them (DESIGN.md §11).
//!
//! Each check is *scheme- and regime-aware*: an invariant is only
//! asserted where the paper's analysis actually promises it (no rebuild
//! window under saturation, no hiccup guarantee for the non-clustered
//! baseline through an outage), and the checker reports which families
//! a case exercised so the harness can prove coverage rather than
//! assume it.

use crate::case::ConformanceCase;
use cms_core::{CmsError, DiskId, Scheme};
use cms_fault::{FaultEvent, FaultSchedule};
use cms_sim::run_case;
use std::collections::BTreeMap;
use std::fmt;

/// The five invariant families of the conformance contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InvariantId {
    /// No hiccups, lost streams, parity mismatches or service errors
    /// while admission says the load is feasible (single outage at most,
    /// no slow windows, scheme guarantees apply).
    FeasibleService,
    /// Measured capacity never exceeds the model bound, the engine's
    /// nominal ceiling equals the model's, and a saturated fault-free
    /// run lands within the stated tolerance below the bound.
    CapacityBound,
    /// A light-load single-failure rebuild completes within the model's
    /// window.
    RebuildWindow,
    /// The degraded-mode admission cap is computed per the stated
    /// formula and never exceeded by admissions.
    DegradedCap,
    /// Per-round report deltas sum exactly to the final metrics, and the
    /// stream-accounting identities hold.
    Conservation,
}

impl InvariantId {
    /// All five families, in display order.
    pub const ALL: [InvariantId; 5] = [
        InvariantId::FeasibleService,
        InvariantId::CapacityBound,
        InvariantId::RebuildWindow,
        InvariantId::DegradedCap,
        InvariantId::Conservation,
    ];

    /// Stable kebab-case token, used in repro headers.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            InvariantId::FeasibleService => "feasible-service",
            InvariantId::CapacityBound => "capacity-bound",
            InvariantId::RebuildWindow => "rebuild-window",
            InvariantId::DegradedCap => "degraded-cap",
            InvariantId::Conservation => "conservation",
        }
    }

    /// Inverse of [`InvariantId::token`].
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|i| i.token() == token)
    }
}

impl fmt::Display for InvariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One observed contract violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which family failed.
    pub invariant: InvariantId,
    /// Human-readable specifics (round, observed vs expected values).
    pub detail: String,
}

/// Deliberate contract mutations, for the harness's self-test: the
/// mutation check tightens a bound to an impossible value and verifies
/// the machinery (detection → shrinking → repro round-trip → replay)
/// fires end to end. Production checking uses [`Overrides::default`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Overrides {
    /// Replace the model's capacity bound.
    pub capacity_bound: Option<u64>,
    /// Replace the model's rebuild window (rounds after the failure).
    pub rebuild_window: Option<u64>,
}

/// What one checked case produced.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Violations found (empty = conforming run).
    pub violations: Vec<Violation>,
    /// Families whose preconditions this case met (and were asserted).
    pub exercised: Vec<InvariantId>,
    /// The model-side capacity bound the run was held to.
    pub bound: u64,
    /// Peak simultaneously-active streams observed.
    pub peak_active: u64,
}

impl CheckOutcome {
    /// Did `invariant` fail?
    #[must_use]
    pub fn violates(&self, invariant: InvariantId) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }
}

/// Static facts about a (consistent) fault schedule, mirrored from the
/// engine's round-start semantics: transient windows expire before the
/// round's events apply, hard failures last until an explicit repair.
/// With auto-rebuild the real outage may end *earlier* (rebuild
/// completion re-enables the disk), so `max_concurrent_down` is an upper
/// bound — conservative in exactly the direction the preconditions need.
#[derive(Debug, Clone, Default)]
pub struct ScheduleFacts {
    /// Peak number of simultaneously down disks implied by the schedule.
    pub max_concurrent_down: u64,
    /// Any slow-disk window present?
    pub has_slow: bool,
    /// Events that take a disk down (fail or transient).
    pub down_events: usize,
    /// Hard-failure events.
    pub fail_events: usize,
    /// The first hard failure, if any.
    pub first_fail: Option<(u64, DiskId)>,
}

impl ScheduleFacts {
    /// Computes the facts for a schedule (assumed consistent for `d`).
    #[must_use]
    pub fn of(faults: &FaultSchedule) -> Self {
        let mut facts = ScheduleFacts::default();
        let mut failed: Vec<DiskId> = Vec::new();
        let mut transient: BTreeMap<DiskId, u64> = BTreeMap::new();
        for e in faults.events() {
            transient.retain(|_, end| *end > e.round);
            match e.event {
                FaultEvent::Fail(disk) => {
                    facts.fail_events += 1;
                    facts.down_events += 1;
                    if facts.first_fail.is_none() {
                        facts.first_fail = Some((e.round, disk));
                    }
                    if !failed.contains(&disk) {
                        failed.push(disk);
                    }
                }
                FaultEvent::Repair(disk) => failed.retain(|&f| f != disk),
                FaultEvent::Transient { disk, rounds } => {
                    facts.down_events += 1;
                    transient.insert(disk, e.round.saturating_add(rounds));
                }
                FaultEvent::SlowDisk { .. } => facts.has_slow = true,
                // Node-scoped events only occur in cluster schedules,
                // which have their own conservation check (`cluster.rs`).
                FaultEvent::FailNode(_) | FaultEvent::RepairNode(_) => {}
            }
            let down = (failed.len() + transient.len()) as u64;
            facts.max_concurrent_down = facts.max_concurrent_down.max(down);
        }
        facts
    }

    /// Is the schedule exactly one hard failure and nothing else?
    #[must_use]
    pub fn single_fail_only(&self) -> bool {
        self.fail_events == 1 && self.down_events == 1 && !self.has_slow
    }
}

/// Light-load threshold for the rebuild-window invariant, in
/// milli-arrivals per round: at ≤ 2 arrivals/round the generated
/// geometries stay far from saturation, so the slack-bandwidth analysis
/// behind the window bound applies.
pub const LIGHT_LOAD_MILLI: u64 = 2_000;

/// Runs `case` through the engine and checks every applicable invariant
/// family against the analytical model.
///
/// # Errors
///
/// Propagates infeasible/invalid-case errors from construction — the
/// generator filters these out, so an error here inside the harness is
/// itself a finding.
pub fn check_case(case: &ConformanceCase) -> Result<CheckOutcome, CmsError> {
    check_case_with(case, Overrides::default())
}

/// [`check_case`] with deliberate contract mutations (see [`Overrides`]).
///
/// # Errors
///
/// As for [`check_case`].
pub fn check_case_with(
    case: &ConformanceCase,
    ov: Overrides,
) -> Result<CheckOutcome, CmsError> {
    let (point, cfg) = case.to_parts()?;
    let run = run_case(cfg)?;
    let facts = ScheduleFacts::of(&case.faults);
    let bound = ov
        .capacity_bound
        .unwrap_or_else(|| cms_model::capacity_bound(&point, case.d));
    let mut violations = Vec::new();
    let mut exercised = Vec::new();
    let m = &run.metrics;

    // ---- CapacityBound (always exercised) -------------------------------
    exercised.push(InvariantId::CapacityBound);
    if m.peak_active > bound {
        violations.push(Violation {
            invariant: InvariantId::CapacityBound,
            detail: format!("peak_active {} exceeds model bound {bound}", m.peak_active),
        });
    }
    if ov.capacity_bound.is_none() && run.nominal_capacity != bound {
        violations.push(Violation {
            invariant: InvariantId::CapacityBound,
            detail: format!(
                "engine nominal capacity {} != model bound {bound}",
                run.nominal_capacity
            ),
        });
    }
    // Tolerance floor: only meaningful for a saturated fault-free run
    // (enough offered load to fill the array, enough rounds to get
    // there, no outages to cap admission).
    let saturated = case.faults.is_empty()
        && !case.degraded
        && case.rounds >= 3 * case.clip_len
        && case.arrival_milli.saturating_mul(case.clip_len) >= 2_000 * bound;
    if saturated {
        let floor =
            (cms_model::capacity_tolerance(case.scheme) * bound as f64).floor() as u64;
        if m.peak_active < floor {
            violations.push(Violation {
                invariant: InvariantId::CapacityBound,
                detail: format!(
                    "saturated run peaked at {} streams, below the stated floor {floor} \
                     (tolerance {} of bound {bound})",
                    m.peak_active,
                    cms_model::capacity_tolerance(case.scheme)
                ),
            });
        }
    }

    // ---- FeasibleService ------------------------------------------------
    // Always-on correctness: reconstructed bytes verify, routing never
    // drops a fetch.
    if m.parity_mismatches != 0 {
        violations.push(Violation {
            invariant: InvariantId::FeasibleService,
            detail: format!("{} parity mismatches", m.parity_mismatches),
        });
    }
    if m.service_errors != 0 {
        violations.push(Violation {
            invariant: InvariantId::FeasibleService,
            detail: format!("{} service errors", m.service_errors),
        });
    }
    // The guarantee regime: at most `m` disks down at a time (one under
    // the paper's single-parity schemes; up to the redundancy shard
    // count under RS), no slow windows, and the scheme actually promises
    // hiccup-free service (NonClustered only fault-free — §7.4). One
    // further boundary the
    // fuzzer itself established (see regressions/): the §2 contingency
    // analysis vets the *admitted* set — it reserves `f` for the
    // streams admission let in under fault-free accounting. Streams
    // admitted while a disk is already down are vetted by nothing
    // unless the degraded-mode cap is enforcing, so unconstrained
    // admission into a degraded array voids the hiccup guarantee.
    let admitted_while_down: u64 = run
        .reports
        .iter()
        .filter(|r| r.down_disks > 0)
        .map(|r| r.admissions)
        .sum();
    let guarantee = !facts.has_slow
        && facts.max_concurrent_down <= u64::from(case.m)
        && (case.scheme != Scheme::NonClustered || facts.down_events == 0)
        && (admitted_while_down == 0 || case.degraded);
    if guarantee {
        exercised.push(InvariantId::FeasibleService);
        if m.hiccups != 0 {
            violations.push(Violation {
                invariant: InvariantId::FeasibleService,
                detail: format!("{} hiccups in the guarantee regime", m.hiccups),
            });
        }
        if m.lost_streams != 0 {
            violations.push(Violation {
                invariant: InvariantId::FeasibleService,
                detail: format!(
                    "{} streams lost within the designed tolerance (m = {})",
                    m.lost_streams, case.m
                ),
            });
        }
    }
    if !facts.has_slow && m.peak_utilization > 1.0 + 1e-9 {
        violations.push(Violation {
            invariant: InvariantId::FeasibleService,
            detail: format!("peak disk utilization {} exceeds the round", m.peak_utilization),
        });
    }

    // ---- RebuildWindow --------------------------------------------------
    if case.auto_rebuild
        && case.scheme != Scheme::NonClustered
        && facts.single_fail_only()
        && case.arrival_milli <= LIGHT_LOAD_MILLI
    {
        let (fail_round, disk) = facts.first_fail.unwrap_or((0, DiskId(0)));
        let blocks = run.disk_blocks_used.get(disk.idx()).copied().unwrap_or(0);
        let window = ov
            .rebuild_window
            .unwrap_or_else(|| cms_model::rebuild_window_rounds(&point, case.d, blocks));
        let deadline = fail_round.saturating_add(window);
        // Only assert when the run is long enough to observe the window.
        if deadline < case.rounds {
            exercised.push(InvariantId::RebuildWindow);
            match m.rebuild_completed_round {
                Some(done) if done <= deadline => {}
                Some(done) => violations.push(Violation {
                    invariant: InvariantId::RebuildWindow,
                    detail: format!(
                        "rebuild of {blocks} blocks finished at round {done}, after the \
                         model window (failure at {fail_round} + {window})"
                    ),
                }),
                None => violations.push(Violation {
                    invariant: InvariantId::RebuildWindow,
                    detail: format!(
                        "rebuild of {blocks} blocks never completed within {} rounds \
                         (window was {window} after the failure at {fail_round})",
                        case.rounds
                    ),
                }),
            }
        }
    }

    // ---- DegradedCap ----------------------------------------------------
    let mut prev_active = 0u64;
    let mut cap_seen = false;
    for r in &run.reports {
        let expected = if !case.degraded || r.down_disks == 0 {
            None
        } else if case.scheme == Scheme::NonClustered || r.down_disks > u64::from(case.m) {
            Some(0)
        } else {
            let healthy = u64::from(case.d).saturating_sub(r.down_disks);
            Some(run.nominal_capacity * healthy / u64::from(case.d))
        };
        if r.degraded_cap != expected {
            violations.push(Violation {
                invariant: InvariantId::DegradedCap,
                detail: format!(
                    "round {}: engine cap {:?} != stated formula {:?} ({} down)",
                    r.round, r.degraded_cap, expected, r.down_disks
                ),
            });
        }
        if let Some(cap) = r.degraded_cap {
            cap_seen = true;
            // The cap refuses *new* admissions; it never evicts. So the
            // admissions a round may grant are bounded by the headroom
            // at admission time: active streams carried in, minus losses
            // already applied this round (faults apply before
            // admission), up to the cap.
            let headroom = (cap + r.lost_streams).saturating_sub(prev_active);
            if r.admissions > headroom {
                violations.push(Violation {
                    invariant: InvariantId::DegradedCap,
                    detail: format!(
                        "round {}: {} admissions exceed degraded headroom {headroom} \
                         (cap {cap}, carried {prev_active}, lost {})",
                        r.round, r.admissions, r.lost_streams
                    ),
                });
            }
        }
        prev_active = r.active;
    }
    if cap_seen {
        exercised.push(InvariantId::DegradedCap);
    }

    // ---- Conservation (always exercised) --------------------------------
    exercised.push(InvariantId::Conservation);
    let mut conserve = |name: &str, total: u64, sum: u64| {
        if total != sum {
            violations.push(Violation {
                invariant: InvariantId::Conservation,
                detail: format!("{name}: metrics total {total} != sum of round deltas {sum}"),
            });
        }
    };
    let sum = |f: fn(&cms_sim::RoundReport) -> u64| run.reports.iter().map(f).sum::<u64>();
    conserve("arrivals", m.arrivals, sum(|r| r.arrivals));
    conserve("admitted", m.admitted, sum(|r| r.admissions));
    conserve("completed", m.completed, sum(|r| r.completions));
    conserve("blocks_fetched", m.blocks_fetched, sum(|r| r.blocks_served));
    conserve("recovery_reads", m.recovery_reads, sum(|r| r.recovery_reads));
    conserve("hiccups", m.hiccups, sum(|r| r.hiccups));
    conserve("service_errors", m.service_errors, sum(|r| r.service_errors));
    conserve("rebuild_reads", m.rebuild_reads, sum(|r| r.rebuild_reads));
    conserve("late_serves", m.late_serves, sum(|r| r.late_serves));
    conserve("lost_streams", m.lost_streams, sum(|r| r.lost_streams));
    conserve("degraded_refusals", m.degraded_refusals, sum(|r| r.degraded_refusals));
    if run.reports.len() as u64 != case.rounds || m.rounds != case.rounds {
        violations.push(Violation {
            invariant: InvariantId::Conservation,
            detail: format!(
                "round count mismatch: {} reports, metrics.rounds {}, configured {}",
                run.reports.len(),
                m.rounds,
                case.rounds
            ),
        });
    }
    if let Some(last) = run.reports.last() {
        let expected_active = m.admitted - m.completed.min(m.admitted);
        let expected_active = expected_active.saturating_sub(m.lost_streams);
        if last.active != expected_active {
            violations.push(Violation {
                invariant: InvariantId::Conservation,
                detail: format!(
                    "stream accounting: final active {} != admitted {} - completed {} - lost {}",
                    last.active, m.admitted, m.completed, m.lost_streams
                ),
            });
        }
        if last.pending != m.still_pending {
            violations.push(Violation {
                invariant: InvariantId::Conservation,
                detail: format!(
                    "final pending {} != metrics.still_pending {}",
                    last.pending, m.still_pending
                ),
            });
        }
    }

    Ok(CheckOutcome {
        violations,
        exercised,
        bound,
        peak_active: run.metrics.peak_active,
    })
}

/// Replays `case` at 1, 2 and 8 disk-service threads and returns the
/// violation sets, asserting nothing — callers compare. The determinism
/// contract says all three must be byte-identical.
///
/// # Errors
///
/// As for [`check_case_with`].
pub fn replay_at_thread_counts(
    case: &ConformanceCase,
    ov: Overrides,
) -> Result<Vec<(usize, CheckOutcome)>, CmsError> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 8] {
        let outcome = check_case_with(&case.with_threads(threads), ov)?;
        out.push((threads, outcome));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_tokens_round_trip() {
        for inv in InvariantId::ALL {
            assert_eq!(InvariantId::from_token(inv.token()), Some(inv));
        }
        assert_eq!(InvariantId::from_token("nonsense"), None);
    }

    #[test]
    fn schedule_facts_track_overlap() {
        let s = FaultSchedule::parse("@10 fail 1\n@20 fail 2\n@30 repair 1\n").unwrap();
        let facts = ScheduleFacts::of(&s);
        assert_eq!(facts.max_concurrent_down, 2);
        assert_eq!(facts.fail_events, 2);
        assert!(!facts.single_fail_only());

        let s = FaultSchedule::parse("@10 fail 1\n@20 repair 1\n@30 fail 2\n").unwrap();
        assert_eq!(ScheduleFacts::of(&s).max_concurrent_down, 1);

        let s = FaultSchedule::parse("@10 transient 1 rounds=5\n@15 fail 2\n").unwrap();
        // The transient expires exactly as the failure lands: overlap 1.
        assert_eq!(ScheduleFacts::of(&s).max_concurrent_down, 1);

        let s = FaultSchedule::parse("@10 transient 1 rounds=6\n@15 fail 2\n").unwrap();
        assert_eq!(ScheduleFacts::of(&s).max_concurrent_down, 2);

        let s = FaultSchedule::parse("@5 slow 0 factor=4 rounds=10\n@8 fail 1\n").unwrap();
        let facts = ScheduleFacts::of(&s);
        assert!(facts.has_slow);
        assert_eq!(facts.max_concurrent_down, 1, "slow disks are up");
        assert!(!facts.single_fail_only());
    }
}
