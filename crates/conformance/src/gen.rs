//! Random case generation over the vendored proptest's [`Strategy`]
//! trait.
//!
//! Cases are drawn from six *family templates*, one per fuzzing angle
//! (saturation, single-outage drill, rebuild drill, degraded overload,
//! double outage, mixed random schedules). The harness rotates the
//! template with the seed index, which guarantees every invariant
//! family's preconditions are met within any six consecutive seeds —
//! coverage by construction, not by luck. Within a template everything
//! else (scheme, geometry, rates, rounds, fault placement) is random.

use crate::case::ConformanceCase;
use cms_core::Scheme;
use cms_fault::{gen as fault_gen, FaultEvent, FaultSchedule, ScheduledEvent};
use cms_core::DiskId;
use proptest::{Strategy, TestRng};

/// Number of family templates (see module docs).
pub const TEMPLATES: u64 = 6;

/// A [`Strategy`] producing [`ConformanceCase`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStrategy {
    /// Pin the family template (`0..TEMPLATES`); `None` randomizes it.
    pub template: Option<u64>,
}

impl CaseStrategy {
    /// A strategy pinned to family template `t` (modulo [`TEMPLATES`]).
    #[must_use]
    pub fn template(t: u64) -> Self {
        CaseStrategy { template: Some(t % TEMPLATES) }
    }
}

/// Valid `(d, p)` pairs for the schemes that require `p | d` (the
/// clustered family).
const CLUSTERED_GEOMETRY: [(u32, u32); 8] =
    [(4, 2), (6, 2), (6, 3), (8, 2), (8, 4), (12, 2), (12, 3), (12, 4)];

fn pick_scheme(rng: &mut TestRng, exclude_non_clustered: bool) -> Scheme {
    let pool: &[Scheme] = if exclude_non_clustered {
        &[
            Scheme::DeclusteredParity,
            Scheme::DynamicReservation,
            Scheme::PrefetchParityDisks,
            Scheme::PrefetchFlat,
            Scheme::StreamingRaid,
        ]
    } else {
        &Scheme::ALL
    };
    pool[rng.below(pool.len() as u64) as usize]
}

fn pick_geometry(rng: &mut TestRng, scheme: Scheme) -> (u32, u32) {
    match scheme {
        Scheme::PrefetchParityDisks | Scheme::StreamingRaid | Scheme::NonClustered => {
            CLUSTERED_GEOMETRY[rng.below(CLUSTERED_GEOMETRY.len() as u64) as usize]
        }
        _ => {
            let d = [4u32, 6, 8, 12][rng.below(4) as usize];
            let p = 2 + u32::try_from(rng.below(u64::from(d.min(4)) - 1)).unwrap_or(0);
            (d, p)
        }
    }
}

fn coin(rng: &mut TestRng, pct: u64) -> bool {
    rng.below(100) < pct
}

impl Strategy for CaseStrategy {
    type Value = ConformanceCase;

    fn sample(&self, rng: &mut TestRng) -> ConformanceCase {
        let template = self.template.unwrap_or_else(|| rng.below(TEMPLATES));
        // Template 1 is the guarantee drill: NonClustered promises
        // nothing through an outage, so it would only dilute coverage.
        let scheme = pick_scheme(rng, template == 1);
        let (d, p) = pick_geometry(rng, scheme);
        // Multi-failure axis: the RS-capable clustered schemes sample
        // m ∈ {1, 2, 3} (bounded by m < p); every other scheme pins the
        // paper's single XOR parity.
        let m = match scheme {
            Scheme::PrefetchParityDisks | Scheme::StreamingRaid => {
                1 + u32::try_from(rng.below(u64::from(p.min(4)) - 1)).unwrap_or(0)
            }
            _ => 1,
        };
        let buffer_mib = [32u64, 64, 128][rng.below(3) as usize];
        let seed = rng.next_u64() >> 1;
        let mut case = ConformanceCase {
            scheme,
            d,
            p,
            m,
            buffer_mib,
            // Catalog and arrival sizes are deliberately large enough to
            // push tens of concurrent streams through the SoA stream
            // table, so staged admission merges, tombstone compaction and
            // the incremental EDF queues all fire inside every fuzz case.
            clips: 24 + rng.below(40),
            clip_len: 8 + rng.below(12),
            arrival_milli: 2_000 + rng.below(12_000),
            rounds: 80 + rng.below(80),
            seed,
            auto_rebuild: false,
            degraded: coin(rng, 25),
            threads: 1,
            faults: FaultSchedule::default(),
        };
        match template {
            // Saturated fault-free: drives the capacity floor.
            0 => {
                case.arrival_milli = 80_000 + rng.below(240_000);
                case.rounds = 3 * case.clip_len + 40 + rng.below(60);
                case.degraded = false;
            }
            // Single-outage drill: the hiccup-free guarantee.
            1 => {
                let disk = DiskId(u32::try_from(rng.below(u64::from(d))).unwrap_or(0));
                let start = 10 + rng.below(30);
                case.faults = if coin(rng, 60) {
                    let repair = coin(rng, 50).then(|| start + 5 + rng.below(30));
                    FaultSchedule::single_failure(start, disk, repair)
                } else {
                    FaultSchedule::new(vec![ScheduledEvent {
                        round: start,
                        event: FaultEvent::Transient { disk, rounds: 3 + rng.below(12) },
                    }])
                };
            }
            // Rebuild drill: light load, one failure, a long run.
            2 => {
                case.auto_rebuild = true;
                if case.scheme == Scheme::NonClustered {
                    // No redundancy, no rebuild to time — swap in a
                    // scheme that can actually reconstruct.
                    case.scheme = Scheme::DeclusteredParity;
                    let (nd, np) = pick_geometry(rng, case.scheme);
                    case.d = nd;
                    case.p = np;
                }
                case.clips = 12 + rng.below(8);
                case.clip_len = 6 + rng.below(6);
                case.arrival_milli = 200 + rng.below(1_500);
                case.rounds = 400 + rng.below(100);
                let disk = DiskId(u32::try_from(rng.below(u64::from(case.d))).unwrap_or(0));
                case.faults = FaultSchedule::single_failure(10 + rng.below(20), disk, None);
            }
            // Degraded overload: the cap must hold back a hot queue.
            3 => {
                case.degraded = true;
                case.arrival_milli = 40_000 + rng.below(120_000);
                case.rounds = 90 + rng.below(60);
                let disk = DiskId(u32::try_from(rng.below(u64::from(d))).unwrap_or(0));
                let start = case.rounds / 3;
                let repair = coin(rng, 50).then(|| 2 * case.rounds / 3);
                case.faults = FaultSchedule::single_failure(start, disk, repair);
            }
            // Double outage: beyond designed tolerance — losses are
            // legal, mis-accounting is not.
            4 => {
                let d1 = u32::try_from(rng.below(u64::from(d))).unwrap_or(0);
                let d2 = (d1 + 1 + u32::try_from(rng.below(u64::from(d) - 1)).unwrap_or(0)) % d;
                let r1 = 10 + rng.below(20);
                let r2 = r1 + 1 + rng.below(15);
                let mut events = vec![
                    ScheduledEvent { round: r1, event: FaultEvent::Fail(DiskId(d1)) },
                    ScheduledEvent { round: r2, event: FaultEvent::Fail(DiskId(d2)) },
                ];
                if coin(rng, 40) {
                    events.push(ScheduledEvent {
                        round: r2 + 10 + rng.below(20),
                        event: FaultEvent::Repair(DiskId(d1)),
                    });
                }
                case.faults = FaultSchedule::new(events);
                case.auto_rebuild = coin(rng, 40);
            }
            // Mixed random schedules from the cms-fault generators.
            _ => {
                case.rounds = 120 + rng.below(120);
                case.arrival_milli = 1_000 + rng.below(16_000);
                case.auto_rebuild = coin(rng, 40);
                let gseed = rng.next_u64();
                case.faults = match rng.below(4) {
                    0 => fault_gen::independent(
                        d,
                        case.rounds,
                        0.01 + rng.below(20) as f64 / 1_000.0,
                        10 + rng.below(30),
                        gseed,
                    ),
                    1 => fault_gen::correlated_shelf(
                        d,
                        2 + u32::try_from(rng.below(u64::from(d.min(4)) - 1)).unwrap_or(0),
                        10 + rng.below(30),
                        rng.below(8),
                        gseed,
                    ),
                    2 => fault_gen::fail_during_rebuild(
                        d,
                        10 + rng.below(20),
                        5 + rng.below(25),
                        gseed,
                    ),
                    // Transient + slow on distinct disks: consistent by
                    // construction.
                    _ => {
                        let a = u32::try_from(rng.below(u64::from(d))).unwrap_or(0);
                        let b = (a + 1 + u32::try_from(rng.below(u64::from(d) - 1)).unwrap_or(0))
                            % d;
                        FaultSchedule::new(vec![
                            ScheduledEvent {
                                round: 10 + rng.below(30),
                                event: FaultEvent::Transient {
                                    disk: DiskId(a),
                                    rounds: 3 + rng.below(10),
                                },
                            },
                            ScheduledEvent {
                                round: 10 + rng.below(40),
                                event: FaultEvent::SlowDisk {
                                    disk: DiskId(b),
                                    factor: 2 + u32::try_from(rng.below(6)).unwrap_or(0),
                                    rounds: 5 + rng.below(15),
                                },
                            },
                        ])
                    }
                };
            }
        }
        case
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_consistent_and_mostly_feasible() {
        let mut feasible = 0;
        for seed in 0..60u64 {
            let mut rng = TestRng::seed_from_u64(seed);
            let case = CaseStrategy::template(seed).sample(&mut rng);
            assert!(
                case.faults.check_consistency(case.d).is_ok(),
                "seed {seed}: generated schedule must be consistent: {}",
                case.faults
            );
            if case.is_feasible() {
                feasible += 1;
            }
        }
        assert!(feasible >= 45, "only {feasible}/60 feasible — generator geometry is off");
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        for seed in [0u64, 7, 99] {
            let a = CaseStrategy::default().sample(&mut TestRng::seed_from_u64(seed));
            let b = CaseStrategy::default().sample(&mut TestRng::seed_from_u64(seed));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn templates_cover_all_schemes_eventually() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            let mut rng = TestRng::seed_from_u64(seed);
            let case = CaseStrategy::default().sample(&mut rng);
            seen.insert(crate::case::scheme_token(case.scheme));
        }
        assert_eq!(seen.len(), 6, "all six schemes must appear: {seen:?}");
    }
}
