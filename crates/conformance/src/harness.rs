//! The fuzzing driver: draw seeded cases, check them, shrink anything
//! that fails, and account for coverage.

use crate::case::{scheme_token, ConformanceCase};
use crate::gen::{CaseStrategy, TEMPLATES};
use crate::invariants::{check_case, CheckOutcome, InvariantId, Overrides};
use crate::repro::Repro;
use crate::shrink::shrink_case;
use proptest::{Strategy, TestRng};
use std::collections::{BTreeMap, BTreeSet};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Base seed; case `i` derives from `base_seed + i`.
    pub base_seed: u64,
    /// Feasible cases to run.
    pub budget: usize,
    /// Engine runs the shrinker may spend per failure.
    pub shrink_checks: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { base_seed: 0xC0F0, budget: 64, shrink_checks: 160 }
    }
}

/// One failing case, shrunk and packaged.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Seed index that produced the original case.
    pub seed: u64,
    /// The original (pre-shrink) case.
    pub original: ConformanceCase,
    /// The shrunk repro.
    pub repro: Repro,
}

/// What a harness run covered and found.
#[derive(Debug, Clone, Default)]
pub struct HarnessReport {
    /// Feasible cases run.
    pub cases_run: usize,
    /// Sampled cases skipped because the model declared them infeasible.
    pub infeasible_skipped: usize,
    /// How many runs exercised each invariant family.
    pub exercised: BTreeMap<&'static str, usize>,
    /// Scheme tokens covered.
    pub schemes: BTreeSet<&'static str>,
    /// Shrunk failures (empty = fully conforming).
    pub failures: Vec<Failure>,
}

impl HarnessReport {
    /// Were all five invariant families exercised at least once?
    #[must_use]
    pub fn all_families_exercised(&self) -> bool {
        InvariantId::ALL.iter().all(|i| self.exercised.get(i.token()).copied().unwrap_or(0) > 0)
    }
}

/// Runs the harness: `cfg.budget` feasible cases, template rotated with
/// the seed index so all six families appear in any six consecutive
/// draws. Failures are shrunk with the production contract
/// ([`Overrides::default`]) and returned as ready-to-commit repros.
///
/// # Panics
///
/// Panics if the generator cannot produce `cfg.budget` feasible cases
/// within `8 × budget` draws — that is a generator bug, not bad luck.
#[must_use]
pub fn run_harness(cfg: HarnessConfig) -> HarnessReport {
    let mut report = HarnessReport::default();
    let mut draw = 0u64;
    while report.cases_run < cfg.budget {
        assert!(
            (draw as usize) < cfg.budget * 8,
            "generator produced only {} feasible cases in {draw} draws",
            report.cases_run
        );
        let seed = cfg.base_seed.wrapping_add(draw);
        let template = draw % TEMPLATES;
        draw += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        let case = CaseStrategy::template(template).sample(&mut rng);
        let Ok(outcome) = check_case(&case) else {
            report.infeasible_skipped += 1;
            continue;
        };
        report.cases_run += 1;
        report.schemes.insert(scheme_token(case.scheme));
        record(&mut report, &outcome);
        for invariant in distinct_failing_families(&outcome) {
            let shrunk =
                shrink_case(&case, invariant, Overrides::default(), cfg.shrink_checks);
            let detail = check_case(&shrunk.case)
                .ok()
                .and_then(|o| {
                    o.violations.into_iter().find(|v| v.invariant == invariant).map(|v| v.detail)
                })
                .unwrap_or_default();
            report.failures.push(Failure {
                seed,
                original: case.clone(),
                repro: Repro { case: shrunk.case, invariant, detail },
            });
        }
    }
    report
}

fn record(report: &mut HarnessReport, outcome: &CheckOutcome) {
    for inv in &outcome.exercised {
        *report.exercised.entry(inv.token()).or_insert(0) += 1;
    }
}

fn distinct_failing_families(outcome: &CheckOutcome) -> Vec<InvariantId> {
    let mut seen = Vec::new();
    for v in &outcome.violations {
        if !seen.contains(&v.invariant) {
            seen.push(v.invariant);
        }
    }
    seen
}

/// The `CMS_CONFORMANCE_CASES` env knob (opt-in longer local runs),
/// falling back to `default` when unset or unparseable.
#[must_use]
pub fn env_budget(default: usize) -> usize {
    std::env::var("CMS_CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `CMS_CONFORMANCE_SEED` env knob (pin a different base seed),
/// falling back to `default` when unset or unparseable.
#[must_use]
pub fn env_seed(default: u64) -> u64 {
    std::env::var("CMS_CONFORMANCE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
