//! # cms-conformance — adversarial model-vs-engine conformance fuzzing
//!
//! The paper's claims are analytical; the engine is operational. This
//! crate holds the two to each other continuously: it generates random
//! `(scheme, geometry, workload, failure schedule)` tuples via the
//! vendored proptest, replays each through both `cms-model` and the
//! full engine, and asserts the five-family conformance contract
//! (DESIGN.md §11):
//!
//! 1. **feasible-service** — no hiccups or lost streams while admission
//!    says the load is feasible; reconstructed bytes always verify.
//! 2. **capacity-bound** — measured capacity never exceeds the model
//!    bound, the engine's nominal ceiling equals the model's, and
//!    saturated fault-free runs land within a stated tolerance below it.
//! 3. **rebuild-window** — a light-load single-failure rebuild finishes
//!    inside the model's window.
//! 4. **degraded-cap** — the degraded-mode admission cap follows the
//!    stated formula and is never exceeded.
//! 5. **conservation** — per-round report deltas sum exactly to the
//!    final metrics; stream accounting balances.
//!
//! Failures shrink greedily (the facade has no shrinking) to a minimal
//! case and are written as repro files in the `cms-fault` spec format
//! with a `#`-comment config header — the whole file still parses as a
//! fault spec — then replayed at 1/2/8 disk-service threads to pin the
//! determinism contract. Shrunk repros live in `regressions/` and are
//! replayed by the regression suite on every test run.
//!
//! ```
//! use cms_conformance::{check_case, CaseStrategy};
//! use proptest::{Strategy, TestRng};
//!
//! let mut rng = TestRng::seed_from_u64(1);
//! let case = CaseStrategy::template(0).sample(&mut rng); // saturation family
//! let outcome = check_case(&case).unwrap();
//! assert!(outcome.violations.is_empty());
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod case;
pub mod cluster;
pub mod gen;
pub mod harness;
pub mod invariants;
pub mod repro;
pub mod shrink;

pub use case::{scheme_from_token, scheme_token, ConformanceCase};
pub use cluster::{
    check_cluster_case, replay_at_worker_counts, ClusterCase, ClusterCaseStrategy,
};
pub use gen::{CaseStrategy, TEMPLATES};
pub use harness::{env_budget, env_seed, run_harness, Failure, HarnessConfig, HarnessReport};
pub use invariants::{
    check_case, check_case_with, replay_at_thread_counts, CheckOutcome, InvariantId, Overrides,
    ScheduleFacts, Violation, LIGHT_LOAD_MILLI,
};
pub use repro::{Repro, MAGIC};
pub use shrink::{shrink_case, ShrinkResult};
