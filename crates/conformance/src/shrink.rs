//! Greedy deterministic shrinking.
//!
//! The vendored proptest facade has no shrinking, so the harness rolls
//! its own: a fixed ladder of simplifying transformations (drop a fault
//! event, halve the horizon, calm the workload, shrink the geometry,
//! drop feature toggles), each accepted only if the *same* invariant
//! family still fails on the smaller case. Candidates that go
//! infeasible or make the schedule inconsistent are rejected by
//! construction (`to_parts` re-checks both), so every accepted shrink
//! is a valid, runnable case — the final result is what lands in the
//! committed repro file.

use crate::case::ConformanceCase;
use crate::invariants::{check_case_with, InvariantId, Overrides};
use cms_fault::FaultSchedule;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal failing case found.
    pub case: ConformanceCase,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Engine runs spent (accepted + rejected candidates).
    pub checks: usize,
}

/// Does `case` still violate `target` (under `ov`)? Infeasible or
/// inconsistent candidates count as "no".
fn still_fails(case: &ConformanceCase, target: InvariantId, ov: Overrides) -> bool {
    check_case_with(case, ov).map(|o| o.violates(target)).unwrap_or(false)
}

/// All single-step shrink candidates of `case`, in preference order
/// (structurally smaller first).
fn candidates(case: &ConformanceCase) -> Vec<ConformanceCase> {
    let mut out = Vec::new();
    // 1. Drop each fault event.
    for drop_idx in 0..case.faults.len() {
        let events: Vec<_> = case
            .faults
            .events()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop_idx)
            .map(|(_, e)| *e)
            .collect();
        let mut cand = case.clone();
        cand.faults = FaultSchedule::new(events);
        out.push(cand);
    }
    // 2. Shorten the run.
    for rounds in [case.rounds / 2, case.rounds.saturating_sub(16), case.rounds - 1] {
        if rounds >= 8 && rounds < case.rounds {
            let mut cand = case.clone();
            cand.rounds = rounds;
            out.push(cand);
        }
    }
    // 3. Calm the workload.
    for arrival in [0, case.arrival_milli / 2] {
        if arrival < case.arrival_milli {
            let mut cand = case.clone();
            cand.arrival_milli = arrival;
            out.push(cand);
        }
    }
    // 4. Shrink the catalog.
    if case.clips / 2 >= 4 {
        let mut cand = case.clone();
        cand.clips /= 2;
        out.push(cand);
    }
    if case.clip_len / 2 >= 4 {
        let mut cand = case.clone();
        cand.clip_len /= 2;
        out.push(cand);
    }
    // 5. Shrink the buffer and the parity group.
    if case.buffer_mib / 2 >= 16 {
        let mut cand = case.clone();
        cand.buffer_mib /= 2;
        out.push(cand);
    }
    if case.p > 2 {
        let mut cand = case.clone();
        cand.p = 2;
        out.push(cand);
    }
    // 6. Drop feature toggles and the seed.
    if case.auto_rebuild {
        let mut cand = case.clone();
        cand.auto_rebuild = false;
        out.push(cand);
    }
    if case.degraded {
        let mut cand = case.clone();
        cand.degraded = false;
        out.push(cand);
    }
    if case.seed != 0 {
        let mut cand = case.clone();
        cand.seed = 0;
        out.push(cand);
    }
    out
}

/// Greedily shrinks `case` while `target` keeps failing, spending at
/// most `max_checks` engine runs. The input must itself fail `target`
/// (callers establish that before shrinking); the result is the last
/// accepted candidate, or the input unchanged if nothing smaller fails.
#[must_use]
pub fn shrink_case(
    case: &ConformanceCase,
    target: InvariantId,
    ov: Overrides,
    max_checks: usize,
) -> ShrinkResult {
    let mut best = case.clone();
    let mut steps = 0usize;
    let mut checks = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if checks >= max_checks {
                break 'outer;
            }
            checks += 1;
            if still_fails(&cand, target, ov) {
                best = cand;
                steps += 1;
                continue 'outer; // restart the ladder from the smaller case
            }
        }
        break; // full pass with no acceptance: fixpoint
    }
    ShrinkResult { case: best, steps, checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::Scheme;

    /// With an impossible capacity bound (0), every run violates
    /// CapacityBound, so the shrinker must drive the case to its floors
    /// and stay deterministic.
    #[test]
    fn shrinks_to_floors_under_a_mutated_bound() {
        let case = ConformanceCase {
            scheme: Scheme::DeclusteredParity,
            d: 8,
            p: 4,
            m: 1,
            buffer_mib: 128,
            clips: 32,
            clip_len: 16,
            arrival_milli: 4_000,
            rounds: 120,
            seed: 41,
            auto_rebuild: true,
            degraded: true,
            threads: 1,
            faults: FaultSchedule::parse("@20 fail 1\n@60 repair 1\n").unwrap(),
        };
        let ov = Overrides { capacity_bound: Some(0), ..Overrides::default() };
        assert!(still_fails(&case, InvariantId::CapacityBound, ov));
        let a = shrink_case(&case, InvariantId::CapacityBound, ov, 200);
        let b = shrink_case(&case, InvariantId::CapacityBound, ov, 200);
        assert_eq!(a.case, b.case, "shrinking must be deterministic");
        assert!(a.steps > 0, "must find something to shrink");
        assert!(a.case.faults.is_empty(), "fault events are removable here");
        assert!(a.case.rounds < case.rounds);
        assert!(!a.case.auto_rebuild && !a.case.degraded);
        assert!(still_fails(&a.case, InvariantId::CapacityBound, ov));
    }
}
