//! The committed repro file format.
//!
//! A repro is a valid `cms-fault` spec file with a config header in
//! `#`-comment lines, so the *entire* file round-trips through
//! `FaultSchedule::parse` unchanged and any fault-spec tooling can read
//! it directly:
//!
//! ```text
//! # cms-conformance repro v1
//! # invariant: capacity-bound
//! # detail: peak_active 40 exceeds model bound 32
//! # case: scheme=declustered d=8 p=2 buffer_mib=32 clips=8 clip_len=4 \
//! #       arrival_milli=1000 rounds=16 seed=0 rebuild=0 degraded=0
//! @4 fail 1
//! ```
//!
//! (The header is one physical line; the wrap above is for rustdoc.)

use crate::case::ConformanceCase;
use crate::invariants::InvariantId;
use cms_core::CmsError;
use cms_fault::FaultSchedule;
use std::fmt::Write as _;

/// Magic first line of every repro file.
pub const MAGIC: &str = "# cms-conformance repro v1";

/// A shrunk, committed reproduction: the case plus what it violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The minimal failing case.
    pub case: ConformanceCase,
    /// The invariant family it violates.
    pub invariant: InvariantId,
    /// The violation detail at capture time (informational; replays
    /// recompute it).
    pub detail: String,
}

impl Repro {
    /// Renders the repro file text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "# invariant: {}", self.invariant.token());
        if !self.detail.is_empty() {
            // Keep the detail single-line so it stays one comment.
            let _ = writeln!(out, "# detail: {}", self.detail.replace('\n', " "));
        }
        let _ = writeln!(out, "# case: {}", self.case.header());
        out.push_str(&self.case.faults.to_string());
        out
    }

    /// Parses a repro file.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for a missing/unknown header,
    /// or any `cms-fault` spec parse error for the event lines (with
    /// line numbers counting the full file, header included).
    pub fn parse(text: &str) -> Result<Self, CmsError> {
        let mut invariant = None;
        let mut detail = String::new();
        let mut case = None;
        for line in text.lines() {
            let line = line.trim();
            if let Some(token) = line.strip_prefix("# invariant:") {
                let token = token.trim();
                invariant = Some(InvariantId::from_token(token).ok_or_else(|| {
                    CmsError::invalid_params(format!("repro: unknown invariant `{token}`"))
                })?);
            } else if let Some(d) = line.strip_prefix("# detail:") {
                detail = d.trim().to_owned();
            } else if let Some(body) = line.strip_prefix("# case:") {
                case = Some(ConformanceCase::parse_header(body.trim())?);
            }
        }
        let mut case = case.ok_or_else(|| {
            CmsError::invalid_params("repro: missing `# case:` header line")
        })?;
        let invariant = invariant.ok_or_else(|| {
            CmsError::invalid_params("repro: missing `# invariant:` header line")
        })?;
        // The whole file is a fault spec; headers are comments to it.
        case.faults = FaultSchedule::parse(text)?;
        case.faults.validate(case.d)?;
        Ok(Repro { case, invariant, detail })
    }

    /// A stable, descriptive file name for the corpus.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-d{}-p{}-seed{}.repro",
            self.invariant.token(),
            crate::case::scheme_token(self.case.scheme),
            self.case.d,
            self.case.p,
            self.case.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::Scheme;

    fn sample() -> Repro {
        Repro {
            case: ConformanceCase {
                scheme: Scheme::StreamingRaid,
                d: 8,
                p: 4,
                m: 1,
                buffer_mib: 64,
                clips: 16,
                clip_len: 8,
                arrival_milli: 1_500,
                rounds: 90,
                seed: 11,
                auto_rebuild: false,
                degraded: true,
                threads: 1,
                faults: FaultSchedule::parse("@12 fail 2\n@40 repair 2\n").unwrap(),
            },
            invariant: InvariantId::DegradedCap,
            detail: "round 13: 5 admissions exceed degraded headroom 0".to_owned(),
        }
    }

    #[test]
    fn text_round_trips() {
        let repro = sample();
        let text = repro.to_text();
        assert_eq!(Repro::parse(&text).unwrap(), repro, "{text}");
    }

    #[test]
    fn whole_file_is_a_valid_fault_spec() {
        let repro = sample();
        let parsed = FaultSchedule::parse(&repro.to_text()).unwrap();
        assert_eq!(parsed, repro.case.faults);
    }

    #[test]
    fn parse_rejects_missing_headers() {
        assert!(Repro::parse("@10 fail 1\n").is_err());
        let msg = Repro::parse("# invariant: gravity\n# case: scheme=dynamic d=4\n")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("`gravity`"), "{msg}");
    }

    #[test]
    fn fault_spec_errors_carry_whole_file_line_numbers() {
        let mut text = sample().to_text();
        text.push_str("@5 explode 1\n");
        let msg = Repro::parse(&text).unwrap_err().to_string();
        // Header (3 lines + case line) + 2 events + the bad line = 7.
        assert!(msg.contains("line 7") && msg.contains("`explode`"), "{msg}");
    }

    #[test]
    fn file_names_are_descriptive() {
        assert_eq!(sample().file_name(), "degraded-cap-streaming-raid-d8-p4-seed11.repro");
    }
}
