//! The conformance case: one complete `(scheme, geometry, workload,
//! failure schedule)` tuple, convertible to a solved engine
//! configuration and round-trippable through the repro text format.

use cms_core::{CmsError, Scheme};
use cms_fault::FaultSchedule;
use cms_model::CapacityPoint;
use cms_server::CmServerBuilder;
use cms_sim::SimConfig;

/// Short stable token for each scheme, used in repro config headers
/// (the serde names are Rust variant identifiers; the repro format wants
/// something greppable and shell-friendly).
#[must_use]
pub fn scheme_token(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::DeclusteredParity => "declustered",
        Scheme::DynamicReservation => "dynamic",
        Scheme::PrefetchParityDisks => "prefetch-parity",
        Scheme::PrefetchFlat => "prefetch-flat",
        Scheme::StreamingRaid => "streaming-raid",
        Scheme::NonClustered => "non-clustered",
    }
}

/// Inverse of [`scheme_token`].
#[must_use]
pub fn scheme_from_token(token: &str) -> Option<Scheme> {
    Scheme::ALL.into_iter().find(|&s| scheme_token(s) == token)
}

/// One generated conformance case. Everything the engine needs beyond
/// these fields (block size, round budget `q`, contingency `f`) is
/// re-derived from the analytical model at replay time, so the committed
/// repro stays small *and* every replay exercises the model path too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceCase {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Number of disks.
    pub d: u32,
    /// Parity group size (pinned, not auto-tuned, so the case is stable
    /// under model retuning).
    pub p: u32,
    /// Redundancy shards per parity group (1 = XOR parity; `m >= 2` =
    /// GF(256) Reed–Solomon, clustered parity-disk schemes only).
    pub m: u32,
    /// Server RAM buffer, in MiB.
    pub buffer_mib: u64,
    /// Catalog size in clips.
    pub clips: u64,
    /// Clip length in blocks (no spread: deterministic geometry).
    pub clip_len: u64,
    /// Poisson arrival rate in milli-arrivals per round (integer so the
    /// repro header needs no float formatting).
    pub arrival_milli: u64,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Seed for design construction, layout jitter and the workload.
    pub seed: u64,
    /// Rebuild failed disks onto hot spares in the background.
    pub auto_rebuild: bool,
    /// Enforce the degraded-mode admission cap.
    pub degraded: bool,
    /// Disk-service worker threads (results are thread-invariant; the
    /// replay suite pins 1/2/8 to prove it).
    pub threads: usize,
    /// The fault schedule (must pass `check_consistency` for `d`).
    pub faults: FaultSchedule,
}

impl ConformanceCase {
    /// Solves the capacity model for this case and produces the tuned
    /// point plus the ready-to-run simulation config.
    ///
    /// # Errors
    ///
    /// Returns the model's infeasibility/validation errors, or
    /// [`CmsError::InvalidParams`] for an inconsistent fault schedule.
    pub fn to_parts(&self) -> Result<(CapacityPoint, SimConfig), CmsError> {
        self.faults.check_consistency(self.d)?;
        let mut builder = CmServerBuilder::new(self.scheme)
            .disks(self.d)
            .buffer_bytes(self.buffer_mib << 20)
            .catalog(self.clips, self.clip_len)
            .parity_group(self.p)
            .redundancy(self.m)
            .seed(self.seed)
            .verify_reconstructions();
        if self.auto_rebuild {
            builder = builder.auto_rebuild();
        }
        let (point, mut cfg) = builder.solve()?;
        cfg.arrival_rate = self.arrival_milli as f64 / 1000.0;
        cfg.rounds = self.rounds;
        cfg.faults = (!self.faults.is_empty()).then(|| self.faults.clone());
        cfg.degraded_admission = self.degraded;
        cfg.threads = self.threads;
        Ok((point, cfg))
    }

    /// Is the case feasible (the model solves and the schedule is
    /// consistent)? The generator's rejection filter.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.to_parts().is_ok()
    }

    /// The same case with a different thread count — the determinism
    /// replays.
    #[must_use]
    pub fn with_threads(&self, threads: usize) -> Self {
        ConformanceCase { threads, ..self.clone() }
    }

    /// Renders the one-line `key=value` config header body (without the
    /// leading `# `). [`ConformanceCase::parse_header`] inverts it. The
    /// `m=` key is emitted only for `m >= 2`, so every pre-multi-failure
    /// committed repro stays byte-stable.
    #[must_use]
    pub fn header(&self) -> String {
        let m = if self.m == 1 { String::new() } else { format!(" m={}", self.m) };
        format!(
            "scheme={} d={} p={}{m} buffer_mib={} clips={} clip_len={} \
             arrival_milli={} rounds={} seed={} rebuild={} degraded={}",
            scheme_token(self.scheme),
            self.d,
            self.p,
            self.buffer_mib,
            self.clips,
            self.clip_len,
            self.arrival_milli,
            self.rounds,
            self.seed,
            u8::from(self.auto_rebuild),
            u8::from(self.degraded),
        )
    }

    /// Parses a config header body produced by [`ConformanceCase::header`]
    /// (faults start empty; threads default to 1).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] naming any unknown, missing or
    /// non-numeric key.
    pub fn parse_header(body: &str) -> Result<Self, CmsError> {
        let mut scheme = None;
        let mut fields = std::collections::BTreeMap::new();
        for kv in body.split_whitespace() {
            let (k, v) = kv.split_once('=').ok_or_else(|| {
                CmsError::invalid_params(format!("repro header: expected `key=value`, got `{kv}`"))
            })?;
            if k == "scheme" {
                scheme = Some(scheme_from_token(v).ok_or_else(|| {
                    CmsError::invalid_params(format!("repro header: unknown scheme `{v}`"))
                })?);
            } else {
                let n = v.parse::<u64>().map_err(|_| {
                    CmsError::invalid_params(format!(
                        "repro header: key `{k}` needs an integer value, got `{v}`"
                    ))
                })?;
                fields.insert(k.to_owned(), n);
            }
        }
        // Optional for backward compatibility: headers written before the
        // multi-failure axis carry no `m` key and mean XOR parity.
        let m = match fields.remove("m") {
            None => 1,
            Some(n) => u32::try_from(n)
                .map_err(|_| CmsError::invalid_params("repro header: `m` out of range"))?,
        };
        let mut take = |k: &str| {
            fields.remove(k).ok_or_else(|| {
                CmsError::invalid_params(format!("repro header: missing key `{k}`"))
            })
        };
        let case = ConformanceCase {
            scheme: scheme
                .ok_or_else(|| CmsError::invalid_params("repro header: missing key `scheme`"))?,
            d: u32::try_from(take("d")?)
                .map_err(|_| CmsError::invalid_params("repro header: `d` out of range"))?,
            p: u32::try_from(take("p")?)
                .map_err(|_| CmsError::invalid_params("repro header: `p` out of range"))?,
            m,
            buffer_mib: take("buffer_mib")?,
            clips: take("clips")?,
            clip_len: take("clip_len")?,
            arrival_milli: take("arrival_milli")?,
            rounds: take("rounds")?,
            seed: take("seed")?,
            auto_rebuild: take("rebuild")? != 0,
            degraded: take("degraded")? != 0,
            threads: 1,
            faults: FaultSchedule::default(),
        };
        if let Some(k) = fields.keys().next() {
            return Err(CmsError::invalid_params(format!("repro header: unknown key `{k}`")));
        }
        Ok(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceCase {
        ConformanceCase {
            scheme: Scheme::DeclusteredParity,
            d: 8,
            p: 4,
            m: 1,
            buffer_mib: 64,
            clips: 24,
            clip_len: 12,
            arrival_milli: 2_500,
            rounds: 80,
            seed: 7,
            auto_rebuild: true,
            degraded: false,
            threads: 1,
            faults: FaultSchedule::parse("@20 fail 3").unwrap(),
        }
    }

    #[test]
    fn scheme_tokens_round_trip() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme_from_token(scheme_token(scheme)), Some(scheme));
        }
        assert_eq!(scheme_from_token("raid0"), None);
    }

    #[test]
    fn header_round_trips() {
        let case = sample();
        let mut parsed = ConformanceCase::parse_header(&case.header()).unwrap();
        parsed.faults = case.faults.clone();
        assert_eq!(parsed, case);
    }

    #[test]
    fn header_m_key_is_optional_and_round_trips() {
        // Pre-multi-failure headers carry no `m=` key and mean m = 1; an
        // m = 1 case emits none (so committed repros stay byte-stable),
        // while m >= 2 round-trips through an explicit key.
        let xor = sample();
        assert!(!xor.header().contains("m="), "m = 1 must not emit the key");
        let mut rs = sample();
        rs.scheme = Scheme::PrefetchParityDisks;
        rs.m = 2;
        assert!(rs.header().contains(" m=2 "), "m >= 2 must emit the key");
        let mut parsed = ConformanceCase::parse_header(&rs.header()).unwrap();
        parsed.faults = rs.faults.clone();
        assert_eq!(parsed, rs);
    }

    #[test]
    fn header_parse_names_the_offender() {
        let msg =
            ConformanceCase::parse_header("scheme=declustered d=oops").unwrap_err().to_string();
        assert!(msg.contains("`d`") && msg.contains("`oops`"), "{msg}");
        let msg = ConformanceCase::parse_header("scheme=warp d=8").unwrap_err().to_string();
        assert!(msg.contains("`warp`"), "{msg}");
        let msg = ConformanceCase::parse_header(&format!("{} bogus=1", sample().header()))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("`bogus`"), "{msg}");
    }

    #[test]
    fn to_parts_solves_and_carries_the_schedule() {
        let (point, cfg) = sample().to_parts().unwrap();
        assert_eq!(point.p, 4);
        assert_eq!(cfg.rounds, 80);
        assert!((cfg.arrival_rate - 2.5).abs() < 1e-12);
        assert_eq!(cfg.faults.as_ref().map(cms_fault::FaultSchedule::len), Some(1));
        assert!(cfg.verify_parity);
        assert!(cfg.auto_rebuild);
    }

    #[test]
    fn inconsistent_schedule_is_rejected() {
        let mut case = sample();
        case.faults = FaultSchedule::parse("@10 repair 2").unwrap();
        assert!(case.to_parts().is_err());
        assert!(!case.is_feasible());
    }
}
